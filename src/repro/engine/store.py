"""Two-tier content-addressed artifact store.

Tier 1 is an in-memory LRU shared by everything in the process (what
``functools.lru_cache`` used to approximate, minus the blindness to
config changes).  Tier 2 is an optional on-disk cache — one pickle per
artifact under a cache directory (default ``.casa_cache/``) — that
survives processes and is shared by parallel sweep workers.

Disk entries are versioned and corruption-safe: a file that fails to
unpickle, carries the wrong schema version or the wrong digest is
deleted and treated as a miss, so the caller simply recomputes.
"""

from __future__ import annotations

import os
import pickle
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.engine.artifacts import SCHEMA_VERSION

#: Default number of artifacts kept by the in-memory tier.
DEFAULT_MEMORY_ITEMS = 256

#: Environment variable overriding the default on-disk cache location.
CACHE_DIR_ENV = "CASA_CACHE_DIR"


@dataclass
class StoreStats:
    """Hit/miss counters of one :class:`ArtifactStore`."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    disk_errors: int = 0
    per_stage: dict[str, int] = field(default_factory=dict)

    @property
    def hits(self) -> int:
        """Total hits across both tiers."""
        return self.memory_hits + self.disk_hits

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.memory_hits} memory hits, {self.disk_hits} disk "
            f"hits, {self.misses} misses, {self.puts} puts, "
            f"{self.disk_errors} corrupt entries dropped"
        )


class ArtifactStore:
    """In-memory LRU plus optional on-disk pickle cache, keyed by digest.

    Args:
        cache_dir: directory for the on-disk tier; ``None`` disables it
            (memory-only store).
        memory_items: LRU capacity of the in-memory tier.
    """

    def __init__(self, cache_dir: str | os.PathLike | None = None,
                 memory_items: int = DEFAULT_MEMORY_ITEMS) -> None:
        self._memory: OrderedDict[tuple[str, str], Any] = OrderedDict()
        self._memory_items = memory_items
        self.cache_dir: Path | None = (
            Path(cache_dir) if cache_dir is not None else None
        )
        self.stats = StoreStats()

    # -- lookup ---------------------------------------------------------------

    def get(self, stage: str, digest: str, *,
            disk: bool = True) -> Any | None:
        """Return the cached artifact for (*stage*, *digest*) or ``None``.

        Consults the memory tier first, then (when enabled and
        *disk* is true) the on-disk tier, promoting disk hits into
        memory.
        """
        key = (stage, digest)
        if key in self._memory:
            self._memory.move_to_end(key)
            self.stats.memory_hits += 1
            return self._memory[key]
        if disk and self.cache_dir is not None:
            artifact = self._disk_load(stage, digest)
            if artifact is not None:
                self.stats.disk_hits += 1
                self._memory_put(key, artifact)
                return artifact
        self.stats.misses += 1
        return None

    def put(self, stage: str, digest: str, artifact: Any, *,
            disk: bool = True) -> None:
        """Cache *artifact* under (*stage*, *digest*) in both tiers."""
        self.stats.puts += 1
        self.stats.per_stage[stage] = self.stats.per_stage.get(stage, 0) + 1
        self._memory_put((stage, digest), artifact)
        if disk and self.cache_dir is not None:
            self._disk_store(stage, digest, artifact)

    def get_or_compute(self, stage: str, digest: str,
                       compute: Callable[[], Any], *,
                       disk: bool = True) -> tuple[Any, bool]:
        """Load-or-recompute: return ``(artifact, was_cached)``.

        A corrupted or version-mismatched disk entry counts as a miss —
        *compute* runs and its result replaces the bad entry.
        """
        artifact = self.get(stage, digest, disk=disk)
        if artifact is not None:
            return artifact, True
        artifact = compute()
        self.put(stage, digest, artifact, disk=disk)
        return artifact, False

    # -- maintenance ----------------------------------------------------------

    def clear(self, *, memory: bool = True, disk: bool = True) -> int:
        """Drop cached artifacts; return the number of disk files removed."""
        if memory:
            self._memory.clear()
        removed = 0
        if disk and self.cache_dir is not None and self.cache_dir.is_dir():
            for path in self.cache_dir.glob("*.pkl"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def disk_entries(self) -> list[Path]:
        """Paths of every on-disk artifact (empty for memory-only)."""
        if self.cache_dir is None or not self.cache_dir.is_dir():
            return []
        return sorted(self.cache_dir.glob("*.pkl"))

    def disk_usage(self) -> tuple[int, int]:
        """``(file_count, total_bytes)`` of the on-disk tier."""
        entries = self.disk_entries()
        return len(entries), sum(path.stat().st_size for path in entries)

    # -- internals ------------------------------------------------------------

    def _memory_put(self, key: tuple[str, str], artifact: Any) -> None:
        if key in self._memory:
            self._memory.move_to_end(key)
        self._memory[key] = artifact
        while len(self._memory) > self._memory_items:
            self._memory.popitem(last=False)
            self.stats.evictions += 1

    def _entry_path(self, stage: str, digest: str) -> Path:
        assert self.cache_dir is not None
        return self.cache_dir / f"{stage}-{digest}.pkl"

    def _disk_load(self, stage: str, digest: str) -> Any | None:
        path = self._entry_path(stage, digest)
        if not path.is_file():
            return None
        try:
            with path.open("rb") as handle:
                envelope = pickle.load(handle)
            if (
                not isinstance(envelope, dict)
                or envelope.get("schema") != SCHEMA_VERSION
                or envelope.get("stage") != stage
                or envelope.get("digest") != digest
            ):
                raise ValueError("stale or foreign cache entry")
            return envelope["artifact"]
        except Exception:
            # Corrupt, truncated, stale-schema or unreadable entry:
            # drop it and let the caller recompute.
            self.stats.disk_errors += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def _disk_store(self, stage: str, digest: str, artifact: Any) -> None:
        assert self.cache_dir is not None
        try:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            path = self._entry_path(stage, digest)
            envelope = {
                "schema": SCHEMA_VERSION,
                "stage": stage,
                "digest": digest,
                "artifact": artifact,
            }
            temp = path.with_suffix(f".tmp.{os.getpid()}")
            with temp.open("wb") as handle:
                pickle.dump(envelope, handle,
                            protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(temp, path)
        except Exception:
            # A read-only or full filesystem must not break experiments;
            # the memory tier still holds the artifact.
            self.stats.disk_errors += 1


# -- process-wide default store ----------------------------------------------

_DEFAULT_STORE: ArtifactStore | None = None


def default_store() -> ArtifactStore:
    """The process-wide store used when no store is passed explicitly.

    Memory-only unless the :data:`CACHE_DIR_ENV` environment variable
    names a cache directory (the CLI configures a disk-backed store
    explicitly via :func:`set_default_store`).
    """
    global _DEFAULT_STORE
    if _DEFAULT_STORE is None:
        _DEFAULT_STORE = ArtifactStore(
            cache_dir=os.environ.get(CACHE_DIR_ENV) or None
        )
    return _DEFAULT_STORE


def set_default_store(store: ArtifactStore | None) -> ArtifactStore | None:
    """Replace the process-wide store; returns the previous one."""
    global _DEFAULT_STORE
    previous = _DEFAULT_STORE
    _DEFAULT_STORE = store
    return previous
