"""Grid chunks: whole capacity axes as schedulable work units.

A :class:`GridChunk` is the grid-native sibling of
:class:`~repro.engine.parallel.PointSpec`: instead of one (workload,
capacity, allocator) triple it names a workload, an allocator and the
*whole* scratchpad-size axis.  Evaluating a chunk profiles the
workbench once, replays the cache work through the shared grid
artifacts and solves the capacity steps in ascending order with
warm-started branch & bound — so a sweep schedules one chunk per
allocator rather than ``len(sizes)`` independent points, while
:func:`~repro.engine.parallel.map_points` and the self-healing
:func:`~repro.resilience.healing.map_points_healed` treat chunks
exactly like points (retry ladder included).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.engine.runner import StageRunner, make_workbench
from repro.errors import ConfigurationError
from repro.memory.cache import CacheConfig
from repro.obs.trace import span
from repro.resilience.faults import maybe_inject
from repro.traces.tracegen import TraceGenConfig

if TYPE_CHECKING:
    from repro.core.pipeline import ExperimentResult

#: Algorithms a grid chunk may name (``baseline`` = cache-only).
CHUNK_ALGORITHMS = ("casa", "steinke", "greedy", "ross", "baseline")


@dataclass(frozen=True)
class GridChunk:
    """One allocator evaluated across a whole capacity axis.

    Attributes:
        workload: registered workload name.
        spm_sizes: scratchpad / loop-cache capacities in bytes, in the
            order results are wanted (``baseline`` ignores the values
            but returns one result per entry).
        algorithm: one of :data:`CHUNK_ALGORITHMS`.
        scale: workload trip-count multiplier.
        seed: executor seed.
        cache: I-cache override (``None`` = the workload's default).
        tracegen: trace-formation override (``None`` = derived from
            the cache line size and the workload's smallest
            scratchpad).
        max_regions: preloadable regions for the ``ross`` allocator.
        backend: simulation backend (``reference`` | ``vector`` |
            ``auto``; ``None`` defers to ``CASA_BACKEND``, then
            ``auto``).
    """

    workload: str
    spm_sizes: tuple[int, ...]
    algorithm: str = "casa"
    scale: float = 1.0
    seed: int = 0
    cache: CacheConfig | None = None
    tracegen: TraceGenConfig | None = None
    max_regions: int = 4
    backend: str | None = None


def evaluate_chunk(chunk: GridChunk,
                   runner: StageRunner | None = None
                   ) -> list["ExperimentResult"]:
    """Evaluate one grid chunk through the staged engine.

    Args:
        chunk: the capacity axis to evaluate.
        runner: stage runner to resolve through (defaults to a fresh
            runner on the process-wide store).

    Returns:
        One result per entry of ``chunk.spm_sizes``, in input order —
        bit-identical to evaluating the corresponding
        :class:`~repro.engine.parallel.PointSpec` list (the
        ``repro verify-grid`` gate enforces this).

    Raises:
        ConfigurationError: for an unknown algorithm.
    """
    if chunk.algorithm not in CHUNK_ALGORITHMS:
        raise ConfigurationError(
            f"unknown algorithm {chunk.algorithm!r}; choose from "
            f"{CHUNK_ALGORITHMS}"
        )
    runner = runner if runner is not None else StageRunner()
    with span("chunk.evaluate", workload=chunk.workload,
              algorithm=chunk.algorithm, sizes=len(chunk.spm_sizes),
              scale=chunk.scale, seed=chunk.seed):
        maybe_inject("worker.exec", workload=chunk.workload,
                     algorithm=chunk.algorithm,
                     spm_sizes=chunk.spm_sizes)
        _, bench = make_workbench(
            chunk.workload, chunk.scale, chunk.seed,
            cache=chunk.cache, tracegen=chunk.tracegen, runner=runner,
            backend=chunk.backend,
        )
        return bench.run_grid(chunk.algorithm, chunk.spm_sizes,
                              max_regions=chunk.max_regions)
