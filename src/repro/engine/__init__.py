"""Staged experiment engine: cacheable stages, parallel sweeps.

The experimental flow of the paper's figure 3 decomposes into explicit
stages — profiling execution, trace formation, baseline cache
simulation, conflict-graph construction, allocation evaluation — each
producing a typed artifact with a content-addressed digest:

* :mod:`repro.engine.artifacts` — artifact types and digest chaining;
* :mod:`repro.engine.store` — tiered store over pluggable
  :class:`~repro.engine.store.StorageBackend` tiers (in-memory LRU
  plus, by default, an on-disk cache under ``.casa_cache/``);
* :mod:`repro.engine.runner` — stage resolution with hit/compute
  accounting (:class:`RunRecord`) and the engine-backed
  :func:`make_workbench`;
* :mod:`repro.engine.parallel` — :func:`map_points` fans design points
  across a process pool with deterministic result ordering;
* :mod:`repro.engine.grid` — :class:`GridChunk` schedules a whole
  capacity axis as one work unit (single-pass cache replay,
  warm-started solves).

Every consumer — ``Workbench``, the sweep/figure/table harnesses, the
CLI and the benchmarks — routes through this package, so a warm cache
eliminates all redundant profiling and simulation work, within a
process and across processes.
"""

from repro.engine.artifacts import (
    SCHEMA_VERSION,
    AllocationArtifact,
    BaselineSimArtifact,
    ConflictGraphArtifact,
    ExecutionArtifact,
    GridSimArtifact,
    StreamArtifact,
    TraceArtifact,
    baseline_digest,
    canonical,
    digest_inputs,
    execution_digest,
    fingerprint_program,
    graph_digest,
    grid_digest,
    grid_result_digest,
    grid_sim_digest,
    result_digest,
    stream_digest,
    trace_digest,
    workbench_digest,
)
from repro.engine.grid import (
    CHUNK_ALGORITHMS,
    GridChunk,
    evaluate_chunk,
)
from repro.engine.parallel import (
    POINT_ALGORITHMS,
    PointSpec,
    evaluate_point,
    map_points,
)
from repro.engine.runner import (
    STAGES,
    RunRecord,
    StageCount,
    StageRunner,
    make_workbench,
)
from repro.engine.store import (
    CACHE_DIR_ENV,
    ArtifactStore,
    BackendStats,
    DiskBackend,
    KeyValueBackend,
    MemoryBackend,
    StorageBackend,
    StoreStats,
    available_backends,
    default_store,
    make_backend,
    register_backend,
    set_default_store,
)

__all__ = [
    "SCHEMA_VERSION",
    "AllocationArtifact",
    "BaselineSimArtifact",
    "ConflictGraphArtifact",
    "ExecutionArtifact",
    "GridSimArtifact",
    "StreamArtifact",
    "TraceArtifact",
    "baseline_digest",
    "canonical",
    "digest_inputs",
    "execution_digest",
    "fingerprint_program",
    "graph_digest",
    "grid_digest",
    "grid_result_digest",
    "grid_sim_digest",
    "result_digest",
    "stream_digest",
    "trace_digest",
    "workbench_digest",
    "CHUNK_ALGORITHMS",
    "GridChunk",
    "evaluate_chunk",
    "POINT_ALGORITHMS",
    "PointSpec",
    "evaluate_point",
    "map_points",
    "STAGES",
    "RunRecord",
    "StageCount",
    "StageRunner",
    "make_workbench",
    "CACHE_DIR_ENV",
    "ArtifactStore",
    "BackendStats",
    "DiskBackend",
    "KeyValueBackend",
    "MemoryBackend",
    "StorageBackend",
    "StoreStats",
    "available_backends",
    "default_store",
    "make_backend",
    "register_backend",
    "set_default_store",
]
