"""Stage runner: resolve artifacts through the store, with accounting.

The :class:`StageRunner` is the seam between *what* an experiment needs
(an execution trace, a conflict graph, an evaluated allocation) and
*whether* it has to be computed: every stage resolution consults the
:class:`~repro.engine.store.ArtifactStore` first and records the
outcome — hit or compute, plus wall-clock seconds — in a structured
:class:`RunRecord`.  A warm store therefore shows up directly in the
record's counters (``record.computed("execution") == 0``), which is how
the tests assert that re-runs do no redundant profiling work.

:func:`make_workbench` is the engine-backed replacement for the old
``functools.lru_cache`` in ``repro.evaluation.sweep``: the profiled
workbench is memoised in the store's memory tier under a digest that
covers the workload name, the (float-normalised) scale, the seed and
the full cache/trace-formation configuration — so sweeping many
workloads or scales can no longer thrash a tiny fixed-size cache, and
``scale=1`` and ``scale=1.0`` share one entry.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro.engine.artifacts import workbench_digest
from repro.engine.store import ArtifactStore, default_store
from repro.obs.live import note_phase
from repro.obs.logging import log_event
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import span
from repro.traces.tracegen import TraceGenConfig
from repro.workloads.registry import Workload, get_workload

if TYPE_CHECKING:
    from repro.core.pipeline import Workbench
    from repro.memory.cache import CacheConfig

#: Stage names in dependency order (the runner's resolution chain).
STAGES = ("execution", "trace", "stream", "baseline", "grid_sim",
          "graph", "result")


@dataclass
class StageCount:
    """Counters of one stage within a :class:`RunRecord`."""

    computed: int = 0
    hits: int = 0
    seconds: float = 0.0


class RunRecord:
    """Per-stage hit/compute/timing accounting of one experiment run.

    The counters live in a private, always-on
    :class:`~repro.obs.metrics.MetricsRegistry` (one counter per
    ``engine.stage.<stage>.{computed,hits,seconds}``), so the record is
    a *consumer* of the observability layer's metric types rather than
    a parallel bookkeeping path — ``repro report`` and ``--metrics``
    read the same numbers this class renders.
    """

    #: Metric-name prefix of the per-stage counters.
    METRIC_PREFIX = "engine.stage."

    def __init__(self) -> None:
        self.metrics = MetricsRegistry()

    @property
    def stages(self) -> dict[str, StageCount]:
        """Per-stage counters as :class:`StageCount` views."""
        return {
            stage: StageCount(
                computed=int(fields.get("computed", 0)),
                hits=int(fields.get("hits", 0)),
                seconds=float(fields.get("seconds", 0.0)),
            )
            for stage, fields in self._entries().items()
        }

    def _entries(self) -> dict[str, dict[str, float]]:
        entries: dict[str, dict[str, float]] = {}
        for name in self.metrics.names():
            if not name.startswith(self.METRIC_PREFIX):
                continue
            stage, _, field_name = \
                name[len(self.METRIC_PREFIX):].rpartition(".")
            entries.setdefault(stage, {})[field_name] = \
                self.metrics.value(name)
        return entries

    def _counter(self, stage: str, field_name: str):
        return self.metrics.counter(
            f"{self.METRIC_PREFIX}{stage}.{field_name}"
        )

    def note(self, stage: str, *, hit: bool,
             seconds: float = 0.0) -> None:
        """Record one stage resolution (a store hit or a compute)."""
        if hit:
            self._counter(stage, "hits").inc()
        else:
            self._counter(stage, "computed").inc()
            self._counter(stage, "seconds").inc(seconds)

    def computed(self, stage: str) -> int:
        """How many times *stage* was actually computed."""
        return int(self.metrics.value(
            f"{self.METRIC_PREFIX}{stage}.computed"
        ))

    def hits(self, stage: str) -> int:
        """How many times *stage* was served from the store."""
        return int(self.metrics.value(
            f"{self.METRIC_PREFIX}{stage}.hits"
        ))

    def as_dict(self) -> dict[str, dict[str, float]]:
        """Plain-dict view (picklable, mergeable across processes)."""
        return {
            stage: {
                "computed": int(fields.get("computed", 0)),
                "hits": int(fields.get("hits", 0)),
                "seconds": float(fields.get("seconds", 0.0)),
            }
            for stage, fields in self._entries().items()
        }

    def merge(self, other: "RunRecord | dict") -> None:
        """Fold another record (or its :meth:`as_dict` form) into this one.

        Missing fields in a dict entry count as zero, so partial
        entries (e.g. hits-only stages from hand-built dicts) merge
        cleanly instead of raising.
        """
        entries = other.as_dict() if isinstance(other, RunRecord) \
            else other
        for stage, values in entries.items():
            computed = int(values.get("computed", 0))
            hits = int(values.get("hits", 0))
            seconds = float(values.get("seconds", 0.0))
            if computed:
                self._counter(stage, "computed").inc(computed)
            if hits:
                self._counter(stage, "hits").inc(hits)
            if seconds:
                self._counter(stage, "seconds").inc(seconds)

    def render(self) -> str:
        """One line per stage: computed/cached counts and compute time."""
        if not self.stages:
            return "engine stages: (nothing resolved)"
        ordered = [s for s in STAGES if s in self.stages]
        ordered += [s for s in self.stages if s not in STAGES]
        lines = ["engine stages (computed/cached, compute seconds):"]
        for stage in ordered:
            count = self.stages[stage]
            lines.append(
                f"  {stage:<10} {count.computed:>3} computed / "
                f"{count.hits:>3} cached   {count.seconds:8.3f} s"
            )
        return "\n".join(lines)


class StageRunner:
    """Resolves stage artifacts through a store, recording the outcome.

    Args:
        store: artifact store to consult (defaults to the process-wide
            :func:`~repro.engine.store.default_store`).
        record: run record receiving per-stage counters (a fresh one is
            created when omitted; read it back via :attr:`record`).
    """

    def __init__(self, store: ArtifactStore | None = None,
                 record: RunRecord | None = None) -> None:
        self.store = store if store is not None else default_store()
        self.record = record if record is not None else RunRecord()

    def resolve(self, stage: str, digest: str,
                compute: Callable[[], Any], *,
                disk: bool = True) -> Any:
        """Return the artifact for *digest*, computing it on a miss.

        The dependency chain is walked implicitly: *compute* closures
        resolve their upstream artifacts through this same runner, so a
        request for (say) a conflict graph consults the store at every
        stage on the way up and computes only the missing suffix.

        When tracing is enabled, every resolution emits an
        ``engine.resolve.<stage>`` span whose ``outcome`` attribute
        says whether the store served it (``hit``) or *compute* ran
        (``computed``).  Under live telemetry the stage also lands on
        the progress bus (current-activity display) and computed
        resolutions emit a ``stage.computed`` structured-log event.
        """
        with span(f"engine.resolve.{stage}") as resolve_span:
            note_phase(stage)
            artifact = self.store.get(stage, digest, disk=disk)
            if artifact is not None:
                self.record.note(stage, hit=True)
                resolve_span.add(outcome="hit")
                return artifact
            started = time.perf_counter()
            artifact = compute()
            elapsed = time.perf_counter() - started
            self.store.put(stage, digest, artifact, disk=disk)
            self.record.note(stage, hit=False, seconds=elapsed)
            resolve_span.add(outcome="computed")
            log_event("stage.computed", stage=stage,
                      seconds=round(elapsed, 6))
            return artifact


@dataclass(frozen=True)
class WorkbenchMemo:
    """Memory-tier memo of one profiled workbench (never hits disk)."""

    digest: str
    workload: Workload
    workbench: "Workbench"


def make_workbench(
    workload_name: str,
    scale: float = 1.0,
    seed: int = 0,
    cache: "CacheConfig | None" = None,
    tracegen: TraceGenConfig | None = None,
    runner: StageRunner | None = None,
    backend: str | None = None,
) -> tuple[Workload, "Workbench"]:
    """Build (and memoise) the profiled workbench of a named workload.

    Workbench construction — execution, trace generation, baseline
    cache simulation, conflict-graph construction — is the expensive,
    allocation-independent part of every experiment.  The workbench
    object itself is memoised in the store's memory tier; its stage
    artifacts additionally land in the disk tier (when enabled), so a
    fresh process rebuilds the workbench from cached artifacts without
    re-running any stage.

    Args:
        workload_name: registered benchmark name.
        scale: outer-loop trip-count multiplier.
        seed: executor seed.
        cache: I-cache override (defaults to the workload's paper
            configuration).
        tracegen: trace-formation override (defaults to the cache's
            line size and the workload's smallest scratchpad).
        runner: stage runner to resolve through (defaults to a fresh
            runner on the process-wide store).
        backend: simulation backend knob forwarded to the workbench
            configuration (``reference`` | ``vector`` | ``auto``;
            ``None`` defers to the ``CASA_BACKEND`` environment
            variable, then ``auto``).

    Returns:
        ``(workload, workbench)`` — the workload metadata and the
        profiled workbench.
    """
    from repro.core.pipeline import Workbench, WorkbenchConfig

    runner = runner if runner is not None else StageRunner()
    workload = get_workload(workload_name, scale=scale)
    cache_config = cache if cache is not None else workload.cache
    tracegen_config = tracegen if tracegen is not None else TraceGenConfig(
        line_size=cache_config.line_size,
        max_trace_size=min(workload.spm_sizes),
    )
    digest = workbench_digest(
        workload_name, scale, seed, cache_config, tracegen_config,
        backend=backend,
    )

    def build() -> WorkbenchMemo:
        config = WorkbenchConfig(
            cache=cache_config, tracegen=tracegen_config, seed=seed,
            backend=backend,
        )
        bench = Workbench(workload.program, config, runner=runner)
        return WorkbenchMemo(
            digest=digest, workload=workload, workbench=bench
        )

    memo = runner.resolve("workbench", digest, build, disk=False)
    # A memoised workbench still holds the runner that profiled it;
    # route this caller's result resolutions through *its* runner so
    # the accounting lands in the right run record.
    memo.workbench.attach_runner(runner)
    return memo.workload, memo.workbench
