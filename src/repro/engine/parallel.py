"""Parallel design-point execution over ``concurrent.futures``.

A *design point* is one (workload, scratchpad size, allocator) triple —
optionally with cache / trace-formation overrides, as design-space
exploration needs.  :func:`map_points` fans a list of points across a
process pool (sweeps are embarrassingly parallel per point), falls back
to serial execution when a pool cannot be created, and always returns
results in the order of the input points, so parallel output is
indistinguishable from serial output.

Workers share the parent's on-disk artifact cache (when one is
configured), so the expensive allocation-independent stages are
computed once per workbench configuration no matter which worker gets
there first.
"""

from __future__ import annotations

import concurrent.futures
import concurrent.futures.process
import os
import pickle
import shutil
import tempfile
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.engine.runner import RunRecord, StageRunner, make_workbench
from repro.engine.store import ArtifactStore, default_store, \
    set_default_store
from repro.errors import ConfigurationError, InjectedFault
from repro.resilience.faults import FaultPlan, active_fault_plan, \
    maybe_inject, set_fault_attempt, set_fault_plan
from repro.memory.cache import CacheConfig
from repro.obs import live
from repro.obs.events import EventRecorder, active_recorder, \
    set_recorder
from repro.obs.logging import active_log_spec, install_from_spec, \
    log_event
from repro.obs.metrics import MetricsRegistry, active_registry, \
    set_registry
from repro.obs.trace import TraceCollector, get_collector, \
    set_collector, span
from repro.traces.tracegen import TraceGenConfig

if TYPE_CHECKING:
    from repro.core.pipeline import ExperimentResult

#: Algorithms a design point may name (``baseline`` = cache-only).
POINT_ALGORITHMS = ("casa", "steinke", "greedy", "ross", "baseline")


@dataclass(frozen=True)
class PointSpec:
    """One design point of a sweep or exploration.

    Attributes:
        workload: registered workload name.
        spm_size: scratchpad / loop-cache capacity in bytes (ignored
            for ``baseline``).
        algorithm: one of :data:`POINT_ALGORITHMS`.
        scale: workload trip-count multiplier.
        seed: executor seed.
        cache: I-cache override (``None`` = the workload's default).
        tracegen: trace-formation override (``None`` = derived from the
            cache line size and the workload's smallest scratchpad).
        max_regions: preloadable regions for the ``ross`` allocator.
        backend: simulation backend (``reference`` | ``vector`` |
            ``auto``; ``None`` defers to ``CASA_BACKEND``, then
            ``auto``).
    """

    workload: str
    spm_size: int
    algorithm: str = "casa"
    scale: float = 1.0
    seed: int = 0
    cache: CacheConfig | None = None
    tracegen: TraceGenConfig | None = None
    max_regions: int = 4
    backend: str | None = None


def evaluate_point(point: PointSpec,
                   runner: StageRunner | None = None
                   ) -> "ExperimentResult":
    """Evaluate one design point through the staged engine.

    Args:
        point: the design point.
        runner: stage runner to resolve through (defaults to a fresh
            runner on the process-wide store).

    Raises:
        ConfigurationError: for an unknown algorithm.
    """
    if point.algorithm not in POINT_ALGORITHMS:
        raise ConfigurationError(
            f"unknown algorithm {point.algorithm!r}; choose from "
            f"{POINT_ALGORITHMS}"
        )
    runner = runner if runner is not None else StageRunner()
    with span("point.evaluate", workload=point.workload,
              algorithm=point.algorithm, spm_size=point.spm_size,
              scale=point.scale, seed=point.seed):
        maybe_inject("worker.exec", workload=point.workload,
                     algorithm=point.algorithm,
                     spm_size=point.spm_size)
        _, bench = make_workbench(
            point.workload, point.scale, point.seed,
            cache=point.cache, tracegen=point.tracegen, runner=runner,
            backend=point.backend,
        )
        if point.algorithm == "baseline":
            return bench.baseline_result()
        if point.algorithm == "casa":
            return bench.run_casa(point.spm_size)
        if point.algorithm == "steinke":
            return bench.run_steinke(point.spm_size)
        if point.algorithm == "greedy":
            return bench.run_greedy(point.spm_size)
        return bench.run_ross(point.spm_size,
                              max_regions=point.max_regions)


def _describe_spec(spec) -> str:
    """Short progress label of a work unit (point or grid chunk)."""
    sizes = getattr(spec, "spm_sizes", None)
    if sizes is not None:
        axis = "+".join(str(size) for size in sizes)
        return f"{spec.workload}/{spec.algorithm}@[{axis}]"
    return f"{spec.workload}/{spec.algorithm}@{spec.spm_size}"


def _evaluate_spec_inner(spec, runner: StageRunner | None = None):
    if hasattr(spec, "spm_sizes"):
        from repro.engine.grid import evaluate_chunk
        return evaluate_chunk(spec, runner=runner)
    return evaluate_point(spec, runner=runner)


def _evaluate_spec(spec, runner: StageRunner | None = None):
    """Evaluate one work unit — a :class:`PointSpec` or a grid chunk.

    The engine's schedulers (:func:`map_points` and the self-healing
    ladder on top of it) accept both unit shapes; a
    :class:`~repro.engine.grid.GridChunk` — recognised by its
    ``spm_sizes`` axis — evaluates to a result *list*, a point to a
    single result.

    This is the engine's unit boundary, so it also carries the live
    instrumentation: unit start/finish notes to the active progress
    sink (stall detection keys off the start note) and a per-unit
    wall-time observation into the ``point.evaluate.seconds`` /
    ``chunk.evaluate.seconds`` percentile histograms.  Both are free
    when no sink and no registry are installed.
    """
    registry = active_registry()
    if live.active_sink() is None and registry is None:
        return _evaluate_spec_inner(spec, runner=runner)
    label = _describe_spec(spec)
    live.note_unit_started(label)
    start = time.perf_counter()
    try:
        result = _evaluate_spec_inner(spec, runner=runner)
    finally:
        seconds = time.perf_counter() - start
        if registry is not None:
            name = "chunk.evaluate.seconds" \
                if hasattr(spec, "spm_sizes") else "point.evaluate.seconds"
            registry.histogram(name).observe(seconds)
        live.note_unit_finished(label, seconds)
    return result


def _init_worker(cache_dir: str | None,
                 fault_spec: str | None = None,
                 heartbeat_dir: str | None = None,
                 log_spec: tuple[str, str] | None = None) -> None:
    """Process-pool initializer: point the worker at the shared cache.

    When a fault plan is active in the parent, its spec rides along so
    workers replay the same rules even under the ``spawn`` start
    method (``fork`` would inherit the plan, but the spec makes the
    behaviour start-method independent — with fresh per-process rule
    state either way).  When the parent has live telemetry on, the
    heartbeat directory and run-log spec ride along the same way: the
    worker installs a :class:`~repro.obs.live.HeartbeatWriter` sink
    and reopens the parent's structured log under the same ``run_id``.
    """
    set_default_store(ArtifactStore(cache_dir=cache_dir))
    if fault_spec:
        set_fault_plan(FaultPlan.from_spec(fault_spec))
    if heartbeat_dir:
        live.set_progress_sink(live.HeartbeatWriter(heartbeat_dir))
    install_from_spec(log_spec)


def _evaluate_in_worker(task: tuple[PointSpec, bool, bool, bool, int]):
    """Worker-side evaluation of one design point.

    *task* is ``(point, trace, metrics, events, attempt)`` — the flags
    mirror whether the parent had a collector/registry/event recorder
    installed, and *attempt* is the retry attempt the self-healing
    layer is on (0 for plain :func:`map_points`).  Returns ``(result,
    record_dict, span_events, metrics_snapshot, event_snapshot)``
    where the middle three are ``None`` unless the matching flag was
    set; the parent merges them back in input order, exactly like the
    record counters.
    """
    point, trace_enabled, metrics_enabled, events_enabled, attempt = task
    set_fault_attempt(attempt)
    collector = TraceCollector() if trace_enabled else None
    registry = MetricsRegistry() if metrics_enabled else None
    recorder = EventRecorder() if events_enabled else None
    previous_collector = set_collector(collector) \
        if trace_enabled else None
    previous_registry = set_registry(registry) \
        if metrics_enabled else None
    previous_recorder = set_recorder(recorder) \
        if events_enabled else None
    try:
        record = RunRecord()
        runner = StageRunner(record=record)
        result = _evaluate_spec(point, runner=runner)
    finally:
        if trace_enabled:
            set_collector(previous_collector)
        if metrics_enabled:
            set_registry(previous_registry)
        if events_enabled:
            set_recorder(previous_recorder)
    events = [event.as_json() for event in collector.events()] \
        if collector is not None else None
    snapshot = registry.snapshot() if registry is not None else None
    event_snapshot = recorder.snapshot() \
        if recorder is not None else None
    return result, record.as_dict(), events, snapshot, event_snapshot


def _active_fault_spec() -> str | None:
    """Spec of the parent's fault plan, for worker initializers."""
    plan = active_fault_plan()
    return plan.spec() if plan is not None and plan.rules else None


def _setup_worker_live() -> tuple[str | None, "live.ProgressBus | None"]:
    """Create a heartbeat directory when a progress bus is installed.

    Returns ``(heartbeat_dir, bus)`` — both ``None`` when live
    telemetry is off (the common case), in which case nothing is
    created and the pool initializer receives ``None``.
    """
    sink = live.active_sink()
    if not isinstance(sink, live.ProgressBus):
        return None, None
    directory = tempfile.mkdtemp(prefix="repro-hb-")
    sink.attach_heartbeat_dir(directory)
    return directory, sink


def _teardown_worker_live(directory: str | None,
                          bus: "live.ProgressBus | None",
                          absorb: bool) -> None:
    """Detach and remove a pooled map's heartbeat directory.

    With ``absorb=True`` (pool completed and its metric payloads were
    merged) the workers' final done-counts fold into the bus so
    progress stays monotone after the files disappear; with ``False``
    (pool failed, serial fallback re-runs everything) the partial
    counts are discarded.
    """
    if directory is None or bus is None:
        return
    if absorb:
        bus.detach_heartbeat_dir()
    else:
        bus.attach_heartbeat_dir(None)
    shutil.rmtree(directory, ignore_errors=True)


def _run_serial(points: list[PointSpec],
                runner: StageRunner | None,
                record: RunRecord | None) -> list["ExperimentResult"]:
    if runner is None:
        runner = StageRunner(record=record)
    return [_evaluate_spec(point, runner=runner) for point in points]


def map_points(
    points: list[PointSpec] | tuple[PointSpec, ...],
    jobs: int = 1,
    runner: StageRunner | None = None,
    record: RunRecord | None = None,
    cache_dir: str | os.PathLike | None = None,
) -> list["ExperimentResult"]:
    """Evaluate *points*, optionally across a process pool.

    Args:
        points: work units — :class:`PointSpec` design points and/or
            :class:`~repro.engine.grid.GridChunk` capacity axes — in
            the order results are wanted (a chunk's result is the
            *list* of its per-capacity results).
        jobs: worker processes; ``<= 1`` runs serially in-process.
        runner: stage runner for the serial path (ignored when a pool
            is used — each worker builds its own).
        record: run record that receives the merged per-stage counters
            from every worker (or the serial runner).
        cache_dir: on-disk cache directory shared with the workers;
            defaults to the process-wide store's directory.

    Returns:
        One :class:`~repro.core.pipeline.ExperimentResult` per point,
        in input order — byte-for-byte identical to a serial run.
    """
    points = list(points)
    for point in points:
        if point.algorithm not in POINT_ALGORITHMS:
            raise ConfigurationError(
                f"unknown algorithm {point.algorithm!r}; choose from "
                f"{POINT_ALGORITHMS}"
            )
    live.note_total(len(points))
    log_event("map.start", units=len(points), jobs=jobs)
    if jobs <= 1 or len(points) <= 1:
        return _run_serial(points, runner, record)

    if cache_dir is None:
        cache_dir = default_store().cache_dir
    init_arg = str(cache_dir) if cache_dir is not None else None
    collector = get_collector()
    registry = active_registry()
    recorder = active_recorder()
    tasks = [
        (point, collector is not None, registry is not None,
         recorder is not None, 0)
        for point in points
    ]
    heartbeat_dir, bus = _setup_worker_live()
    try:
        maybe_inject("worker.spawn", jobs=jobs)
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=min(jobs, len(points)),
            initializer=_init_worker,
            initargs=(init_arg, _active_fault_spec(), heartbeat_dir,
                      active_log_spec()),
        ) as pool:
            outcomes = list(pool.map(_evaluate_in_worker, tasks))
    except (OSError, concurrent.futures.process.BrokenProcessPool,
            pickle.PicklingError, InjectedFault):
        # No usable multiprocessing (restricted sandbox, unpicklable
        # payload...): degrade to the serial path, same results.
        _teardown_worker_live(heartbeat_dir, bus, absorb=False)
        log_event("map.fallback", mode="serial", units=len(points))
        return _run_serial(points, runner, record)
    results: list["ExperimentResult"] = []
    # Worker observability folds back in input order, mirroring the
    # record merge: the merged span/metric stream is deterministic no
    # matter which worker finished first.
    for result, counts, events, snapshot, event_snapshot in outcomes:
        if record is not None:
            record.merge(counts)
        if collector is not None and events:
            collector.merge(events)
        if registry is not None and snapshot:
            registry.merge(snapshot)
        if recorder is not None and event_snapshot:
            recorder.merge(event_snapshot)
        results.append(result)
    _teardown_worker_live(heartbeat_dir, bus, absorb=True)
    log_event("map.done", units=len(points), jobs=jobs)
    return results
