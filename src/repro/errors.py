"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one base class.  Sub-classes are grouped by subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """An object was configured with invalid or inconsistent parameters.

    Examples: a cache whose size is not a power of two, a scratchpad with
    a negative capacity, an energy model with ``miss`` cheaper than
    ``hit``.
    """


class LayoutError(ReproError):
    """A program layout is inconsistent (overlapping or unmapped ranges)."""


class SimulationError(ReproError):
    """The memory-hierarchy simulator hit an impossible state.

    Typically an instruction fetch for an address that no memory in the
    hierarchy claims.
    """


class TraceError(ReproError):
    """Trace generation produced (or was asked to produce) invalid traces."""


class SolverError(ReproError):
    """The ILP/LP machinery failed to produce a usable solution."""


class InfeasibleError(SolverError):
    """The optimisation problem has no feasible point."""


class UnboundedError(SolverError):
    """The optimisation problem is unbounded."""


class AllocationError(ReproError):
    """A scratchpad/loop-cache allocation is invalid (e.g. over capacity)."""


class WorkloadError(ReproError):
    """A workload was mis-specified or an unknown benchmark was requested."""
