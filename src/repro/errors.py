"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one base class.  Sub-classes are grouped by subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """An object was configured with invalid or inconsistent parameters.

    Examples: a cache whose size is not a power of two, a scratchpad with
    a negative capacity, an energy model with ``miss`` cheaper than
    ``hit``.
    """


class UnknownPolicyError(ConfigurationError):
    """A cache replacement policy name is not in the policy registry.

    Attributes:
        name: the unrecognised policy name as given.
        choices: the valid names, sorted (one shared registry feeds
            :func:`repro.memory.replacement.make_policy`, the CLI help
            text and the docs).
    """

    def __init__(self, name: str, choices: tuple[str, ...] = ()) -> None:
        super().__init__(
            f"unknown replacement policy {name!r}; "
            f"choose from {', '.join(choices) if choices else '(none)'}"
        )
        self.name = name
        self.choices = choices

    def __reduce__(self):
        """Preserve the structured attributes across pickling."""
        return (type(self), (self.name, self.choices))


class UnknownBackendError(ConfigurationError):
    """A storage backend name is not in the backend registry.

    Attributes:
        name: the unrecognised backend name as given.
        choices: the valid names, sorted (the registry feeds
            :func:`repro.engine.store.make_backend`, the CLI help text
            and the docs).
    """

    def __init__(self, name: str, choices: tuple[str, ...] = ()) -> None:
        super().__init__(
            f"unknown storage backend {name!r}; "
            f"choose from {', '.join(choices) if choices else '(none)'}"
        )
        self.name = name
        self.choices = choices

    def __reduce__(self):
        """Preserve the structured attributes across pickling."""
        return (type(self), (self.name, self.choices))


class LayoutError(ReproError):
    """A program layout is inconsistent (overlapping or unmapped ranges)."""


class SimulationError(ReproError):
    """The memory-hierarchy simulator hit an impossible state.

    Typically an instruction fetch for an address that no memory in the
    hierarchy claims.
    """


class TraceError(ReproError):
    """Trace generation produced (or was asked to produce) invalid traces."""


class SolverError(ReproError):
    """The ILP/LP machinery failed to produce a usable solution."""


class InfeasibleError(SolverError):
    """The optimisation problem has no feasible point."""


class UnboundedError(SolverError):
    """The optimisation problem is unbounded."""


class AllocationError(ReproError):
    """A scratchpad/loop-cache allocation is invalid (e.g. over capacity)."""


class WorkloadError(ReproError):
    """A workload was mis-specified or an unknown benchmark was requested."""


# -- resilience -----------------------------------------------------------------
#
# The errors below carry structured context (the failing injection
# *site* and/or design *point*) so the self-healing sweep layer
# (:mod:`repro.resilience`) can report exactly what failed where.  They
# cross process boundaries, so each defines ``__reduce__`` to keep its
# attributes through pickling.


class CacheCorruptionError(ReproError):
    """An on-disk artifact failed to load and was quarantined.

    The store recovers transparently (the artifact is recomputed); this
    type records *what* was corrupt for the store's corruption log and
    the resilience report.

    Attributes:
        stage: engine stage of the corrupt artifact.
        digest: content digest of the corrupt artifact.
        path: original on-disk location (before quarantining).
    """

    def __init__(self, message: str = "", stage: str = "",
                 digest: str = "", path: str = "") -> None:
        super().__init__(message)
        self.stage = stage
        self.digest = digest
        self.path = path

    def __reduce__(self):
        """Preserve the structured attributes across pickling."""
        return (
            type(self),
            (str(self), self.stage, self.digest, self.path),
        )


class WorkerCrashError(ReproError):
    """A sweep worker process died (or a crash fault was injected).

    Attributes:
        site: the fault-injection site or subsystem that crashed.
        point: short description of the design point being evaluated.
    """

    def __init__(self, message: str = "", site: str = "",
                 point: str = "") -> None:
        super().__init__(message)
        self.site = site
        self.point = point

    def __reduce__(self):
        """Preserve the structured attributes across pickling."""
        return (type(self), (str(self), self.site, self.point))


class PointTimeoutError(ReproError):
    """One design point exceeded its per-point evaluation timeout.

    Attributes:
        point: short description of the design point that timed out.
        seconds: the timeout that was exceeded.
    """

    def __init__(self, message: str = "", point: str = "",
                 seconds: float = 0.0) -> None:
        super().__init__(message)
        self.point = point
        self.seconds = seconds

    def __reduce__(self):
        """Preserve the structured attributes across pickling."""
        return (type(self), (str(self), self.point, self.seconds))


class DegradedResultError(ReproError):
    """A degradation ladder was reached but degrading was disallowed.

    Raised e.g. by the CASA allocator when its solve budget is
    exhausted and the configuration forbids the greedy fallback.

    Attributes:
        site: the subsystem that wanted to degrade (e.g. ``ilp.solve``).
        point: short description of the affected design point, if any.
    """

    def __init__(self, message: str = "", site: str = "",
                 point: str = "") -> None:
        super().__init__(message)
        self.site = site
        self.point = point

    def __reduce__(self):
        """Preserve the structured attributes across pickling."""
        return (type(self), (str(self), self.site, self.point))


class InjectedFault(ReproError):
    """A fault raised by the deterministic fault-injection framework.

    Only ever raised when a :class:`repro.resilience.FaultPlan` is
    active; production code paths treat it exactly like the real
    failure it stands in for (corrupt artifact, failed solve, crashed
    worker ...).

    Attributes:
        site: the injection site that fired.
    """

    def __init__(self, message: str = "", site: str = "") -> None:
        super().__init__(message)
        self.site = site

    def __reduce__(self):
        """Preserve the structured attributes across pickling."""
        return (type(self), (str(self), self.site))
