"""Recorded execution traces on disk (run-length encoded).

The paper's workflow records an ARMulator instruction trace once and
feeds it to the memory-hierarchy simulator repeatedly.  This module
provides the same decoupling: an executed block sequence is written as
a compact run-length-encoded text file and replayed later — profiling
and experimentation can happen in different processes (or machines).

Format (version 1)::

    repro-trace 1
    <program-name>
    <block-name> <repeat>
    ...

Consecutive repeats of the same block (tight loops) collapse to one
line, which typically shrinks codec traces by 3-10x.
"""

from __future__ import annotations

import pathlib

from repro.errors import ConfigurationError

#: Magic first line of a trace file.
MAGIC = "repro-trace 1"


def encode_runs(block_sequence: list[str]) -> list[tuple[str, int]]:
    """Run-length encode a block sequence."""
    runs: list[tuple[str, int]] = []
    for name in block_sequence:
        if runs and runs[-1][0] == name:
            runs[-1] = (name, runs[-1][1] + 1)
        else:
            runs.append((name, 1))
    return runs


def decode_runs(runs: list[tuple[str, int]]) -> list[str]:
    """Expand run-length encoded runs back into a block sequence."""
    sequence: list[str] = []
    for name, repeat in runs:
        if repeat < 1:
            raise ConfigurationError(
                f"invalid repeat count {repeat} for {name!r}"
            )
        sequence.extend([name] * repeat)
    return sequence


def save_trace(block_sequence: list[str], path,
               program_name: str = "program") -> None:
    """Write a block sequence as a trace file.

    Args:
        block_sequence: executed block names.
        path: destination file.
        program_name: recorded for provenance checks on load.
    """
    if any(
        " " in name or "\n" in name for name in set(block_sequence)
    ):
        raise ConfigurationError(
            "block names must not contain spaces or newlines"
        )
    lines = [MAGIC, program_name]
    for name, repeat in encode_runs(block_sequence):
        lines.append(f"{name} {repeat}")
    pathlib.Path(path).write_text("\n".join(lines) + "\n")


def load_trace(path, expected_program: str | None = None) -> list[str]:
    """Read a trace file back into a block sequence.

    Args:
        path: the trace file.
        expected_program: if given, the recorded program name must
            match.

    Raises:
        ConfigurationError: on a malformed file or program mismatch.
    """
    text = pathlib.Path(path).read_text()
    lines = text.splitlines()
    if not lines or lines[0] != MAGIC:
        raise ConfigurationError(f"{path}: not a repro trace file")
    if len(lines) < 2:
        raise ConfigurationError(f"{path}: missing program name")
    program_name = lines[1]
    if expected_program is not None and program_name != expected_program:
        raise ConfigurationError(
            f"{path}: trace was recorded for {program_name!r}, "
            f"expected {expected_program!r}"
        )
    runs: list[tuple[str, int]] = []
    for index, line in enumerate(lines[2:], start=3):
        if not line.strip():
            continue
        parts = line.rsplit(" ", 1)
        if len(parts) != 2:
            raise ConfigurationError(
                f"{path}:{index}: malformed run line {line!r}"
            )
        name, repeat_text = parts
        try:
            repeat = int(repeat_text)
        except ValueError:
            raise ConfigurationError(
                f"{path}:{index}: bad repeat count {repeat_text!r}"
            ) from None
        runs.append((name, repeat))
    return decode_runs(runs)
