"""One JSON (de)serialisation module for every pipeline artefact.

Conflict graphs, allocation decisions, simulation reports, energy
models/breakdowns and whole :class:`~repro.core.pipeline.ExperimentResult`
bundles all round-trip through here — the same payload shapes the
``repro serve`` wire schemas (:mod:`repro.serve.schema`) embed, which
makes these dicts the canonical public representation of the
pipeline's outputs.  Every payload carries a ``format`` version tag
and a ``kind`` discriminator; ``*_from_dict`` validates the kind and
tolerates missing optional fields from older payloads.

Historically these helpers were scattered per class in
``repro.io.json_io``; that module remains as a deprecation shim.
"""

from __future__ import annotations

import json
import pathlib
from collections import Counter
from typing import Any

from repro.core.allocation import Allocation
from repro.core.conflict_graph import ConflictGraph, ConflictNode
from repro.core.pipeline import ExperimentResult
from repro.energy.model import EnergyBreakdown, EnergyModel
from repro.errors import ConfigurationError
from repro.memory.loopcache import LoopRegion
from repro.memory.stats import MemoryObjectStats, SimulationReport
from repro.traces.layout import Placement

#: Format tag written into every payload for forward compatibility.
FORMAT_VERSION = 1


def _check_kind(data: dict[str, Any], kind: str) -> None:
    """Reject payloads whose ``kind`` discriminator does not match."""
    if data.get("kind") != kind:
        raise ConfigurationError(
            f"not a {kind} payload: kind={data.get('kind')!r}"
        )


# ----------------------------------------------------------------------
# Conflict graphs
# ----------------------------------------------------------------------


def conflict_graph_to_dict(graph: ConflictGraph) -> dict[str, Any]:
    """Serialise a conflict graph to plain data."""
    return {
        "format": FORMAT_VERSION,
        "kind": "conflict_graph",
        "nodes": [
            {
                "name": node.name,
                "fetches": node.fetches,
                "size": node.size,
                "compulsory_misses": node.compulsory_misses,
                "self_misses": node.self_misses,
            }
            for node in graph.nodes()
        ],
        "edges": [
            {"victim": victim, "evictor": evictor, "misses": weight}
            for victim, evictor, weight in graph.edges()
        ],
    }


def conflict_graph_from_dict(data: dict[str, Any]) -> ConflictGraph:
    """Rebuild a conflict graph serialised by
    :func:`conflict_graph_to_dict`."""
    _check_kind(data, "conflict_graph")
    graph = ConflictGraph()
    for node in data["nodes"]:
        graph.add_node(ConflictNode(
            name=node["name"],
            fetches=node["fetches"],
            size=node["size"],
            compulsory_misses=node.get("compulsory_misses", 0),
            self_misses=node.get("self_misses", 0),
        ))
    for edge in data["edges"]:
        graph.add_edge(edge["victim"], edge["evictor"], edge["misses"])
    return graph


def save_conflict_graph(graph: ConflictGraph, path) -> None:
    """Write a conflict graph as JSON."""
    payload = conflict_graph_to_dict(graph)
    pathlib.Path(path).write_text(json.dumps(payload, indent=2))


def load_conflict_graph(path) -> ConflictGraph:
    """Read a conflict graph written by :func:`save_conflict_graph`."""
    data = json.loads(pathlib.Path(path).read_text())
    return conflict_graph_from_dict(data)


# ----------------------------------------------------------------------
# Allocations
# ----------------------------------------------------------------------


def allocation_to_dict(allocation: Allocation) -> dict[str, Any]:
    """Serialise an allocation decision to plain data."""
    return {
        "format": FORMAT_VERSION,
        "kind": "allocation",
        "algorithm": allocation.algorithm,
        "spm_resident": sorted(allocation.spm_resident),
        "loop_regions": [
            {"name": r.name, "start": r.start, "size": r.size}
            for r in allocation.loop_regions
        ],
        "placement": allocation.placement.value,
        "predicted_energy": allocation.predicted_energy,
        "solver_nodes": allocation.solver_nodes,
        "solver_status": allocation.solver_status,
        "solver_gap": allocation.solver_gap,
        "capacity": allocation.capacity,
        "used_bytes": allocation.used_bytes,
    }


def allocation_from_dict(data: dict[str, Any]) -> Allocation:
    """Rebuild an allocation serialised by
    :func:`allocation_to_dict`."""
    _check_kind(data, "allocation")
    return Allocation(
        algorithm=data["algorithm"],
        spm_resident=frozenset(data["spm_resident"]),
        loop_regions=tuple(
            LoopRegion(name=r["name"], start=r["start"], size=r["size"])
            for r in data["loop_regions"]
        ),
        placement=Placement(data["placement"]),
        predicted_energy=data.get("predicted_energy"),
        solver_nodes=data.get("solver_nodes", 0),
        solver_status=data.get("solver_status", ""),
        solver_gap=data.get("solver_gap"),
        capacity=data.get("capacity", 0),
        used_bytes=data.get("used_bytes", 0),
    )


def save_allocation(allocation: Allocation, path) -> None:
    """Write an allocation as JSON."""
    payload = allocation_to_dict(allocation)
    pathlib.Path(path).write_text(json.dumps(payload, indent=2))


def load_allocation(path) -> Allocation:
    """Read an allocation written by :func:`save_allocation`."""
    data = json.loads(pathlib.Path(path).read_text())
    return allocation_from_dict(data)


# ----------------------------------------------------------------------
# Reports
# ----------------------------------------------------------------------


def report_to_dict(report: SimulationReport) -> dict[str, Any]:
    """Serialise a simulation report's counters to plain data."""
    return {
        "format": FORMAT_VERSION,
        "kind": "simulation_report",
        "totals": {
            "fetches": report.total_fetches,
            "spm_accesses": report.spm_accesses,
            "lc_accesses": report.lc_accesses,
            "cache_hits": report.cache_hits,
            "cache_misses": report.cache_misses,
            "compulsory_misses": report.compulsory_misses,
            "conflict_misses": report.conflict_miss_total,
            "main_memory_words": report.main_memory_words,
            "lc_controller_checks": report.lc_controller_checks,
            "overlay_copy_words": report.overlay_copy_words,
            "num_block_executions": report.num_block_executions,
            "l2_hits": report.l2_hits,
            "l2_misses": report.l2_misses,
        },
        "objects": {
            name: {
                "fetches": stats.fetches,
                "spm_accesses": stats.spm_accesses,
                "lc_accesses": stats.lc_accesses,
                "cache_hits": stats.cache_hits,
                "cache_misses": stats.cache_misses,
                "compulsory_misses": stats.compulsory_misses,
            }
            for name, stats in sorted(report.mo_stats.items())
        },
        "conflicts": [
            {"victim": victim, "evictor": evictor, "misses": count}
            for (victim, evictor), count in
            sorted(report.conflict_misses.items())
        ],
    }


def report_from_dict(data: dict[str, Any]) -> SimulationReport:
    """Rebuild a simulation report serialised by :func:`report_to_dict`.

    Per-object counters and conflict edges reconstruct exactly; the
    aggregate properties (``total_fetches`` etc.) are re-derived from
    them.  Phase-resolved overlay statistics are not part of the wire
    format and come back empty.  Older payloads without the
    ``num_block_executions``/``l2_*`` totals load with those at zero.
    """
    _check_kind(data, "simulation_report")
    totals = data.get("totals", {})
    report = SimulationReport(
        lc_controller_checks=totals.get("lc_controller_checks", 0),
        main_memory_words=totals.get("main_memory_words", 0),
        num_block_executions=totals.get("num_block_executions", 0),
        overlay_copy_words=totals.get("overlay_copy_words", 0),
        l2_hits=totals.get("l2_hits", 0),
        l2_misses=totals.get("l2_misses", 0),
    )
    for name, stats in data.get("objects", {}).items():
        report.mo_stats[name] = MemoryObjectStats(
            name=name,
            fetches=stats["fetches"],
            spm_accesses=stats["spm_accesses"],
            lc_accesses=stats["lc_accesses"],
            cache_hits=stats["cache_hits"],
            cache_misses=stats["cache_misses"],
            compulsory_misses=stats.get("compulsory_misses", 0),
        )
    report.conflict_misses = Counter({
        (edge["victim"], edge["evictor"]): edge["misses"]
        for edge in data.get("conflicts", [])
    })
    return report


# ----------------------------------------------------------------------
# Energy models and breakdowns
# ----------------------------------------------------------------------


def energy_model_to_dict(model: EnergyModel) -> dict[str, Any]:
    """Serialise a per-event energy table to plain data."""
    return {
        "format": FORMAT_VERSION,
        "kind": "energy_model",
        "cache_hit": model.cache_hit,
        "cache_miss": model.cache_miss,
        "spm_access": model.spm_access,
        "lc_access": model.lc_access,
        "lc_controller_check": model.lc_controller_check,
        "main_word": model.main_word,
        "l2_hit": model.l2_hit,
        "l2_miss": model.l2_miss,
    }


def energy_model_from_dict(data: dict[str, Any]) -> EnergyModel:
    """Rebuild an energy model serialised by
    :func:`energy_model_to_dict`."""
    _check_kind(data, "energy_model")
    return EnergyModel(
        cache_hit=data["cache_hit"],
        cache_miss=data["cache_miss"],
        spm_access=data["spm_access"],
        lc_access=data["lc_access"],
        lc_controller_check=data["lc_controller_check"],
        main_word=data["main_word"],
        l2_hit=data.get("l2_hit", 0.0),
        l2_miss=data.get("l2_miss", 0.0),
    )


def energy_breakdown_to_dict(energy: EnergyBreakdown) -> dict[str, Any]:
    """Serialise an energy breakdown to plain data."""
    return {
        "format": FORMAT_VERSION,
        "kind": "energy_breakdown",
        "spm": energy.spm,
        "loop_cache": energy.loop_cache,
        "lc_controller": energy.lc_controller,
        "cache_hits": energy.cache_hits,
        "cache_misses": energy.cache_misses,
        "overlay_copies": energy.overlay_copies,
        "l2": energy.l2,
        "total": energy.total,
    }


def energy_breakdown_from_dict(data: dict[str, Any]) -> EnergyBreakdown:
    """Rebuild an energy breakdown serialised by
    :func:`energy_breakdown_to_dict` (``total`` is re-derived)."""
    _check_kind(data, "energy_breakdown")
    return EnergyBreakdown(
        spm=data["spm"],
        loop_cache=data["loop_cache"],
        lc_controller=data["lc_controller"],
        cache_hits=data["cache_hits"],
        cache_misses=data["cache_misses"],
        overlay_copies=data.get("overlay_copies", 0.0),
        l2=data.get("l2", 0.0),
    )


# ----------------------------------------------------------------------
# Experiment results
# ----------------------------------------------------------------------


def experiment_result_to_dict(result: ExperimentResult) -> dict[str, Any]:
    """Serialise a whole experiment result (the serve-layer payload)."""
    return {
        "format": FORMAT_VERSION,
        "kind": "experiment_result",
        "allocation": allocation_to_dict(result.allocation),
        "report": report_to_dict(result.report),
        "energy": energy_breakdown_to_dict(result.energy),
        "model": energy_model_to_dict(result.model),
    }


def experiment_result_from_dict(data: dict[str, Any]) -> ExperimentResult:
    """Rebuild an experiment result serialised by
    :func:`experiment_result_to_dict`."""
    _check_kind(data, "experiment_result")
    return ExperimentResult(
        allocation=allocation_from_dict(data["allocation"]),
        report=report_from_dict(data["report"]),
        energy=energy_breakdown_from_dict(data["energy"]),
        model=energy_model_from_dict(data["model"]),
    )
