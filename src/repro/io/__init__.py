"""Serialisation of analysis artefacts (JSON, DOT, traces).

Conflict graphs, allocation decisions, reports and whole experiment
results are the hand-off points of the pipeline; persisting them lets
users profile once and experiment with allocators offline, diff
decisions across runs, and ship results over the ``repro serve`` wire
(:mod:`repro.serve.schema` embeds these payloads).  The JSON helpers
live in :mod:`repro.io.serde`; ``repro.io.json_io`` is a deprecated
alias of it.
"""

from repro.io.serde import (
    FORMAT_VERSION,
    allocation_from_dict,
    allocation_to_dict,
    conflict_graph_from_dict,
    conflict_graph_to_dict,
    energy_breakdown_from_dict,
    energy_breakdown_to_dict,
    energy_model_from_dict,
    energy_model_to_dict,
    experiment_result_from_dict,
    experiment_result_to_dict,
    load_allocation,
    load_conflict_graph,
    report_from_dict,
    report_to_dict,
    save_allocation,
    save_conflict_graph,
)
from repro.io.tracefile import load_trace, save_trace

__all__ = [
    "FORMAT_VERSION",
    "allocation_from_dict",
    "allocation_to_dict",
    "conflict_graph_from_dict",
    "conflict_graph_to_dict",
    "energy_breakdown_from_dict",
    "energy_breakdown_to_dict",
    "energy_model_from_dict",
    "energy_model_to_dict",
    "experiment_result_from_dict",
    "experiment_result_to_dict",
    "load_allocation",
    "load_conflict_graph",
    "report_from_dict",
    "report_to_dict",
    "save_allocation",
    "save_conflict_graph",
    "load_trace",
    "save_trace",
]
