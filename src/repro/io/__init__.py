"""Serialisation of analysis artefacts (JSON, DOT).

Conflict graphs and allocation decisions are the hand-off points of the
pipeline; persisting them lets users profile once and experiment with
allocators offline, and diff decisions across runs.
"""

from repro.io.tracefile import load_trace, save_trace
from repro.io.json_io import (
    allocation_from_dict,
    allocation_to_dict,
    conflict_graph_from_dict,
    conflict_graph_to_dict,
    load_allocation,
    load_conflict_graph,
    report_to_dict,
    save_allocation,
    save_conflict_graph,
)

__all__ = [
    "allocation_from_dict",
    "allocation_to_dict",
    "conflict_graph_from_dict",
    "conflict_graph_to_dict",
    "load_allocation",
    "load_conflict_graph",
    "report_to_dict",
    "save_allocation",
    "save_conflict_graph",
    "load_trace",
    "save_trace",
]
