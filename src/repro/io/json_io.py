"""JSON (de)serialisation of conflict graphs, allocations and reports."""

from __future__ import annotations

import json
import pathlib
from typing import Any

from repro.core.allocation import Allocation
from repro.core.conflict_graph import ConflictGraph, ConflictNode
from repro.errors import ConfigurationError
from repro.memory.loopcache import LoopRegion
from repro.memory.stats import SimulationReport
from repro.traces.layout import Placement

#: Format tag written into every file for forward compatibility.
FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# Conflict graphs
# ----------------------------------------------------------------------


def conflict_graph_to_dict(graph: ConflictGraph) -> dict[str, Any]:
    """Serialise a conflict graph to plain data."""
    return {
        "format": FORMAT_VERSION,
        "kind": "conflict_graph",
        "nodes": [
            {
                "name": node.name,
                "fetches": node.fetches,
                "size": node.size,
                "compulsory_misses": node.compulsory_misses,
                "self_misses": node.self_misses,
            }
            for node in graph.nodes()
        ],
        "edges": [
            {"victim": victim, "evictor": evictor, "misses": weight}
            for victim, evictor, weight in graph.edges()
        ],
    }


def conflict_graph_from_dict(data: dict[str, Any]) -> ConflictGraph:
    """Rebuild a conflict graph serialised by
    :func:`conflict_graph_to_dict`."""
    if data.get("kind") != "conflict_graph":
        raise ConfigurationError(
            f"not a conflict graph payload: kind={data.get('kind')!r}"
        )
    graph = ConflictGraph()
    for node in data["nodes"]:
        graph.add_node(ConflictNode(
            name=node["name"],
            fetches=node["fetches"],
            size=node["size"],
            compulsory_misses=node.get("compulsory_misses", 0),
            self_misses=node.get("self_misses", 0),
        ))
    for edge in data["edges"]:
        graph.add_edge(edge["victim"], edge["evictor"], edge["misses"])
    return graph


def save_conflict_graph(graph: ConflictGraph, path) -> None:
    """Write a conflict graph as JSON."""
    payload = conflict_graph_to_dict(graph)
    pathlib.Path(path).write_text(json.dumps(payload, indent=2))


def load_conflict_graph(path) -> ConflictGraph:
    """Read a conflict graph written by :func:`save_conflict_graph`."""
    data = json.loads(pathlib.Path(path).read_text())
    return conflict_graph_from_dict(data)


# ----------------------------------------------------------------------
# Allocations
# ----------------------------------------------------------------------


def allocation_to_dict(allocation: Allocation) -> dict[str, Any]:
    """Serialise an allocation decision to plain data."""
    return {
        "format": FORMAT_VERSION,
        "kind": "allocation",
        "algorithm": allocation.algorithm,
        "spm_resident": sorted(allocation.spm_resident),
        "loop_regions": [
            {"name": r.name, "start": r.start, "size": r.size}
            for r in allocation.loop_regions
        ],
        "placement": allocation.placement.value,
        "predicted_energy": allocation.predicted_energy,
        "solver_nodes": allocation.solver_nodes,
        "solver_status": allocation.solver_status,
        "solver_gap": allocation.solver_gap,
        "capacity": allocation.capacity,
        "used_bytes": allocation.used_bytes,
    }


def allocation_from_dict(data: dict[str, Any]) -> Allocation:
    """Rebuild an allocation serialised by
    :func:`allocation_to_dict`."""
    if data.get("kind") != "allocation":
        raise ConfigurationError(
            f"not an allocation payload: kind={data.get('kind')!r}"
        )
    return Allocation(
        algorithm=data["algorithm"],
        spm_resident=frozenset(data["spm_resident"]),
        loop_regions=tuple(
            LoopRegion(name=r["name"], start=r["start"], size=r["size"])
            for r in data["loop_regions"]
        ),
        placement=Placement(data["placement"]),
        predicted_energy=data.get("predicted_energy"),
        solver_nodes=data.get("solver_nodes", 0),
        solver_status=data.get("solver_status", ""),
        solver_gap=data.get("solver_gap"),
        capacity=data.get("capacity", 0),
        used_bytes=data.get("used_bytes", 0),
    )


def save_allocation(allocation: Allocation, path) -> None:
    """Write an allocation as JSON."""
    payload = allocation_to_dict(allocation)
    pathlib.Path(path).write_text(json.dumps(payload, indent=2))


def load_allocation(path) -> Allocation:
    """Read an allocation written by :func:`save_allocation`."""
    data = json.loads(pathlib.Path(path).read_text())
    return allocation_from_dict(data)


# ----------------------------------------------------------------------
# Reports (export only: reports are measurement results)
# ----------------------------------------------------------------------


def report_to_dict(report: SimulationReport) -> dict[str, Any]:
    """Serialise a simulation report's counters to plain data."""
    return {
        "format": FORMAT_VERSION,
        "kind": "simulation_report",
        "totals": {
            "fetches": report.total_fetches,
            "spm_accesses": report.spm_accesses,
            "lc_accesses": report.lc_accesses,
            "cache_hits": report.cache_hits,
            "cache_misses": report.cache_misses,
            "compulsory_misses": report.compulsory_misses,
            "conflict_misses": report.conflict_miss_total,
            "main_memory_words": report.main_memory_words,
            "lc_controller_checks": report.lc_controller_checks,
            "overlay_copy_words": report.overlay_copy_words,
        },
        "objects": {
            name: {
                "fetches": stats.fetches,
                "spm_accesses": stats.spm_accesses,
                "lc_accesses": stats.lc_accesses,
                "cache_hits": stats.cache_hits,
                "cache_misses": stats.cache_misses,
                "compulsory_misses": stats.compulsory_misses,
            }
            for name, stats in sorted(report.mo_stats.items())
        },
        "conflicts": [
            {"victim": victim, "evictor": evictor, "misses": count}
            for (victim, evictor), count in
            sorted(report.conflict_misses.items())
        ],
    }
