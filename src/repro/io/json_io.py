"""Deprecated alias of :mod:`repro.io.serde`.

The per-class JSON helpers that used to live here are consolidated in
:mod:`repro.io.serde` (one module for every pipeline artefact — the
payloads the ``repro serve`` wire schemas embed).  Importing a name
through this module still works but emits a :class:`DeprecationWarning`;
update call sites to ``from repro.io.serde import ...`` (or the
``repro.io`` package re-exports).
"""

from __future__ import annotations

import warnings

from repro.io import serde as _serde

#: Names forwarded to :mod:`repro.io.serde` (the module's old surface).
_FORWARDED = (
    "FORMAT_VERSION",
    "allocation_from_dict",
    "allocation_to_dict",
    "conflict_graph_from_dict",
    "conflict_graph_to_dict",
    "load_allocation",
    "load_conflict_graph",
    "report_to_dict",
    "save_allocation",
    "save_conflict_graph",
)


def __getattr__(name: str):
    """Forward old ``json_io`` names to serde with a deprecation warning."""
    if name in _FORWARDED:
        warnings.warn(
            f"repro.io.json_io.{name} is deprecated; import it from "
            "repro.io.serde (or the repro.io package) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return getattr(_serde, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )


def __dir__() -> list[str]:
    """Advertise the forwarded names for introspection."""
    return sorted(_FORWARDED)
