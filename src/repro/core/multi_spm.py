"""Multi-scratchpad extension (paper, section 4).

"If we had more than one scratchpad at the same horizontal level in the
memory hierarchy, then we only need to repeat inequation (17) for every
scratchpad.  An additional constraint ensuring that a memory object is
assigned to at most one scratchpad is also required."

Variables: ``a[i][k] = 1`` iff object ``x_i`` is assigned to scratchpad
``k``; the cache indicator becomes ``l(x_i) = 1 - sum_k a[i][k]`` with
``sum_k a[i][k] <= 1``.  Each scratchpad has its own per-access energy
(they may have different capacities).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.allocation import AllocationContext
from repro.core.conflict_graph import ConflictGraph
from repro.energy.banakar import scratchpad_access_energy
from repro.energy.model import EnergyModel
from repro.errors import SolverError
from repro.ilp import (
    BranchAndBoundSolver,
    LinExpr,
    Model,
    Sense,
    SolveStatus,
)


@dataclass(frozen=True)
class ScratchpadSpec:
    """One scratchpad of the multi-scratchpad hierarchy.

    Attributes:
        name: identifier used in the assignment result.
        size: capacity in bytes.
    """

    name: str
    size: int

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise SolverError(
                f"scratchpad {self.name!r} needs a positive size"
            )

    @property
    def access_energy(self) -> float:
        """Per-access energy (nJ) from the Banakar model."""
        return scratchpad_access_energy(self.size)


@dataclass
class MultiSpmAllocation:
    """Assignment of memory objects to scratchpads.

    Attributes:
        assignment: object name -> scratchpad name (unassigned objects
            stay cacheable).
        predicted_energy: ILP objective value in nJ.
        solver_nodes: branch & bound nodes explored.
    """

    assignment: dict[str, str]
    predicted_energy: float
    solver_nodes: int

    def residents_of(self, spm_name: str) -> frozenset[str]:
        """Objects assigned to one scratchpad."""
        return frozenset(
            mo for mo, spm in self.assignment.items() if spm == spm_name
        )

    @property
    def all_residents(self) -> frozenset[str]:
        """Objects assigned to any scratchpad."""
        return frozenset(self.assignment)


class MultiScratchpadAllocator:
    """Optimal assignment over several scratchpads at one level."""

    name = "casa-multi-spm"

    def __init__(self, scratchpads: list[ScratchpadSpec],
                 include_compulsory: bool = True,
                 max_nodes: int = 200_000,
                 relative_gap: float = 0.0) -> None:
        if not scratchpads:
            raise SolverError("need at least one scratchpad")
        names = [spec.name for spec in scratchpads]
        if len(set(names)) != len(names):
            raise SolverError(f"duplicate scratchpad names: {names}")
        self._scratchpads = list(scratchpads)
        self._include_compulsory = include_compulsory
        self._max_nodes = max_nodes
        #: accept solutions proven within this relative gap (the
        #: equal-capacity case is a hard partitioning instance).
        self._relative_gap = relative_gap

    def allocate(self, graph: ConflictGraph,
                 capacity: int | None = None,
                 energy: EnergyModel | None = None,
                 *,
                 context: AllocationContext | None = None
                 ) -> MultiSpmAllocation:
        """Solve the extended ILP.

        Follows the unified allocator protocol: *capacity* and
        *context* are accepted and ignored — each scratchpad's
        capacity comes from its :class:`ScratchpadSpec`.  *energy*
        supplies the cache hit/miss energies; each scratchpad's access
        energy comes from its spec.

        Raises:
            SolverError: when *energy* is omitted, or when the ILP
                cannot be solved within the node limit.
        """
        del capacity, context
        if energy is None:
            raise SolverError(
                "multi-scratchpad allocation requires an energy model"
            )
        model = Model("casa-multi-spm", Sense.MINIMIZE)
        assign: dict[tuple[str, str], object] = {}
        location: dict[str, LinExpr] = {}
        # Objects the scratchpads can never help stay cacheable and get
        # no variables (see CasaAllocator._has_benefit).
        candidates = {
            node.name for node in graph.nodes()
            if node.fetches or node.self_misses
            or node.compulsory_misses
            or graph.conflicts_of(node.name)
            or graph.victims_of(node.name)
        }
        for node in graph.nodes():
            if node.name not in candidates:
                continue
            vars_for_node = []
            for spec in self._scratchpads:
                var = model.add_binary(f"a[{node.name},{spec.name}]")
                assign[(node.name, spec.name)] = var
                vars_for_node.append(var)
            total_assigned = LinExpr.total(vars_for_node)
            model.add_constraint(
                total_assigned <= 1, f"at_most_one[{node.name}]"
            )
            location[node.name] = 1 - total_assigned  # l(x_i)

        miss_premium = energy.cache_miss - energy.cache_hit
        objective = LinExpr()
        for node in graph.nodes():
            if node.name not in candidates:
                objective = objective + node.fetches * energy.cache_hit
                continue
            for spec in self._scratchpads:
                var = assign[(node.name, spec.name)]
                objective = objective + (
                    node.fetches * spec.access_energy
                ) * var
            extra = node.self_misses
            if self._include_compulsory:
                extra += node.compulsory_misses
            cached_cost = (
                node.fetches * energy.cache_hit + extra * miss_premium
            )
            objective = objective + location[node.name] * cached_cost

        for victim, evictor, weight in graph.edges():
            product = model.add_variable(f"L[{victim},{evictor}]", 0.0,
                                         1.0)
            l_i = location[victim]
            l_j = location[evictor]
            model.add_constraint(l_i - product >= 0)
            model.add_constraint(l_j - product >= 0)
            model.add_constraint(l_i + l_j - 2 * product <= 1)
            # McCormick cut (same rationale as in the single-SPM ILP).
            model.add_constraint(l_i + l_j - product <= 1)
            objective = objective + (weight * miss_premium) * product

        usages: list[LinExpr] = []
        for spec in self._scratchpads:
            usage = LinExpr.total(
                graph.node(name).size * assign[(name, spec.name)]
                for name in graph.node_names if name in candidates
            )
            model.add_constraint(
                usage <= spec.size, f"capacity[{spec.name}]"
            )
            usages.append(usage)

        # Symmetry breaking: identical scratchpads are interchangeable,
        # which makes naive branch & bound explore every permutation of
        # every solution.  Ordering their used capacity keeps at least
        # one optimum feasible and prunes the mirror copies.
        for index in range(len(self._scratchpads) - 1):
            first = self._scratchpads[index]
            second = self._scratchpads[index + 1]
            if first.size == second.size:
                model.add_constraint(
                    usages[index] - usages[index + 1] >= 0,
                    f"symmetry[{first.name},{second.name}]",
                )

        model.set_objective(objective)
        result = model.solve(BranchAndBoundSolver(
            max_nodes=self._max_nodes,
            relative_gap=self._relative_gap,
        ))
        if result.status is not SolveStatus.OPTIMAL:
            raise SolverError(
                f"multi-SPM ILP not optimal: {result.status.value}"
            )

        assignment: dict[str, str] = {}
        for (mo_name, spm_name), var in assign.items():
            if result.binary_value(var) == 1:
                assignment[mo_name] = spm_name
        assert result.objective is not None
        return MultiSpmAllocation(
            assignment=assignment,
            predicted_energy=result.objective,
            solver_nodes=result.nodes_explored,
        )
