"""Steinke et al. (DATE 2002) — the cache-blind knapsack baseline.

The published technique assumes a hierarchy of only scratchpad and main
memory: every memory object gets a *profit* proportional to its
execution (fetch) count — the energy saved by serving those fetches from
the scratchpad instead of the (assumed uniform-cost) instruction memory
— and a knapsack selects the most profitable set that fits.

Applied to the paper's cache-based architecture this is imprecise in two
ways the paper calls out (section 2):

* fetch counts ignore the hit/miss split, so the profit of an object
  that never misses equals that of one that thrashes;
* the selected objects are **moved** (not copied), so the remaining code
  is compacted and its cache mapping shifts — modelled here by
  :attr:`~repro.traces.layout.Placement.COMPACT`.
"""

from __future__ import annotations

from repro.core.allocation import Allocation, AllocationContext
from repro.core.conflict_graph import ConflictGraph
from repro.energy.model import EnergyModel
from repro.ilp.knapsack import KnapsackItem, knapsack_01
from repro.traces.layout import Placement


class SteinkeAllocator:
    """Knapsack allocation by fetch-count profit (cache-blind)."""

    name = "steinke"

    def allocate(
        self,
        graph: ConflictGraph,
        spm_size: int,
        energy: EnergyModel,
        *,
        context: AllocationContext | None = None,
    ) -> Allocation:
        """Select the scratchpad set by execution-count profit.

        The profit of object ``x_i`` is
        ``f_i * (E_Cache_hit - E_SP_hit)`` — the saving Steinke's model
        *predicts*, treating every fetch as a uniform-cost access (the
        first imprecision: the constant term of eq. 5 is all it sees).
        *context* is accepted for protocol conformance and ignored.
        """
        del context
        items = [
            KnapsackItem(
                name=node.name,
                size=node.size,
                profit=node.fetches
                * (energy.cache_hit - energy.spm_access),
            )
            for node in graph.nodes()
        ]
        solution = knapsack_01(items, spm_size)
        selected = frozenset(solution.selected)
        predicted_saving = solution.total_profit
        baseline = sum(
            node.fetches * energy.cache_hit for node in graph.nodes()
        )
        return Allocation(
            algorithm=self.name,
            spm_resident=selected,
            placement=Placement.COMPACT,
            predicted_energy=baseline - predicted_saving,
            capacity=spm_size,
            used_bytes=solution.total_size,
        )
