"""Ross (Gordon-Ross & Vahid) preloaded-loop-cache allocation.

The loop-cache controller can hold only a fixed number of regions
(typically 2-6; the paper's experiments use 4), each a contiguous
address range containing a loop or a whole function.  The published
heuristic greedily preloads the regions with the highest *execution-time
density* (execution count per byte) until the table or the SRAM is full.

Candidate regions here are the natural loops and the functions of the
program, mapped to the address spans their memory objects occupy in the
(unchanged, copy-semantics) main-memory image.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.allocation import Allocation, AllocationContext
from repro.core.conflict_graph import ConflictGraph
from repro.energy.model import EnergyModel
from repro.errors import ConfigurationError
from repro.memory.loopcache import LoopCacheConfig, LoopRegion
from repro.program.cfg import ControlFlowGraph
from repro.program.program import Program
from repro.traces.layout import LinkedImage, Placement
from repro.traces.memory_object import MemoryObject


@dataclass(frozen=True)
class _Candidate:
    region: LoopRegion
    fetches: int

    @property
    def density(self) -> float:
        return self.fetches / self.region.size


class RossLoopCacheAllocator:
    """Greedy execution-time-density preloading of loops and functions."""

    name = "ross"

    def __init__(self, config: LoopCacheConfig) -> None:
        self._config = config

    @property
    def config(self) -> LoopCacheConfig:
        """The loop cache being allocated for."""
        return self._config

    # ------------------------------------------------------------------

    def candidate_regions(
        self,
        program: Program,
        memory_objects: list[MemoryObject],
        image: LinkedImage,
        graph: ConflictGraph,
        config: LoopCacheConfig | None = None,
    ) -> list[_Candidate]:
        """Enumerate loop and function regions with their fetch counts.

        *config* overrides the constructor's loop-cache parameters
        (used by :meth:`allocate` when called with an explicit
        capacity).
        """
        config = config if config is not None else self._config
        block_home: dict[str, set[str]] = {}
        for mo in memory_objects:
            for fragment in mo.fragments:
                block_home.setdefault(fragment.block, set()).add(mo.name)

        candidates: list[_Candidate] = []
        seen_spans: set[tuple[int, int]] = set()

        def add_region(name: str, block_names: set[str]) -> None:
            mo_names: set[str] = set()
            for block_name in block_names:
                mo_names |= block_home.get(block_name, set())
            if not mo_names:
                return
            start = min(image.base_address(n) for n in mo_names)
            end = max(
                image.base_address(n)
                + image.memory_object(n).padded_size
                for n in mo_names
            )
            span = (start, end)
            if span in seen_spans or end - start > config.size:
                return
            seen_spans.add(span)
            covered = [
                mo for mo in memory_objects
                if start <= image.base_address(mo.name)
                and image.base_address(mo.name) + mo.padded_size <= end
            ]
            fetches = sum(graph.node(mo.name).fetches for mo in covered)
            if fetches == 0:
                return
            candidates.append(
                _Candidate(
                    LoopRegion(name=name, start=start, size=end - start),
                    fetches,
                )
            )

        for function in program.functions:
            cfg = ControlFlowGraph(function)
            for loop in cfg.natural_loops():
                add_region(f"loop:{loop.header}", set(loop.body))
            add_region(
                f"func:{function.name}",
                {block.name for block in function.blocks},
            )
        return candidates

    def allocate(
        self,
        graph: ConflictGraph,
        capacity: int | None = None,
        energy: EnergyModel | None = None,
        *,
        context: AllocationContext | None = None,
    ) -> Allocation:
        """Greedily preload the densest non-overlapping regions.

        Follows the unified :class:`repro.core.Allocator` protocol:
        the loop-region candidates come from the program structure, so
        *context* must carry the profiled program, its memory objects
        and the baseline image.  *capacity* (when given) overrides the
        constructor configuration's loop-cache size; *energy* is
        ignored — the heuristic ranks by fetch density alone.

        Raises:
            ConfigurationError: when *context* lacks the program,
                memory objects or image.
        """
        del energy
        if context is None or context.program is None \
                or context.memory_objects is None \
                or context.image is None:
            raise ConfigurationError(
                "ross allocation requires an AllocationContext with "
                "program, memory_objects and image"
            )
        config = self._config
        if capacity is not None and capacity != config.size:
            config = replace(config, size=capacity)
        candidates = self.candidate_regions(
            context.program, context.memory_objects, context.image,
            graph, config=config,
        )
        candidates.sort(key=lambda c: (-c.density, c.region.start))

        chosen: list[LoopRegion] = []
        used = 0
        for candidate in candidates:
            region = candidate.region
            if len(chosen) >= config.max_regions:
                break
            if used + region.size > config.size:
                continue
            if any(
                region.start < other.end and other.start < region.end
                for other in chosen
            ):
                continue
            chosen.append(region)
            used += region.size

        return Allocation(
            algorithm=self.name,
            loop_regions=tuple(chosen),
            placement=Placement.COPY,
            capacity=config.size,
            used_bytes=used,
        )
