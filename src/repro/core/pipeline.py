"""End-to-end experimental workflow (the paper's figure 3).

A :class:`Workbench` runs the flow once per (program, cache) pair —
profiling execution, trace generation, baseline cache simulation,
conflict-graph construction — and then evaluates any number of
allocation decisions against it: scratchpads of various sizes allocated
by CASA/Steinke/greedy, or preloaded loop caches allocated by Ross.

The workbench is a thin façade over the staged experiment engine
(:mod:`repro.engine`): every stage resolves through a
:class:`~repro.engine.runner.StageRunner`, so results come from the
content-addressed artifact store whenever the same inputs have been
profiled or simulated before — in this process or (with an on-disk
cache) any earlier one.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.allocation import Allocation, AllocationContext
from repro.engine.artifacts import (
    AllocationArtifact,
    BaselineSimArtifact,
    ConflictGraphArtifact,
    ExecutionArtifact,
    GridSimArtifact,
    StreamArtifact,
    TraceArtifact,
    baseline_digest,
    execution_digest,
    graph_digest,
    grid_digest,
    grid_result_digest,
    grid_sim_digest,
    result_digest,
    stream_digest,
    trace_digest,
)
from repro.engine.runner import StageRunner
from repro.core.casa import CasaAllocator
from repro.core.conflict_graph import ConflictGraph
from repro.core.greedy_allocator import GreedyCasaAllocator
from repro.core.ross import RossLoopCacheAllocator
from repro.core.steinke import SteinkeAllocator
from repro.energy.model import (
    EnergyBreakdown,
    EnergyModel,
    build_energy_model,
    compute_energy,
)
from repro.errors import ConfigurationError
from repro.memory.cache import CacheConfig
from repro.memory.hierarchy import (
    HierarchyConfig,
    resolve_backend,
    simulate,
)
from repro.memory.kernel import FetchStream, compile_stream
from repro.memory.loopcache import LoopCacheConfig
from repro.memory.stats import SimulationReport
from repro.obs import metrics
from repro.obs.trace import span
from repro.program.executor import execute_program
from repro.program.program import Program
from repro.traces.layout import (
    MAIN_BASE,
    SPM_BASE,
    LinkedImage,
    Placement,
)
from repro.traces.tracegen import TraceGenConfig, generate_traces


@dataclass(frozen=True)
class WorkbenchConfig:
    """Fixed parameters of one experimental setup.

    Attributes:
        cache: the L1 I-cache kept invariant through the sweep.
        tracegen: trace-formation parameters (the max trace size should
            not exceed the smallest scratchpad of the sweep).
        seed: executor seed for probabilistic branches.
        main_base: base address of the main-memory code image.
        spm_base: base address of the scratchpad region.
        backend: simulation backend — ``reference``, ``vector`` or
            ``auto`` (``None`` consults the ``CASA_BACKEND``
            environment variable, then defaults to ``auto``).  The
            loop-cache, overlay and phase-tracked simulations always
            use the reference interpreter regardless of this knob.
    """

    cache: CacheConfig = CacheConfig()
    tracegen: TraceGenConfig = TraceGenConfig()
    seed: int = 0
    main_base: int = MAIN_BASE
    spm_base: int = SPM_BASE
    backend: str | None = None

    def __post_init__(self) -> None:
        if self.cache.line_size != self.tracegen.line_size:
            raise ConfigurationError(
                "trace padding must match the cache line size "
                f"({self.tracegen.line_size} != {self.cache.line_size})"
            )
        resolve_backend(self.backend)


@dataclass
class ExperimentResult:
    """One allocation decision, simulated.

    Attributes:
        allocation: the allocator's decision.
        report: the memory-hierarchy simulation statistics.
        energy: the energy breakdown of the run.
        model: the per-event energies used.
    """

    allocation: Allocation
    report: SimulationReport
    energy: EnergyBreakdown
    model: EnergyModel

    @property
    def total_energy(self) -> float:
        """Total instruction-memory energy in nJ."""
        return self.energy.total


class Workbench:
    """Profiles a program once and evaluates allocations against it.

    All expensive stages resolve through the engine's stage runner and
    artifact store: constructing a second workbench with the same
    program and configuration (even in another process, given an
    on-disk store) replays no execution and no simulation.
    """

    def __init__(self, program: Program, config: WorkbenchConfig,
                 runner: StageRunner | None = None) -> None:
        self._program = program
        self._config = config
        self._runner = runner if runner is not None else StageRunner()

        exec_key = execution_digest(program, config.seed)
        execution = self._runner.resolve(
            "execution", exec_key,
            lambda: _compute_execution(program, config.seed, exec_key),
        )
        self._block_sequence = execution.block_sequence
        self._profile = execution.profile

        trace_key = trace_digest(exec_key, config.tracegen)
        trace = self._runner.resolve(
            "trace", trace_key,
            lambda: TraceArtifact(trace_key, generate_traces(
                program, self._profile, config.tracegen
            )),
        )
        self._memory_objects = trace.memory_objects
        self._trace_key = trace_key

        self._baseline_image = LinkedImage(
            program,
            self._memory_objects,
            spm_resident=frozenset(),
            spm_size=0,
            placement=Placement.COPY,
            main_base=config.main_base,
            spm_base=config.spm_base,
        )
        self._baseline_config = HierarchyConfig(cache=config.cache)
        base_key = baseline_digest(
            trace_key, config.cache, config.main_base, config.spm_base
        )
        baseline = self._runner.resolve(
            "baseline", base_key,
            lambda: BaselineSimArtifact(base_key, self._simulate_image(
                self._baseline_image, self._baseline_config
            )),
        )
        self._baseline_report = baseline.report

        self._graph_digest = graph_digest(base_key)
        graph_artifact = self._runner.resolve(
            "graph", self._graph_digest,
            lambda: ConflictGraphArtifact(
                self._graph_digest,
                ConflictGraph.from_simulation(
                    self._memory_objects, self._baseline_report
                ),
            ),
        )
        self._graph = graph_artifact.graph

    def attach_runner(self, runner: StageRunner) -> None:
        """Route subsequent result resolutions through *runner*.

        A memoised workbench keeps the runner that profiled it; a later
        experiment reusing the memo attaches its own runner so
        result-stage hits and computes are accounted to *its* run
        record (and store) rather than the original one's.
        """
        self._runner = runner

    # -- read-only views ----------------------------------------------------

    @property
    def program(self) -> Program:
        """The program under test."""
        return self._program

    @property
    def config(self) -> WorkbenchConfig:
        """The fixed experimental parameters."""
        return self._config

    @property
    def memory_objects(self):
        """The traces produced by trace generation."""
        return list(self._memory_objects)

    @property
    def conflict_graph(self) -> ConflictGraph:
        """The profiled conflict graph."""
        return self._graph

    @property
    def baseline_report(self) -> SimulationReport:
        """Statistics of the cache-only profiling run."""
        return self._baseline_report

    @property
    def block_sequence(self) -> list[str]:
        """The executed block sequence (shared by all evaluations)."""
        return self._block_sequence

    def baseline_result(self) -> ExperimentResult:
        """The cache-only hierarchy as an :class:`ExperimentResult`."""
        model = build_energy_model(self._baseline_config)
        return ExperimentResult(
            allocation=Allocation(algorithm="cache-only"),
            report=self._baseline_report,
            energy=compute_energy(self._baseline_report, model),
            model=model,
        )

    # -- evaluation ----------------------------------------------------------

    def allocation_context(self) -> AllocationContext:
        """The profiling context handed to every allocator."""
        return AllocationContext(
            program=self._program,
            memory_objects=list(self._memory_objects),
            image=self._baseline_image,
        )

    def _stream_key(self, image: LinkedImage) -> str:
        """Digest of *image*'s compiled fetch stream (cheap, no compile)."""
        return stream_digest(
            self._trace_key,
            image.spm_resident,
            image.placement,
            self._config.main_base,
            self._config.spm_base,
        )

    def _resolve_stream(self, image: LinkedImage) -> FetchStream:
        """Resolve the compiled fetch stream of *image* (cached).

        The stream is a per-(program, layout) engine artifact: any
        earlier run — in this process or, with a disk store, any
        process — that compiled the same layout over the same executed
        block sequence serves it from the store.
        """
        key = self._stream_key(image)
        artifact = self._runner.resolve(
            "stream", key,
            lambda: StreamArtifact(key, compile_stream(
                image, self._block_sequence,
                spm_base=self._config.spm_base,
            )),
        )
        return artifact.stream

    def _simulate_image(self, image: LinkedImage,
                        hierarchy: HierarchyConfig) -> SimulationReport:
        """Simulate *image* under the configured backend.

        When the backend may take the vector path, the compiled fetch
        stream is resolved through the artifact store first so a sweep
        compiles each layout once.
        """
        stream = None
        if resolve_backend(self._config.backend) != "reference":
            stream = self._resolve_stream(image)
        return simulate(
            image, hierarchy, self._block_sequence,
            spm_base=self._config.spm_base,
            backend=self._config.backend,
            stream=stream,
        )

    def simulate_image_grid(self, image: LinkedImage,
                            configs) -> list[SimulationReport]:
        """Replay *image* under a whole cache axis, as one artifact.

        The axis (a :class:`~repro.memory.kernel.grid.SweepGrid` or any
        iterable of hierarchy configs) resolves to a single ``grid_sim``
        artifact: the kernel replays every geometry it supports in one
        stack-distance pass per scan group, while configurations the
        kernel cannot replay — and every configuration of a
        reference-backend session — go through the reference
        interpreter per config (counted in ``sim.kernel.fallbacks``
        when a kernel session had to divert).  Reports are
        bit-identical to :meth:`_simulate_image` per config, which the
        ``repro verify-grid`` gate enforces.
        """
        from repro.memory.kernel import SweepGrid, simulate_grid, \
            unsupported_reason

        grid = configs if isinstance(configs, SweepGrid) \
            else SweepGrid.of(configs)
        key = grid_sim_digest(self._stream_key(image), grid.describe())

        def compute() -> GridSimArtifact:
            reports: list[SimulationReport | None] = [None] * len(grid)
            use_kernel = \
                resolve_backend(self._config.backend) != "reference"
            covered = [
                index for index, cfg in enumerate(grid.configs)
                if use_kernel and unsupported_reason(cfg) is None
            ]
            if covered:
                stream = self._resolve_stream(image)
                subgrid = SweepGrid.of(
                    grid.configs[index] for index in covered
                )
                replayed = simulate_grid(
                    stream, subgrid, spm_base=self._config.spm_base
                )
                for index, report in zip(covered, replayed):
                    reports[index] = report
            for index, cfg in enumerate(grid.configs):
                if reports[index] is not None:
                    continue
                if use_kernel:
                    metrics.inc("sim.kernel.fallbacks")
                reports[index] = simulate(
                    image, cfg, self._block_sequence,
                    spm_base=self._config.spm_base,
                    backend="reference",
                )
            return GridSimArtifact(key, reports)

        artifact = self._runner.resolve("grid_sim", key, compute)
        return list(artifact.reports)

    def spm_energy_model(self, spm_size: int) -> EnergyModel:
        """Per-event energies of the cache + scratchpad hierarchy."""
        return build_energy_model(
            HierarchyConfig(cache=self._config.cache, spm_size=spm_size)
        )

    def evaluate_spm(self, allocation: Allocation,
                     spm_size: int) -> ExperimentResult:
        """Simulate a scratchpad allocation decision."""
        with span("workbench.evaluate_spm", spm_size=spm_size,
                  algorithm=allocation.algorithm):
            return self._evaluate_spm(allocation, spm_size)

    def _evaluate_spm(self, allocation: Allocation,
                      spm_size: int) -> ExperimentResult:
        image = LinkedImage(
            self._program,
            self._memory_objects,
            spm_resident=allocation.spm_resident,
            spm_size=spm_size,
            placement=allocation.placement,
            main_base=self._config.main_base,
            spm_base=self._config.spm_base,
        )
        hierarchy = HierarchyConfig(
            cache=self._config.cache, spm_size=spm_size
        )
        report = self._simulate_image(image, hierarchy)
        model = build_energy_model(hierarchy)
        return ExperimentResult(
            allocation=allocation,
            report=report,
            energy=compute_energy(report, model),
            model=model,
        )

    def evaluate_loop_cache(
        self, allocation: Allocation, lc_config: LoopCacheConfig
    ) -> ExperimentResult:
        """Simulate a preloaded-loop-cache decision."""
        with span("workbench.evaluate_loop_cache",
                  lc_size=lc_config.size,
                  algorithm=allocation.algorithm):
            return self._evaluate_loop_cache(allocation, lc_config)

    def _evaluate_loop_cache(
        self, allocation: Allocation, lc_config: LoopCacheConfig
    ) -> ExperimentResult:
        hierarchy = HierarchyConfig(
            cache=self._config.cache, loop_cache=lc_config
        )
        report = simulate(
            self._baseline_image,
            hierarchy,
            self._block_sequence,
            loop_regions=list(allocation.loop_regions),
            backend="reference",
        )
        model = build_energy_model(hierarchy)
        return ExperimentResult(
            allocation=allocation,
            report=report,
            energy=compute_energy(report, model),
            model=model,
        )

    # -- allocator front doors -----------------------------------------------

    def _allocate_and_evaluate(
        self, allocator, spm_size: int,
        warm_start: frozenset[str] | None = None,
    ) -> ExperimentResult:
        """Run one scratchpad allocator and simulate its decision.

        *warm_start* (a resident set from a neighbouring capacity
        step) is forwarded to allocators that accept it — currently
        CASA's branch & bound — and left out otherwise.
        """
        kwargs = {} if warm_start is None else {"warm_start": warm_start}
        with span("alloc.allocate",
                  allocator=type(allocator).__name__,
                  spm_size=spm_size) as alloc_span:
            allocation = allocator.allocate(
                self._graph, spm_size, self.spm_energy_model(spm_size),
                context=self.allocation_context(), **kwargs,
            )
            alloc_span.add(objects=len(allocation.spm_resident),
                           solver_nodes=allocation.solver_nodes)
        return self.evaluate_spm(allocation, spm_size)

    def _cached_result(self, algorithm: str, spm_size: int, compute,
                       **options) -> ExperimentResult:
        """Resolve one evaluated allocation through the artifact store."""
        key = result_digest(
            self._graph_digest, algorithm, spm_size, options or None
        )
        artifact = self._runner.resolve(
            "result", key, lambda: AllocationArtifact(key, compute())
        )
        return artifact.result

    def run_casa(self, spm_size: int,
                 allocator: CasaAllocator | None = None) -> ExperimentResult:
        """Allocate with CASA and simulate the outcome.

        A custom *allocator* (non-default configuration) bypasses the
        artifact store, whose digest only identifies the defaults.
        """
        if allocator is not None:
            return self._allocate_and_evaluate(allocator, spm_size)
        return self._cached_result(
            "casa", spm_size,
            lambda: self._allocate_and_evaluate(CasaAllocator(), spm_size),
        )

    def run_steinke(self, spm_size: int) -> ExperimentResult:
        """Allocate with the Steinke baseline and simulate the outcome."""
        return self._cached_result(
            "steinke", spm_size,
            lambda: self._allocate_and_evaluate(
                SteinkeAllocator(), spm_size
            ),
        )

    def run_greedy(self, spm_size: int) -> ExperimentResult:
        """Allocate with the greedy ablation and simulate the outcome."""
        return self._cached_result(
            "greedy", spm_size,
            lambda: self._allocate_and_evaluate(
                GreedyCasaAllocator(), spm_size
            ),
        )

    def run_grid(self, algorithm: str, spm_sizes,
                 max_regions: int = 4) -> list[ExperimentResult]:
        """Evaluate one allocator across a whole capacity axis.

        Capacities are solved in ascending order so each CASA step can
        warm-start its branch & bound from the previous step's
        resident set (``ilp.warm_start.*`` telemetry counts the
        adoptions); the conflict graph is profiled once and shared by
        every step.  Results come back in the order of *spm_sizes*.

        Each step resolves through the artifact store under a digest
        chained off the whole axis (:func:`grid_result_digest`), so
        grid runs never serve — or are served by — the per-point
        ``result`` entries: warm-started solver telemetry stays
        attributable to its axis.

        Args:
            algorithm: ``casa`` | ``steinke`` | ``greedy`` | ``ross``
                | ``baseline``.
            spm_sizes: scratchpad (or, for Ross, loop-cache)
                capacities in bytes.
            max_regions: Ross's region budget (ignored otherwise).
        """
        sizes = tuple(spm_sizes)
        if algorithm == "baseline":
            return [self.baseline_result() for _ in sizes]
        steppers = {
            "casa": lambda size, warm: self._allocate_and_evaluate(
                CasaAllocator(), size, warm_start=warm
            ),
            "steinke": lambda size, warm: self._allocate_and_evaluate(
                SteinkeAllocator(), size
            ),
            "greedy": lambda size, warm: self._allocate_and_evaluate(
                GreedyCasaAllocator(), size
            ),
            "ross": lambda size, warm: self._run_ross_direct(
                size, max_regions
            ),
        }
        if algorithm not in steppers:
            raise ConfigurationError(
                f"unknown grid algorithm {algorithm!r} "
                f"(expected one of {sorted(steppers)} or 'baseline')"
            )
        step = steppers[algorithm]
        ordered = tuple(sorted(set(sizes)))
        options = {"max_regions": max_regions} \
            if algorithm == "ross" else None
        grid_key = grid_digest(
            self._graph_digest, algorithm, ordered, options
        )
        by_size: dict[int, ExperimentResult] = {}
        warm: frozenset[str] | None = None
        for size in ordered:
            key = grid_result_digest(grid_key, size)

            def compute(size=size, warm=warm, key=key):
                return AllocationArtifact(key, step(size, warm))

            # Each capacity step is one logical design point: its wall
            # time feeds the live point.evaluate percentile sketch.
            started = time.perf_counter()
            result = self._runner.resolve("result", key, compute).result
            metrics.observe("point.evaluate.seconds",
                            time.perf_counter() - started)
            by_size[size] = result
            # Thread the chain even through store hits so every step
            # sees the same predecessor regardless of cache warmth.
            warm = result.allocation.spm_resident
        return [by_size[size] for size in sizes]

    def run_overlay(self, spm_size: int,
                    allocator: "OverlayAllocator | None" = None
                    ) -> ExperimentResult:
        """Allocate per-phase scratchpad contents and simulate them.

        Implements the paper's announced future work (dynamic copying /
        overlay): detect the program's top-level-loop phases, bin the
        profiling run per phase, solve the overlay ILP, and replay with
        the scratchpad contents swapped (and the copy traffic charged)
        at every phase transition.
        """
        from repro.core.overlay import (
            OverlayAllocator,
            PhasedConflictData,
        )

        allocator = allocator or OverlayAllocator()
        partition, phased_report = self._phase_profile()
        data = PhasedConflictData.from_simulation(
            self._memory_objects, phased_report, partition.num_phases
        )
        model = self.spm_energy_model(spm_size)
        overlay = allocator.allocate(data, spm_size, model)

        phase_plans: dict[int, dict] = {}
        resident_sizes: dict[str, int] = {}
        for phase_index, resident in enumerate(overlay.residents):
            image = LinkedImage(
                self._program,
                self._memory_objects,
                spm_resident=resident,
                spm_size=spm_size,
                placement=Placement.COPY,
                main_base=self._config.main_base,
                spm_base=self._config.spm_base,
            )
            phase_plans[phase_index] = image.all_plans()
            for name in resident:
                resident_sizes[name] = \
                    image.memory_object(name).unpadded_size

        hierarchy = HierarchyConfig(
            cache=self._config.cache, spm_size=spm_size
        )
        from repro.memory.hierarchy import InstructionMemorySimulator
        simulator = InstructionMemorySimulator(
            self._baseline_image, hierarchy,
            spm_base=self._config.spm_base,
        )
        report = simulator.run_overlay(
            self._block_sequence,
            partition.block_phase,
            phase_plans,
            {i: r for i, r in enumerate(overlay.residents)},
            resident_sizes,
            charge_initial_copies=(
                allocator.config.charge_initial_copies
            ),
        )
        energy_model = build_energy_model(hierarchy)
        allocation = Allocation(
            algorithm="casa-overlay",
            spm_resident=overlay.all_residents,
            placement=Placement.COPY,
            predicted_energy=overlay.predicted_energy,
            solver_nodes=overlay.solver_nodes,
            capacity=spm_size,
            used_bytes=max(
                (sum(resident_sizes[n] for n in resident)
                 for resident in overlay.residents),
                default=0,
            ),
        )
        return ExperimentResult(
            allocation=allocation,
            report=report,
            energy=compute_energy(report, energy_model),
            model=energy_model,
        )

    def _phase_profile(self):
        """Phase partition + phase-tracked baseline run (cached)."""
        if not hasattr(self, "_phase_profile_cache"):
            from repro.core.phases import detect_phases
            partition = detect_phases(self._program)
            report = simulate(
                self._baseline_image,
                self._baseline_config,
                self._block_sequence,
                block_phases=partition.block_phase,
                backend="reference",
            )
            self._phase_profile_cache = (partition, report)
        return self._phase_profile_cache

    def run_ross(self, lc_size: int,
                 max_regions: int = 4) -> ExperimentResult:
        """Allocate a preloaded loop cache with Ross's heuristic."""
        return self._cached_result(
            "ross", lc_size,
            lambda: self._run_ross_direct(lc_size, max_regions),
            max_regions=max_regions,
        )

    def _run_ross_direct(self, lc_size: int,
                         max_regions: int) -> ExperimentResult:
        """Uncached Ross allocation + loop-cache simulation."""
        lc_config = LoopCacheConfig(size=lc_size, max_regions=max_regions)
        allocation = RossLoopCacheAllocator(lc_config).allocate(
            self._graph, context=self.allocation_context()
        )
        return self.evaluate_loop_cache(allocation, lc_config)


def _compute_execution(program: Program, seed: int,
                       digest: str) -> ExecutionArtifact:
    """Run the profiling execution and wrap it as a stage artifact."""
    execution = execute_program(program, seed=seed)
    return ExecutionArtifact(
        digest, execution.block_sequence, execution.profile
    )
