"""Simulated-annealing scratchpad allocation (solver ablation).

Between the greedy heuristic and the exact ILP sits the classic
metaheuristic family.  This allocator optimises the same objective as
CASA — :meth:`~repro.core.conflict_graph.ConflictGraph.predicted_energy`
— with single-object flip moves and a geometric cooling schedule.  It
exists to quantify where annealing lands between greedy and exact on
real conflict graphs (see ``bench_ablation_solvers``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.allocation import Allocation, AllocationContext
from repro.core.conflict_graph import ConflictGraph
from repro.energy.model import EnergyModel
from repro.traces.layout import Placement
from repro.utils.rng import DeterministicRng


@dataclass(frozen=True)
class AnnealingConfig:
    """Annealing schedule parameters.

    Attributes:
        iterations: total move proposals.
        initial_temperature: starting temperature, as a fraction of the
            empty-allocation energy (scale-free).
        cooling: geometric cooling factor per iteration.
        seed: RNG seed (the run is fully deterministic).
        include_compulsory: as in :class:`~repro.core.casa.CasaConfig`.
    """

    iterations: int = 4000
    initial_temperature: float = 0.01
    cooling: float = 0.999
    seed: int = 0
    include_compulsory: bool = True


class AnnealingAllocator:
    """Single-flip simulated annealing over the CASA objective."""

    name = "annealing"

    def __init__(self, config: AnnealingConfig | None = None) -> None:
        self._config = config or AnnealingConfig()

    def allocate(
        self,
        graph: ConflictGraph,
        spm_size: int,
        energy: EnergyModel,
        *,
        context: AllocationContext | None = None,
    ) -> Allocation:
        """Anneal from the empty allocation.

        Moves that would overflow the scratchpad are rejected outright;
        uphill moves are accepted with the Metropolis probability.
        *context* is accepted for protocol conformance and ignored.
        """
        del context
        config = self._config
        rng = DeterministicRng(config.seed)
        candidates = [
            node.name for node in graph.nodes()
            if 0 < node.size <= spm_size
        ]
        if not candidates:
            return self._finish(graph, frozenset(), spm_size, energy)

        current: set[str] = set()
        used = 0
        current_energy = graph.predicted_energy(
            current, energy, config.include_compulsory
        )
        best = set(current)
        best_energy = current_energy
        temperature = max(current_energy, 1.0) \
            * config.initial_temperature

        for _ in range(config.iterations):
            name = rng.choice(candidates)
            size = graph.node(name).size
            if name in current:
                proposal = current - {name}
                new_used = used - size
            else:
                proposal = current | {name}
                new_used = used + size
                # Composite swap move: evict random residents until the
                # newcomer fits, so full-capacity states are not local
                # traps for single flips.
                while new_used > spm_size and len(proposal) > 1:
                    evictee = rng.choice(
                        sorted(proposal - {name})
                    )
                    proposal = proposal - {evictee}
                    new_used -= graph.node(evictee).size
                if new_used > spm_size:
                    temperature *= config.cooling
                    continue
            proposal_energy = graph.predicted_energy(
                proposal, energy, config.include_compulsory
            )
            delta = proposal_energy - current_energy
            accept = delta <= 0 or (
                temperature > 0
                and rng.coin(min(1.0, math.exp(-delta / temperature)))
            )
            if accept:
                current = proposal
                current_energy = proposal_energy
                used = new_used
                if current_energy < best_energy:
                    best = set(current)
                    best_energy = current_energy
            temperature *= config.cooling

        return self._finish(graph, frozenset(best), spm_size, energy)

    def _finish(self, graph: ConflictGraph, resident: frozenset[str],
                spm_size: int, energy: EnergyModel) -> Allocation:
        used = sum(graph.node(name).size for name in resident)
        return Allocation(
            algorithm=self.name,
            spm_resident=resident,
            placement=Placement.COPY,
            predicted_energy=graph.predicted_energy(
                resident, energy, self._config.include_compulsory
            ),
            capacity=spm_size,
            used_bytes=used,
        )
