"""Scratchpad overlay: dynamic copying of memory objects (future work).

The paper's conclusion announces "dynamic copying (overlay) of memory
objects on the scratchpad" as the next step.  This module implements
that extension: the program is split into phases
(:mod:`repro.core.phases`), the profiling simulation is binned per
phase, and an extended ILP picks a *per-phase* scratchpad content,
paying an explicit copy cost whenever an object becomes resident at a
phase boundary:

* ``l[p][i] = 1`` iff object ``x_i`` stays cacheable during phase ``p``
  (eq. 7, per phase);
* copy indicator ``c[p][i] >= l[p-1][i] - l[p][i]`` — an object that
  was cacheable before and is scratchpad-resident now must be copied
  in; the phase-0 fill is free by default (static allocators also
  preload at boot for free);
* the capacity constraint (eq. 17) is repeated per phase;
* per-phase conflict terms use the per-phase miss counts ``m_ij^p``
  with the same linearisation as the static ILP.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.energy.model import EnergyModel
from repro.errors import ConfigurationError, SolverError
from repro.ilp import (
    BranchAndBoundSolver,
    LinExpr,
    Model,
    Sense,
    SolveStatus,
)
from repro.memory.stats import SimulationReport
from repro.traces.memory_object import MemoryObject


@dataclass
class PhasedConflictData:
    """Per-phase profiling data at memory-object granularity.

    Attributes:
        num_phases: number of execution phases.
        sizes: object name -> unpadded size in bytes.
        fetches: ``(phase, name)`` -> instruction fetches.
        conflicts: ``(phase, victim, evictor)`` -> conflict misses
            (victim != evictor; self-conflicts are in ``self_misses``).
        self_misses: ``(phase, name)`` -> self-conflict misses.
        compulsory: ``(phase, name)`` -> first-touch misses.
    """

    num_phases: int
    sizes: dict[str, int]
    fetches: Counter = field(default_factory=Counter)
    conflicts: Counter = field(default_factory=Counter)
    self_misses: Counter = field(default_factory=Counter)
    compulsory: Counter = field(default_factory=Counter)

    @classmethod
    def from_simulation(
        cls,
        memory_objects: list[MemoryObject],
        report: SimulationReport,
        num_phases: int,
    ) -> "PhasedConflictData":
        """Build from a phase-tracked, cache-only profiling run."""
        if report.spm_accesses or report.lc_accesses:
            raise ConfigurationError(
                "phased conflict data must come from a cache-only run"
            )
        if not report.phase_mo_stats:
            raise ConfigurationError(
                "the profiling run was not phase-tracked "
                "(pass block_phases to the simulator)"
            )
        data = cls(
            num_phases=num_phases,
            sizes={mo.name: mo.unpadded_size for mo in memory_objects},
        )
        for (phase, name), stats in report.phase_mo_stats.items():
            data.fetches[(phase, name)] = stats.fetches
            data.compulsory[(phase, name)] = stats.compulsory_misses
        for (phase, victim, evictor), count in \
                report.phase_conflicts.items():
            if victim == evictor:
                data.self_misses[(phase, victim)] += count
            else:
                data.conflicts[(phase, victim, evictor)] += count
        return data

    @property
    def object_names(self) -> list[str]:
        """All object names, in layout order."""
        return list(self.sizes)


def overlay_predicted_energy(
    data: PhasedConflictData,
    residents: list[frozenset[str]] | list[set[str]],
    energy: EnergyModel,
    include_compulsory: bool = True,
    charge_initial_copies: bool = False,
) -> float:
    """Evaluate the overlay objective for a given per-phase assignment.

    The reference implementation of the ILP's objective — used by tests
    to verify optimality by brute force, and by callers to score
    hand-written overlay schedules.
    """
    if len(residents) != data.num_phases:
        raise ConfigurationError(
            f"need one resident set per phase "
            f"({len(residents)} != {data.num_phases})"
        )
    miss_premium = energy.cache_miss - energy.cache_hit
    copy_energy = energy.main_word + energy.spm_access
    total = 0.0
    for phase in range(data.num_phases):
        resident = residents[phase]
        for name in data.object_names:
            fetches = data.fetches.get((phase, name), 0)
            if name in resident:
                total += fetches * energy.spm_access
            else:
                total += fetches * energy.cache_hit
                extra = data.self_misses.get((phase, name), 0)
                if include_compulsory:
                    extra += data.compulsory.get((phase, name), 0)
                total += extra * miss_premium
            # copy-in cost
            words = data.sizes[name] // 4
            if name in resident:
                previous_resident = (
                    phase > 0 and name in residents[phase - 1]
                )
                if phase == 0:
                    if charge_initial_copies:
                        total += words * copy_energy
                elif not previous_resident:
                    total += words * copy_energy
        for (p, victim, evictor), weight in data.conflicts.items():
            if p != phase:
                continue
            if victim not in resident and evictor not in resident:
                total += weight * miss_premium
    return total


@dataclass
class OverlayAllocation:
    """Per-phase scratchpad contents chosen by the overlay ILP.

    Attributes:
        residents: per-phase frozensets of scratchpad-resident objects.
        predicted_energy: ILP objective in nJ (incl. copy energy).
        predicted_copy_words: words the model expects to copy.
        solver_nodes: branch & bound nodes explored.
    """

    residents: list[frozenset[str]]
    predicted_energy: float
    predicted_copy_words: int
    solver_nodes: int

    @property
    def num_phases(self) -> int:
        """Number of phases."""
        return len(self.residents)

    @property
    def all_residents(self) -> frozenset[str]:
        """Objects resident during at least one phase."""
        result: set[str] = set()
        for resident in self.residents:
            result |= resident
        return frozenset(result)


@dataclass(frozen=True)
class OverlayConfig:
    """Options of the overlay allocator.

    Attributes:
        include_compulsory: charge first-touch misses of cached objects.
        charge_initial_copies: charge the phase-0 scratchpad fill
            (default off — static allocation preloads at boot for free).
        max_nodes: branch & bound node limit.
    """

    include_compulsory: bool = True
    charge_initial_copies: bool = False
    max_nodes: int = 400_000


class OverlayAllocator:
    """Optimal per-phase scratchpad contents with copy costs."""

    name = "casa-overlay"

    def __init__(self, config: OverlayConfig | None = None) -> None:
        self._config = config or OverlayConfig()

    @property
    def config(self) -> OverlayConfig:
        """The allocator's options."""
        return self._config

    def copy_word_energy(self, energy: EnergyModel) -> float:
        """Energy (nJ) to move one word into the scratchpad.

        One off-chip read plus one scratchpad write.
        """
        return energy.main_word + energy.spm_access

    def allocate(
        self,
        data: PhasedConflictData,
        spm_size: int,
        energy: EnergyModel,
    ) -> OverlayAllocation:
        """Solve the overlay ILP.

        Raises:
            SolverError: if the ILP cannot be solved to optimality.
        """
        config = self._config
        model = Model("casa-overlay", Sense.MINIMIZE)
        # Objects never fetched (and never missing) in any phase can
        # only cost capacity/copies: keep them cacheable, no variables.
        involved: set[str] = set()
        for (_, name), count in data.fetches.items():
            if count:
                involved.add(name)
        for (_, name), count in data.self_misses.items():
            if count:
                involved.add(name)
        for (_, name), count in data.compulsory.items():
            if count:
                involved.add(name)
        for (_, victim, evictor), count in data.conflicts.items():
            if count:
                involved.add(victim)
                involved.add(evictor)
        names = [n for n in data.object_names if n in involved]
        phases = range(data.num_phases)
        if not names:
            # Nothing is ever fetched: everything stays cacheable.
            return OverlayAllocation(
                residents=[frozenset() for _ in phases],
                predicted_energy=0.0,
                predicted_copy_words=0,
                solver_nodes=0,
            )

        cached = {
            (p, name): model.add_binary(f"l[{p},{name}]")
            for p in phases for name in names
        }

        miss_premium = energy.cache_miss - energy.cache_hit
        hit_premium = energy.cache_hit - energy.spm_access
        copy_energy = self.copy_word_energy(energy)
        objective = LinExpr()
        copy_words_expr = LinExpr()

        for p in phases:
            for name in names:
                fetches = data.fetches.get((p, name), 0)
                objective = objective + fetches * energy.spm_access
                linear = fetches * hit_premium
                extra = data.self_misses.get((p, name), 0)
                if config.include_compulsory:
                    extra += data.compulsory.get((p, name), 0)
                linear += extra * miss_premium
                if linear:
                    objective = objective + linear * cached[(p, name)]

                # copy-in indicator
                words = data.sizes[name] // 4
                if words == 0:
                    continue
                if p == 0:
                    if config.charge_initial_copies:
                        copy_var = model.add_variable(
                            f"c[0,{name}]", 0.0, 1.0
                        )
                        model.add_constraint(
                            copy_var + cached[(0, name)] >= 1
                        )
                        objective = objective + (
                            words * copy_energy
                        ) * copy_var
                        copy_words_expr = copy_words_expr + \
                            words * copy_var
                    continue
                copy_var = model.add_variable(f"c[{p},{name}]", 0.0, 1.0)
                model.add_constraint(
                    copy_var - cached[(p - 1, name)]
                    + cached[(p, name)] >= 0,
                    f"copyin[{p},{name}]",
                )
                objective = objective + (words * copy_energy) * copy_var
                copy_words_expr = copy_words_expr + words * copy_var

            # eq. 17 per phase
            usage = LinExpr.total(
                (1 - cached[(p, name)]) * data.sizes[name]
                for name in names
            )
            model.add_constraint(usage <= spm_size, f"capacity[{p}]")

        # per-phase conflict terms with linearisation
        for (p, victim, evictor), weight in sorted(data.conflicts.items()):
            product = model.add_variable(
                f"L[{p},{victim},{evictor}]", 0.0, 1.0
            )
            l_i = cached[(p, victim)]
            l_j = cached[(p, evictor)]
            model.add_constraint(l_i - product >= 0)
            model.add_constraint(l_j - product >= 0)
            model.add_constraint(l_i + l_j - 2 * product <= 1)
            model.add_constraint(l_i + l_j - product <= 1)
            objective = objective + (weight * miss_premium) * product

        model.set_objective(objective)
        result = model.solve(BranchAndBoundSolver(
            max_nodes=config.max_nodes))
        if result.status is not SolveStatus.OPTIMAL:
            raise SolverError(
                f"overlay ILP not optimal: {result.status.value}"
            )

        residents = [
            frozenset(
                name for name in names
                if result.binary_value(cached[(p, name)]) == 0
            )
            for p in phases
        ]
        assert result.objective is not None
        copy_words = int(round(copy_words_expr.evaluate(result.values)))
        return OverlayAllocation(
            residents=residents,
            predicted_energy=result.objective,
            predicted_copy_words=copy_words,
            solver_nodes=result.nodes_explored,
        )
