"""Conflict-aware code placement (Tomiyama/Yasuura-style baseline).

The paper's related work (section 2) discusses *code placement*
techniques [10, 14] that reduce I-cache misses by choosing **where** in
main memory each trace sits, instead of (or before) deciding what to
copy to a scratchpad.  This module provides that complementary baseline
so placement and allocation can be compared and combined:

* traces are placed hottest-first;
* for each trace the greedy evaluates every cache-set alignment and
  picks the one minimising the overlap with already-placed hot code,
  then realises that alignment by inserting cold traces as padding.

The result is a permutation of the memory objects; the existing
:class:`~repro.traces.layout.LinkedImage` consumes it directly (traces
are relocatable by construction).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.conflict_graph import ConflictGraph
from repro.errors import ConfigurationError
from repro.memory.cache import CacheConfig
from repro.traces.memory_object import MemoryObject


@dataclass
class PlacementResult:
    """Outcome of conflict-aware placement.

    Attributes:
        order: the memory objects in their new layout order.
        predicted_pressure: sum over cache sets of the fetch weight
            beyond the heaviest single occupant — the same contention
            metric as :mod:`repro.analysis.setpressure`; lower means
            less predicted conflict.
    """

    order: list[MemoryObject]
    predicted_pressure: float


def _pressure(set_occupants: list[dict[str, float]]) -> float:
    total = 0.0
    for occupants in set_occupants:
        if occupants:
            weight = sum(occupants.values())
            total += weight - max(occupants.values())
    return total


class ConflictAwarePlacer:
    """Greedy hot-first trace placement over the cache-set space."""

    name = "tomiyama-placement"

    def __init__(self, cache: CacheConfig) -> None:
        self._cache = cache

    def place(
        self,
        memory_objects: list[MemoryObject],
        graph: ConflictGraph,
    ) -> PlacementResult:
        """Reorder *memory_objects* to spread hot traces across sets."""
        if not memory_objects:
            raise ConfigurationError("nothing to place")
        num_sets = self._cache.num_sets

        weights = {
            mo.name: graph.node(mo.name).fetches / max(1, mo.num_lines)
            for mo in memory_objects
        }
        hot = [mo for mo in memory_objects if weights[mo.name] > 0]
        cold = [mo for mo in memory_objects if weights[mo.name] == 0]
        hot.sort(key=lambda mo: -weights[mo.name] * mo.num_lines)

        set_occupants: list[dict[str, float]] = [
            {} for _ in range(num_sets)
        ]
        order: list[MemoryObject] = []
        cursor_lines = 0

        def record(mo: MemoryObject, start_line: int) -> None:
            for offset in range(mo.num_lines):
                occupants = set_occupants[(start_line + offset)
                                          % num_sets]
                occupants[mo.name] = (
                    occupants.get(mo.name, 0.0) + weights[mo.name]
                )

        def alignment_cost(mo: MemoryObject, alignment: int) -> float:
            cost = 0.0
            for offset in range(min(mo.num_lines, num_sets)):
                occupants = set_occupants[(alignment + offset)
                                          % num_sets]
                cost += sum(occupants.values())
            return cost

        cold_iter = iter(cold)
        for mo in hot:
            best_alignment = cursor_lines % num_sets
            best_cost = alignment_cost(mo, best_alignment)
            for alignment in range(num_sets):
                cost = alignment_cost(mo, alignment)
                if cost < best_cost - 1e-9:
                    best_cost = cost
                    best_alignment = alignment
            # Realise the alignment by inserting cold padding.
            while cursor_lines % num_sets != best_alignment:
                filler = next(cold_iter, None)
                if filler is None:
                    break  # no padding left: place at the cursor
                order.append(filler)
                record(filler, cursor_lines)
                cursor_lines += filler.num_lines
            order.append(mo)
            record(mo, cursor_lines)
            cursor_lines += mo.num_lines

        for filler in cold_iter:
            order.append(filler)
            record(filler, cursor_lines)
            cursor_lines += filler.num_lines

        return PlacementResult(
            order=order,
            predicted_pressure=_pressure(set_occupants),
        )
