"""Allocation results and inputs shared by all allocators."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.memory.loopcache import LoopRegion
from repro.traces.layout import Placement

if TYPE_CHECKING:
    from repro.program.program import Program
    from repro.traces.layout import LinkedImage
    from repro.traces.memory_object import MemoryObject


@dataclass(frozen=True)
class AllocationContext:
    """Profiling context an allocator may consult beyond the graph.

    Most allocators decide from the conflict graph and the energy
    model alone; the ones that inspect program structure (Ross's
    loop-region heuristic) additionally receive the profiled program,
    its memory objects and the baseline linked image through this
    bundle.  The unified ``allocate(graph, capacity, energy, *,
    context)`` protocol (see :class:`repro.core.Allocator`) passes it
    to every allocator, which is free to ignore it.

    Attributes:
        program: the profiled program.
        memory_objects: the trace-formation output.
        image: the baseline (cache-only) linked image.
        extras: free-form additional inputs for future allocators.
    """

    program: "Program | None" = None
    memory_objects: "list[MemoryObject] | None" = None
    image: "LinkedImage | None" = None
    extras: dict[str, Any] | None = None


@dataclass
class Allocation:
    """Decision of one allocator.

    Attributes:
        algorithm: allocator name (``casa``, ``steinke``, ``ross`` ...).
        spm_resident: memory objects placed on the scratchpad (empty for
            loop-cache allocations).
        loop_regions: preloaded loop-cache regions (empty for scratchpad
            allocations).
        placement: how the main-memory image treats the residents
            (copy for CASA, compact for Steinke).
        predicted_energy: the allocator's own estimate of the resulting
            energy in nJ (``None`` when the algorithm does not predict
            one, e.g. Ross's greedy heuristic).
        solver_nodes: branch & bound nodes used (0 for non-ILP methods).
        solver_status: solver outcome (``optimal``, ``node_limit``, ...;
            empty for non-ILP methods).
        solver_gap: relative optimality gap the solver proved (``None``
            for non-ILP methods).
        capacity: the scratchpad/loop-cache capacity allocated against.
        used_bytes: bytes of the capacity actually consumed.
    """

    algorithm: str
    spm_resident: frozenset[str] = frozenset()
    loop_regions: tuple[LoopRegion, ...] = ()
    placement: Placement = Placement.COPY
    predicted_energy: float | None = None
    solver_nodes: int = 0
    solver_status: str = ""
    solver_gap: float | None = None
    capacity: int = 0
    used_bytes: int = 0

    @property
    def utilisation(self) -> float:
        """Fraction of the capacity used (0 for a zero-size memory)."""
        if self.capacity == 0:
            return 0.0
        return self.used_bytes / self.capacity

    def describe(self) -> str:
        """One-line summary for reports."""
        if self.loop_regions:
            what = f"{len(self.loop_regions)} regions"
        else:
            what = f"{len(self.spm_resident)} objects"
        return (
            f"{self.algorithm}: {what}, "
            f"{self.used_bytes}/{self.capacity} bytes"
        )
