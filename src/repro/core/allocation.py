"""Allocation results shared by all allocators."""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.loopcache import LoopRegion
from repro.traces.layout import Placement


@dataclass
class Allocation:
    """Decision of one allocator.

    Attributes:
        algorithm: allocator name (``casa``, ``steinke``, ``ross`` ...).
        spm_resident: memory objects placed on the scratchpad (empty for
            loop-cache allocations).
        loop_regions: preloaded loop-cache regions (empty for scratchpad
            allocations).
        placement: how the main-memory image treats the residents
            (copy for CASA, compact for Steinke).
        predicted_energy: the allocator's own estimate of the resulting
            energy in nJ (``None`` when the algorithm does not predict
            one, e.g. Ross's greedy heuristic).
        solver_nodes: branch & bound nodes used (0 for non-ILP methods).
        solver_status: solver outcome (``optimal``, ``node_limit``, ...;
            empty for non-ILP methods).
        solver_gap: relative optimality gap the solver proved (``None``
            for non-ILP methods).
        capacity: the scratchpad/loop-cache capacity allocated against.
        used_bytes: bytes of the capacity actually consumed.
    """

    algorithm: str
    spm_resident: frozenset[str] = frozenset()
    loop_regions: tuple[LoopRegion, ...] = ()
    placement: Placement = Placement.COPY
    predicted_energy: float | None = None
    solver_nodes: int = 0
    solver_status: str = ""
    solver_gap: float | None = None
    capacity: int = 0
    used_bytes: int = 0

    @property
    def utilisation(self) -> float:
        """Fraction of the capacity used (0 for a zero-size memory)."""
        if self.capacity == 0:
            return 0.0
        return self.used_bytes / self.capacity

    def describe(self) -> str:
        """One-line summary for reports."""
        if self.loop_regions:
            what = f"{len(self.loop_regions)} regions"
        else:
            what = f"{len(self.spm_resident)} objects"
        return (
            f"{self.algorithm}: {what}, "
            f"{self.used_bytes}/{self.capacity} bytes"
        )
