"""The conflict graph G = (X, E) of section 3.3.

Vertices are memory objects; the weight ``f_i`` of vertex ``x_i`` is its
total instruction fetches.  A directed edge ``e_ij`` with weight ``m_ij``
records that ``m_ij`` cache misses of ``x_i`` happened because ``x_j``
replaced its lines.  Two refinements the implementation keeps explicit
(see DESIGN.md):

* *self-conflicts* ``m_ii`` (an object larger than the cache evicting
  its own lines) are stored per node, not as an edge;
* *compulsory* (first-touch) misses carry no edge and are stored per
  node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import networkx as nx

from repro.energy.model import EnergyModel
from repro.errors import ConfigurationError
from repro.memory.stats import SimulationReport
from repro.obs import metrics
from repro.obs.trace import span
from repro.traces.memory_object import MemoryObject


@dataclass
class ConflictNode:
    """One vertex of the conflict graph.

    Attributes:
        name: memory-object name.
        fetches: the vertex weight ``f_i`` — total instruction fetches,
            which is hierarchy-independent (eq. 4 discussion).
        size: the object's unpadded size in bytes (what it costs on the
            scratchpad, eq. 17).
        compulsory_misses: first-touch misses observed while profiling.
        self_misses: ``m_ii`` — misses caused by the object itself.
    """

    name: str
    fetches: int
    size: int
    compulsory_misses: int = 0
    self_misses: int = 0


class ConflictGraph:
    """Directed, weighted conflict graph over memory objects."""

    def __init__(self) -> None:
        self._nodes: dict[str, ConflictNode] = {}
        self._edges: dict[tuple[str, str], int] = {}
        self._out: dict[str, list[str]] = {}
        self._in: dict[str, list[str]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_simulation(
        cls,
        memory_objects: list[MemoryObject],
        report: SimulationReport,
    ) -> "ConflictGraph":
        """Build the graph from a profiling simulation.

        The report must come from a cache-only hierarchy (no scratchpad,
        no loop cache), so every fetch went through the cache and the
        eviction attribution is complete.
        """
        if report.spm_accesses or report.lc_accesses:
            raise ConfigurationError(
                "conflict graphs must be profiled on a cache-only "
                "hierarchy (found scratchpad/loop-cache accesses)"
            )
        with span("graph.build") as build_span:
            graph = cls()
            for mo in memory_objects:
                stats = report.mo_stats.get(mo.name)
                graph.add_node(
                    ConflictNode(
                        name=mo.name,
                        fetches=stats.fetches if stats else 0,
                        size=mo.unpadded_size,
                        compulsory_misses=(
                            stats.compulsory_misses if stats else 0
                        ),
                    )
                )
            conflicts = report.conflict_misses.items()
            for (victim, evictor), count in conflicts:
                if victim == evictor:
                    graph._nodes[victim].self_misses += count
                else:
                    graph.add_edge(victim, evictor, count)
            build_span.add(nodes=graph.num_nodes,
                           edges=graph.num_edges)
            metrics.inc("graph.builds")
            metrics.inc("graph.nodes", graph.num_nodes)
            metrics.inc("graph.edges", graph.num_edges)
        return graph

    def add_node(self, node: ConflictNode) -> None:
        """Add a vertex (objects must be unique by name)."""
        if node.name in self._nodes:
            raise ConfigurationError(f"duplicate node {node.name!r}")
        self._nodes[node.name] = node
        self._out[node.name] = []
        self._in[node.name] = []

    def add_edge(self, victim: str, evictor: str, misses: int) -> None:
        """Add edge ``e_ij``: *misses* misses of *victim* due to *evictor*."""
        if victim not in self._nodes or evictor not in self._nodes:
            raise ConfigurationError(
                f"edge ({victim!r}, {evictor!r}) references unknown nodes"
            )
        if victim == evictor:
            raise ConfigurationError(
                "self-conflicts are stored on the node, not as edges"
            )
        if misses <= 0:
            raise ConfigurationError(f"edge weight must be positive: {misses}")
        key = (victim, evictor)
        if key in self._edges:
            self._edges[key] += misses
        else:
            self._edges[key] = misses
            self._out[victim].append(evictor)
            self._in[evictor].append(victim)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def node_names(self) -> list[str]:
        """Vertex names in insertion (layout) order."""
        return list(self._nodes)

    @property
    def num_nodes(self) -> int:
        """Number of vertices."""
        return len(self._nodes)

    @property
    def num_edges(self) -> int:
        """Number of directed conflict edges."""
        return len(self._edges)

    def node(self, name: str) -> ConflictNode:
        """Vertex by name."""
        return self._nodes[name]

    def nodes(self) -> list[ConflictNode]:
        """All vertices in insertion order."""
        return list(self._nodes.values())

    def edge_weight(self, victim: str, evictor: str) -> int:
        """``m_ij`` (0 if no edge)."""
        return self._edges.get((victim, evictor), 0)

    def edges(self) -> list[tuple[str, str, int]]:
        """All edges as ``(victim, evictor, m_ij)``."""
        return [(v, e, m) for (v, e), m in self._edges.items()]

    def conflicts_of(self, victim: str) -> list[tuple[str, int]]:
        """The neighbourhood ``N_i``: evictors of *victim* with weights."""
        return [
            (evictor, self._edges[(victim, evictor)])
            for evictor in self._out[victim]
        ]

    def victims_of(self, evictor: str) -> list[tuple[str, int]]:
        """Objects whose misses *evictor* causes, with weights."""
        return [
            (victim, self._edges[(victim, evictor)])
            for victim in self._in[evictor]
        ]

    @property
    def total_conflict_misses(self) -> int:
        """Sum of all edge weights plus self-conflicts."""
        return (
            sum(self._edges.values())
            + sum(node.self_misses for node in self._nodes.values())
        )

    def subgraph(self, names: "Iterable[str]") -> "ConflictGraph":
        """Restriction of the graph to *names* (edges inside the set).

        Useful to focus the ILP on the hottest objects of very large
        programs.

        Node and edge insertion order of the result follow *this*
        graph's insertion (layout) order — never the iteration order
        of *names*, which may be an unordered set.  Two graphs built
        from bit-identical simulations therefore produce bit-identical
        subgraphs (same ``node_names``, same ``edges()`` order)
        whatever container the caller restricts by.
        """
        chosen = frozenset(names)
        unknown = chosen - set(self._nodes)
        if unknown:
            raise ConfigurationError(f"unknown objects: {sorted(unknown)}")
        result = ConflictGraph()
        for node in self._nodes.values():
            if node.name in chosen:
                result.add_node(ConflictNode(
                    name=node.name,
                    fetches=node.fetches,
                    size=node.size,
                    compulsory_misses=node.compulsory_misses,
                    self_misses=node.self_misses,
                ))
        for (victim, evictor), weight in self._edges.items():
            if victim in chosen and evictor in chosen:
                result.add_edge(victim, evictor, weight)
        return result

    def hottest(self, count: int) -> "ConflictGraph":
        """Subgraph of the *count* objects with the most fetches.

        Ties are broken by insertion order (the sort is stable), and
        the resulting subgraph keeps this graph's insertion order, so
        the selection is fully deterministic.
        """
        ranked = sorted(self._nodes.values(), key=lambda n: -n.fetches)
        return self.subgraph(node.name for node in ranked[:count])

    # ------------------------------------------------------------------
    # Energy prediction (the model behind eqs. 11/12)
    # ------------------------------------------------------------------

    def predicted_energy(
        self,
        spm_resident: set[str] | frozenset[str],
        model: EnergyModel,
        include_compulsory: bool = True,
    ) -> float:
        """Evaluate the paper's energy model for an allocation.

        Implements eq. 11 summed over all objects (eq. 16):
        scratchpad-resident objects cost ``f_i * E_sp`` (eq. 6); cached
        objects cost ``f_i * E_hit`` plus ``(E_miss - E_hit)`` for every
        conflict miss whose victim *and* evictor remain cached.

        Args:
            spm_resident: objects placed on the scratchpad.
            model: per-event energies.
            include_compulsory: charge first-touch misses of cached
                objects (the reproduction's refinement).

        Returns:
            Predicted total energy in nJ.
        """
        unknown = set(spm_resident) - set(self._nodes)
        if unknown:
            raise ConfigurationError(f"unknown objects: {sorted(unknown)}")
        miss_premium = model.cache_miss - model.cache_hit
        total = 0.0
        for node in self._nodes.values():
            if node.name in spm_resident:
                total += node.fetches * model.spm_access
                continue
            total += node.fetches * model.cache_hit
            extra_misses = node.self_misses
            if include_compulsory:
                extra_misses += node.compulsory_misses
            for evictor, weight in self.conflicts_of(node.name):
                if evictor not in spm_resident:
                    extra_misses += weight
            total += extra_misses * miss_premium
        return total

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def to_networkx(self) -> nx.DiGraph:
        """Export to a networkx digraph (node/edge attributes set)."""
        graph = nx.DiGraph()
        for node in self._nodes.values():
            graph.add_node(
                node.name,
                fetches=node.fetches,
                size=node.size,
                compulsory=node.compulsory_misses,
                self_misses=node.self_misses,
            )
        for (victim, evictor), weight in self._edges.items():
            graph.add_edge(victim, evictor, misses=weight)
        return graph

    def to_dot(self) -> str:
        """Export to Graphviz DOT (figure 2 style)."""
        lines = ["digraph conflict_graph {"]
        for node in self._nodes.values():
            lines.append(
                f'  "{node.name}" [label="{node.name}\\nf={node.fetches}"];'
            )
        for (victim, evictor), weight in self._edges.items():
            lines.append(
                f'  "{victim}" -> "{evictor}" [label="{weight}"];'
            )
        lines.append("}")
        return "\n".join(lines)
