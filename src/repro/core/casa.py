"""CASA — the Cache-Aware Scratchpad Allocation ILP (section 4).

Decision variables (eq. 7): ``l(x_i) = 0`` if object ``x_i`` goes to the
scratchpad, 1 if it stays cacheable.  The quadratic miss term
``l(x_i) * l(x_j) * m_ij`` of eq. 11 is linearised with the product
variable ``L(x_i, x_j)`` and constraints 13-15.  The objective (eq. 16)
sums eq. 12 over all objects; eq. 17 bounds the scratchpad content by
the capacity, counting *unpadded* sizes (the NOPs are stripped before
the copy to the scratchpad).

Two implementation refinements (flagged, documented in DESIGN.md):

* self-conflict misses ``m_ii`` multiply ``l(x_i) * l(x_i) = l(x_i)``
  and are charged linearly;
* compulsory misses of a cached object are charged via
  ``include_compulsory`` (on by default).

Setting ``conflict_term=False`` drops the edge terms entirely, yielding a
cache-blind objective — the ablation that isolates the paper's
contribution.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.core.allocation import Allocation, AllocationContext
from repro.core.conflict_graph import ConflictGraph
from repro.energy.model import EnergyModel
from repro.core.greedy_allocator import GreedyCasaAllocator
from repro.errors import DegradedResultError, SolverError
from repro.obs import metrics
from repro.ilp import (
    BranchAndBoundSolver,
    LinExpr,
    Model,
    Sense,
    SolveStatus,
)
from repro.traces.layout import Placement


@dataclass(frozen=True)
class CasaConfig:
    """Options of the CASA allocator.

    Attributes:
        include_compulsory: charge first-touch misses of cached objects.
        conflict_term: include the conflict-edge terms (the paper's
            contribution); disable only for ablation studies.
        max_nodes: branch & bound node limit.
        max_seconds: branch & bound wall-clock budget (``None`` =
            unlimited).
        fallback: what to do when the solve budget is exhausted
            (``NODE_LIMIT`` / ``TIME_LIMIT``): ``"greedy"`` degrades
            to :class:`~repro.core.greedy_allocator.GreedyCasaAllocator`
            and tags the allocation ``solver_status="degraded"``;
            ``"raise"`` raises
            :class:`~repro.errors.DegradedResultError` instead.
    """

    include_compulsory: bool = True
    conflict_term: bool = True
    max_nodes: int = 200_000
    max_seconds: float | None = None
    fallback: str = "greedy"


class CasaAllocator:
    """Optimal cache-aware scratchpad allocation via 0/1 ILP."""

    name = "casa"

    def __init__(self, config: CasaConfig | None = None) -> None:
        self._config = config or CasaConfig()

    @property
    def config(self) -> CasaConfig:
        """The allocator's options."""
        return self._config

    def build_model(
        self,
        graph: ConflictGraph,
        spm_size: int,
        energy: EnergyModel,
    ) -> tuple[Model, dict[str, object]]:
        """Construct the ILP of section 4 (for inspection or solving).

        Returns:
            ``(model, l_vars)`` where ``l_vars`` maps object names to
            their location variables.
        """
        config = self._config
        model = Model("casa", Sense.MINIMIZE)
        # Objects with no fetches, no misses and no conflict edges gain
        # nothing from the scratchpad but would consume capacity, so
        # the optimum always keeps them cacheable: they get no
        # variables (equivalent to fixing l = 1).
        candidates = {
            name for name in graph.node_names
            if self._has_benefit(graph.node(name), graph)
        }
        location = {
            name: model.add_binary(f"l[{name}]")
            for name in graph.node_names if name in candidates
        }

        miss_premium = energy.cache_miss - energy.cache_hit
        hit_premium = energy.cache_hit - energy.spm_access
        objective = LinExpr()
        for node in graph.nodes():
            # eq. 12, constant and linear parts.
            objective = objective + node.fetches * energy.spm_access
            if node.name not in candidates:
                objective = objective + node.fetches * hit_premium
                continue
            linear = node.fetches * hit_premium
            extra_misses = node.self_misses if config.conflict_term else 0
            if config.include_compulsory:
                extra_misses += node.compulsory_misses
            linear += extra_misses * miss_premium
            objective = objective + linear * location[node.name]

        if config.conflict_term:
            for victim, evictor, weight in graph.edges():
                product = model.add_variable(
                    f"L[{victim},{evictor}]", 0.0, 1.0
                )
                l_i = location[victim]
                l_j = location[evictor]
                # eqs. 13-15: L = l_i * l_j for binary l.
                model.add_constraint(l_i - product >= 0,
                                     f"lin13[{victim},{evictor}]")
                model.add_constraint(l_j - product >= 0,
                                     f"lin14[{victim},{evictor}]")
                model.add_constraint(
                    l_i + l_j - 2 * product <= 1,
                    f"lin15[{victim},{evictor}]",
                )
                # McCormick cut: with eq. 15's form alone a continuous
                # L could sit at (l_i + l_j - 1)/2; this tightens the
                # relaxation so L is exact whenever l_i, l_j are binary
                # (CPLEX's presolve derives the same; see DESIGN.md).
                model.add_constraint(
                    l_i + l_j - product <= 1,
                    f"mccormick[{victim},{evictor}]",
                )
                objective = objective + (weight * miss_premium) * product

        # eq. 17: scratchpad capacity over unpadded sizes (objects
        # without variables stay cacheable and contribute nothing).
        capacity_expr = LinExpr.total(
            (1 - location[name]) * graph.node(name).size
            for name in location
        )
        model.add_constraint(capacity_expr <= spm_size, "capacity")
        model.set_objective(objective)
        return model, location

    @staticmethod
    def _has_benefit(node, graph: ConflictGraph) -> bool:
        """Whether the scratchpad could ever help this object."""
        return bool(
            node.fetches
            or node.self_misses
            or node.compulsory_misses
            or graph.conflicts_of(node.name)
            or graph.victims_of(node.name)
        )

    def warm_start_values(
        self,
        graph: ConflictGraph,
        spm_resident: frozenset[str],
    ) -> dict[str, float]:
        """Variable values (by name) encoding a known resident set.

        Used to seed the branch & bound of a neighbouring sweep step:
        ``l[name] = 0`` for resident objects, 1 otherwise, with every
        linearisation product ``L[i,j]`` set consistently so the point
        evaluates exactly.
        """
        values = {
            f"l[{name}]": 0.0 if name in spm_resident else 1.0
            for name in graph.node_names
        }
        if self._config.conflict_term:
            for victim, evictor, _ in graph.edges():
                values[f"L[{victim},{evictor}]"] = (
                    values[f"l[{victim}]"] * values[f"l[{evictor}]"]
                )
        return values

    def allocate(
        self,
        graph: ConflictGraph,
        spm_size: int,
        energy: EnergyModel,
        *,
        context: AllocationContext | None = None,
        warm_start: frozenset[str] | None = None,
    ) -> Allocation:
        """Pick the optimal scratchpad-resident set.

        *context* is accepted for :class:`repro.core.Allocator`
        protocol conformance and ignored — the ILP decides from the
        graph and the energy model alone.

        *warm_start* names a resident set known to be good (usually
        the previous capacity step's allocation); it seeds the branch
        & bound incumbent and cannot change the returned optimum.

        When the solve budget (``max_nodes`` / ``max_seconds``) runs
        out, the configured degradation ladder applies: with
        ``fallback="greedy"`` the greedy heuristic takes over and the
        returned allocation carries ``solver_status="degraded"`` (plus
        the nodes the exact solver burned), so reports can surface the
        loss of optimality.

        Raises:
            DegradedResultError: budget exhausted and
                ``fallback="raise"``.
            SolverError: the ILP is infeasible/unbounded or the solve
                errored (never budget exhaustion).
        """
        del context
        model, location = self.build_model(graph, spm_size, energy)
        if not location:
            return Allocation(
                algorithm=self.name,
                spm_resident=frozenset(),
                placement=Placement.COPY,
                predicted_energy=model.objective.constant,
                capacity=spm_size,
                used_bytes=0,
            )
        solver = BranchAndBoundSolver(
            max_nodes=self._config.max_nodes,
            max_seconds=self._config.max_seconds,
            warm_start=(
                self.warm_start_values(graph, warm_start)
                if warm_start is not None else None
            ),
        )
        result = model.solve(solver)
        if result.status in (SolveStatus.NODE_LIMIT,
                             SolveStatus.TIME_LIMIT):
            return self._degrade(graph, spm_size, energy, result)
        if result.status is not SolveStatus.OPTIMAL:
            raise SolverError(
                f"CASA ILP not solved to optimality: {result.status.value}"
            )
        selected = frozenset(
            name for name, var in location.items()
            if result.binary_value(var) == 0
        )
        used = sum(graph.node(name).size for name in selected)
        return Allocation(
            algorithm=self.name,
            spm_resident=selected,
            placement=Placement.COPY,
            predicted_energy=result.objective,
            solver_nodes=result.nodes_explored,
            solver_status=result.status.value,
            solver_gap=result.gap,
            capacity=spm_size,
            used_bytes=used,
        )

    def _degrade(self, graph: ConflictGraph, spm_size: int,
                 energy: EnergyModel, result) -> Allocation:
        """Apply the budget-exhaustion ladder (greedy or raise).

        The greedy fallback is deterministic and budget-free, so a
        degraded sweep still completes with a valid (merely
        sub-optimal) allocation; ``solver_status="degraded"`` and the
        exact solver's node count are carried into the result.
        """
        if self._config.fallback != "greedy":
            raise DegradedResultError(
                f"CASA solve budget exhausted "
                f"({result.status.value} after "
                f"{result.nodes_explored} nodes) and greedy fallback "
                f"is disabled",
                site="ilp.solve",
            )
        metrics.inc("solver.degraded")
        greedy = GreedyCasaAllocator(
            include_compulsory=self._config.include_compulsory
        )
        allocation = greedy.allocate(graph, spm_size, energy)
        return dataclasses.replace(
            allocation,
            algorithm=self.name,
            solver_status="degraded",
            solver_nodes=result.nodes_explored,
        )
