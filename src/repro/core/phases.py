"""Execution-phase detection for the overlay extension.

The paper's conclusion names "dynamic copying (overlay) of memory
objects on the scratchpad" as future work (pursued by the same group in
the DAC 2004 follow-up).  Overlay needs a notion of *phases*: program
regions whose working sets differ enough that swapping the scratchpad
contents between them pays for the copy traffic.

We use the natural structure of embedded codecs: the **top-level loops
of the entry function**.  Every top-level loop is one phase; the
straight-line stretches between loops join the adjacent phase.  Code in
callees belongs dynamically to the phase of the most recent top-level
block — which is how the simulator tracks it, so a function called from
two phases is accounted in both.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.program.cfg import ControlFlowGraph
from repro.program.program import Program


@dataclass(frozen=True)
class Phase:
    """One execution phase.

    Attributes:
        index: phase id (0-based, in program order).
        name: readable label (the loop header, or ``straight``).
        blocks: the entry-function blocks statically inside the phase.
    """

    index: int
    name: str
    blocks: frozenset[str]


@dataclass(frozen=True)
class PhasePartition:
    """The phases of a program plus the block -> phase map.

    Attributes:
        phases: the phases in program order.
        block_phase: entry-function block name -> phase index; the
            simulator switches its current phase whenever it executes a
            block in this map.
    """

    phases: tuple[Phase, ...]
    block_phase: dict[str, int]

    @property
    def num_phases(self) -> int:
        """Number of phases."""
        return len(self.phases)


def detect_phases(program: Program) -> PhasePartition:
    """Partition the entry function into top-level-loop phases.

    Walking the entry function's blocks in layout order, a new phase
    starts whenever control enters a top-level natural loop (one not
    nested inside another) or returns to straight-line code after one.
    A program whose entry is a single loop therefore has one phase.
    """
    entry_function = program.function(program.entry)
    cfg = ControlFlowGraph(entry_function)
    loops = cfg.natural_loops()
    top_level = [
        loop for loop in loops
        if not any(loop.is_nested_in(other) for other in loops)
    ]
    loop_of_block: dict[str, int] = {}
    for index, loop in enumerate(top_level):
        for name in loop.body:
            if name in loop_of_block:
                raise ConfigurationError(
                    f"block {name!r} belongs to two top-level loops"
                )
            loop_of_block[name] = index

    phases: list[Phase] = []
    block_phase: dict[str, int] = {}
    current_blocks: list[str] = []
    current_loop: int | None = None
    current_name = "straight"

    def close_phase() -> None:
        if not current_blocks:
            return
        phases.append(Phase(
            index=len(phases),
            name=current_name,
            blocks=frozenset(current_blocks),
        ))

    for block in entry_function.blocks:
        loop_index = loop_of_block.get(block.name)
        if loop_index != current_loop and current_blocks:
            close_phase()
            current_blocks = []
        current_loop = loop_index
        current_name = (
            f"loop:{top_level[loop_index].header}"
            if loop_index is not None else "straight"
        )
        current_blocks.append(block.name)
        block_phase[block.name] = len(phases)
    close_phase()

    if not phases:
        raise ConfigurationError(
            f"entry function {program.entry!r} has no blocks"
        )
    return PhasePartition(phases=tuple(phases), block_phase=block_phase)
