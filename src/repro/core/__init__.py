"""The paper's contribution: cache-aware scratchpad allocation.

* :mod:`repro.core.conflict_graph` — the conflict graph G = (X, E) of
  section 3.3, built from an attributed cache simulation;
* :mod:`repro.core.casa` — the CASA ILP (eqs. 7-17) solved exactly;
* :mod:`repro.core.steinke` — the Steinke et al. (DATE 2002) cache-blind
  knapsack baseline;
* :mod:`repro.core.ross` — the Ross/Gordon-Ross & Vahid preloaded
  loop-cache allocator;
* :mod:`repro.core.greedy_allocator` — a greedy CASA variant (ablation);
* :mod:`repro.core.multi_spm` — the multi-scratchpad extension the
  paper sketches in section 4;
* :mod:`repro.core.pipeline` — the end-to-end experimental workflow of
  figure 3.
"""

from repro.core.allocation import Allocation
from repro.core.annealing import AnnealingAllocator, AnnealingConfig
from repro.core.casa import CasaAllocator, CasaConfig
from repro.core.conflict_graph import ConflictGraph, ConflictNode
from repro.core.greedy_allocator import GreedyCasaAllocator
from repro.core.multi_spm import MultiScratchpadAllocator, ScratchpadSpec
from repro.core.overlay import (
    OverlayAllocation,
    OverlayAllocator,
    OverlayConfig,
    PhasedConflictData,
)
from repro.core.phases import Phase, PhasePartition, detect_phases
from repro.core.placement import ConflictAwarePlacer, PlacementResult
from repro.core.pipeline import (
    ExperimentResult,
    Workbench,
    WorkbenchConfig,
)
from repro.core.ross import RossLoopCacheAllocator
from repro.core.steinke import SteinkeAllocator
from repro.core.unified import (
    UnifiedAllocation,
    UnifiedCasaAllocator,
    unified_steinke,
)

__all__ = [
    "Allocation",
    "AnnealingAllocator",
    "AnnealingConfig",
    "OverlayAllocation",
    "OverlayAllocator",
    "OverlayConfig",
    "PhasedConflictData",
    "Phase",
    "PhasePartition",
    "detect_phases",
    "ConflictAwarePlacer",
    "PlacementResult",
    "CasaAllocator",
    "CasaConfig",
    "ConflictGraph",
    "ConflictNode",
    "GreedyCasaAllocator",
    "MultiScratchpadAllocator",
    "ScratchpadSpec",
    "ExperimentResult",
    "Workbench",
    "WorkbenchConfig",
    "RossLoopCacheAllocator",
    "SteinkeAllocator",
    "UnifiedAllocation",
    "UnifiedCasaAllocator",
    "unified_steinke",
]
