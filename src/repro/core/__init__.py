"""The paper's contribution: cache-aware scratchpad allocation.

* :mod:`repro.core.conflict_graph` — the conflict graph G = (X, E) of
  section 3.3, built from an attributed cache simulation;
* :mod:`repro.core.casa` — the CASA ILP (eqs. 7-17) solved exactly;
* :mod:`repro.core.steinke` — the Steinke et al. (DATE 2002) cache-blind
  knapsack baseline;
* :mod:`repro.core.ross` — the Ross/Gordon-Ross & Vahid preloaded
  loop-cache allocator;
* :mod:`repro.core.greedy_allocator` — a greedy CASA variant (ablation);
* :mod:`repro.core.multi_spm` — the multi-scratchpad extension the
  paper sketches in section 4;
* :mod:`repro.core.pipeline` — the end-to-end experimental workflow of
  figure 3.

Every allocator conforms to the :class:`Allocator` protocol —
``allocate(graph, capacity, energy, *, context)`` — and can be built
by name through :func:`make_allocator`, which is what the
:class:`repro.api.Session` facade and the CLI use.
"""

from typing import Any, Protocol, runtime_checkable

from repro.core.allocation import Allocation, AllocationContext
from repro.core.annealing import AnnealingAllocator, AnnealingConfig
from repro.core.casa import CasaAllocator, CasaConfig
from repro.core.conflict_graph import ConflictGraph, ConflictNode
from repro.core.greedy_allocator import GreedyCasaAllocator
from repro.core.multi_spm import MultiScratchpadAllocator, ScratchpadSpec
from repro.core.overlay import (
    OverlayAllocation,
    OverlayAllocator,
    OverlayConfig,
    PhasedConflictData,
)
from repro.core.phases import Phase, PhasePartition, detect_phases
from repro.core.placement import ConflictAwarePlacer, PlacementResult
from repro.core.pipeline import (
    ExperimentResult,
    Workbench,
    WorkbenchConfig,
)
from repro.core.ross import RossLoopCacheAllocator
from repro.core.steinke import SteinkeAllocator
from repro.core.unified import (
    UnifiedAllocation,
    UnifiedCasaAllocator,
    unified_steinke,
)
from repro.energy.model import EnergyModel
from repro.errors import ConfigurationError
from repro.memory.loopcache import LoopCacheConfig


@runtime_checkable
class Allocator(Protocol):
    """The unified allocator interface.

    Every allocation method — CASA's ILP, Steinke's knapsack, the
    greedy and annealing ablations, Ross's loop-cache heuristic, the
    multi-scratchpad extension — exposes one entry point:

    ``allocate(graph, capacity, energy, *, context)``

    where *graph* is the profiled conflict graph, *capacity* the
    scratchpad / loop-cache budget in bytes, *energy* the per-event
    energy model, and *context* an optional
    :class:`~repro.core.allocation.AllocationContext` carrying the
    profiled program, memory objects and baseline image for methods
    that inspect program structure (Ross).  Allocators ignore the
    inputs they do not need.
    """

    name: str

    def allocate(
        self,
        graph: ConflictGraph,
        capacity: int | None = None,
        energy: EnergyModel | None = None,
        *,
        context: AllocationContext | None = None,
    ) -> Any:
        """Decide an allocation for *graph* within *capacity* bytes."""
        ...


#: Allocator factories keyed by canonical (lower-case, dash) name.
_ALLOCATOR_FACTORIES = {
    "casa": lambda cfg: CasaAllocator(CasaConfig(**cfg))
    if cfg else CasaAllocator(),
    "steinke": lambda cfg: SteinkeAllocator(**cfg),
    "greedy": lambda cfg: GreedyCasaAllocator(**cfg),
    "greedy-casa": lambda cfg: GreedyCasaAllocator(**cfg),
    "anneal": lambda cfg: AnnealingAllocator(AnnealingConfig(**cfg))
    if cfg else AnnealingAllocator(),
    "annealing": lambda cfg: AnnealingAllocator(AnnealingConfig(**cfg))
    if cfg else AnnealingAllocator(),
    "ross": lambda cfg: RossLoopCacheAllocator(LoopCacheConfig(**cfg)),
    "multi-spm": lambda cfg: MultiScratchpadAllocator(**cfg),
    "casa-multi-spm": lambda cfg: MultiScratchpadAllocator(**cfg),
}

#: Canonical names :func:`make_allocator` accepts.
ALLOCATOR_NAMES = tuple(sorted(_ALLOCATOR_FACTORIES))


def make_allocator(name: str, **cfg: Any) -> Allocator:
    """Build an allocator by name.

    Args:
        name: one of :data:`ALLOCATOR_NAMES` (case-insensitive;
            underscores and dashes are interchangeable).
        **cfg: options forwarded to the allocator's configuration —
            e.g. ``make_allocator("casa", conflict_term=False)``,
            ``make_allocator("ross", size=256, max_regions=4)`` or
            ``make_allocator("anneal", iterations=2000)``.

    Raises:
        ConfigurationError: for an unknown name or options the named
            allocator does not accept.
    """
    key = name.strip().lower().replace("_", "-")
    factory = _ALLOCATOR_FACTORIES.get(key)
    if factory is None:
        raise ConfigurationError(
            f"unknown allocator {name!r}; choose from "
            f"{', '.join(ALLOCATOR_NAMES)}"
        )
    try:
        return factory(dict(cfg))
    except TypeError as exc:
        raise ConfigurationError(
            f"bad options for allocator {name!r}: {exc}"
        ) from None


__all__ = [
    "ALLOCATOR_NAMES",
    "Allocation",
    "AllocationContext",
    "Allocator",
    "make_allocator",
    "AnnealingAllocator",
    "AnnealingConfig",
    "OverlayAllocation",
    "OverlayAllocator",
    "OverlayConfig",
    "PhasedConflictData",
    "Phase",
    "PhasePartition",
    "detect_phases",
    "ConflictAwarePlacer",
    "PlacementResult",
    "CasaAllocator",
    "CasaConfig",
    "ConflictGraph",
    "ConflictNode",
    "GreedyCasaAllocator",
    "MultiScratchpadAllocator",
    "ScratchpadSpec",
    "ExperimentResult",
    "Workbench",
    "WorkbenchConfig",
    "RossLoopCacheAllocator",
    "SteinkeAllocator",
    "UnifiedAllocation",
    "UnifiedCasaAllocator",
    "unified_steinke",
]
