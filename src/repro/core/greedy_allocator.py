"""Greedy cache-aware allocation (ablation for the exact ILP).

At each step the allocator evaluates, for every remaining object that
still fits, the *marginal* energy reduction (per eq. 11's model) of
moving it to the scratchpad given the objects already selected, divides
by the object's size, and takes the best.  This captures the conflict
awareness of CASA without the ILP's optimality guarantee — the ablation
quantifies what exactness buys.
"""

from __future__ import annotations

from repro.core.allocation import Allocation, AllocationContext
from repro.core.conflict_graph import ConflictGraph
from repro.energy.model import EnergyModel
from repro.traces.layout import Placement


class GreedyCasaAllocator:
    """Greedy marginal-gain-per-byte scratchpad allocation."""

    name = "greedy-casa"

    def __init__(self, include_compulsory: bool = True) -> None:
        self._include_compulsory = include_compulsory

    def allocate(
        self,
        graph: ConflictGraph,
        spm_size: int,
        energy: EnergyModel,
        *,
        context: AllocationContext | None = None,
    ) -> Allocation:
        """Iteratively pick the best gain-per-byte object that fits.

        *context* is accepted for protocol conformance and ignored.
        """
        del context
        selected: set[str] = set()
        remaining = spm_size
        current = graph.predicted_energy(
            selected, energy, self._include_compulsory
        )
        while True:
            best_name: str | None = None
            best_density = 0.0
            best_energy = current
            for node in graph.nodes():
                if node.name in selected or node.size > remaining:
                    continue
                if node.size == 0:
                    continue
                candidate = graph.predicted_energy(
                    selected | {node.name}, energy,
                    self._include_compulsory,
                )
                gain = current - candidate
                density = gain / node.size
                if density > best_density + 1e-12:
                    best_density = density
                    best_name = node.name
                    best_energy = candidate
            if best_name is None:
                break
            selected.add(best_name)
            remaining -= graph.node(best_name).size
            current = best_energy

        return Allocation(
            algorithm=self.name,
            spm_resident=frozenset(selected),
            placement=Placement.COPY,
            predicted_energy=current,
            capacity=spm_size,
            used_bytes=spm_size - remaining,
        )
