"""Unified code + data scratchpad allocation.

Steinke et al. [13] allocated *both* "program and data parts" to one
scratchpad; CASA's formulation extends the same way (section 4: repeat
the capacity constraint, keep per-object energy terms).  This module
shares a single scratchpad between instruction traces (with their
I-cache conflict graph) and data objects (with their D-cache conflict
graph): one ILP, two independent conflict structures, one capacity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.conflict_graph import ConflictGraph
from repro.energy.model import EnergyModel
from repro.errors import SolverError
from repro.ilp import (
    BranchAndBoundSolver,
    LinExpr,
    Model,
    Sense,
    SolveStatus,
)
from repro.ilp.knapsack import KnapsackItem, knapsack_01


@dataclass
class UnifiedAllocation:
    """Scratchpad contents split between code and data.

    Attributes:
        code_resident: instruction traces on the scratchpad.
        data_resident: data objects on the scratchpad.
        predicted_energy: ILP objective (nJ) over both hierarchies.
        solver_nodes: branch & bound nodes explored.
        used_bytes: scratchpad bytes consumed.
    """

    code_resident: frozenset[str]
    data_resident: frozenset[str]
    predicted_energy: float
    solver_nodes: int
    used_bytes: int


class UnifiedCasaAllocator:
    """One CASA ILP over instruction traces and data objects."""

    name = "casa-unified"

    def __init__(self, include_compulsory: bool = True,
                 max_nodes: int = 200_000) -> None:
        self._include_compulsory = include_compulsory
        self._max_nodes = max_nodes

    def allocate(
        self,
        code_graph: ConflictGraph,
        code_energy: EnergyModel,
        data_graph: ConflictGraph,
        data_energy: EnergyModel,
        spm_size: int,
    ) -> UnifiedAllocation:
        """Solve the shared-capacity ILP.

        The two energy models normally share ``spm_access`` (it is the
        same SRAM) but differ in cache hit/miss energies (I-cache vs.
        D-cache geometry).

        Raises:
            SolverError: if object names collide across the two graphs
                or the ILP cannot be solved to optimality.
        """
        collisions = set(code_graph.node_names) & \
            set(data_graph.node_names)
        if collisions:
            raise SolverError(
                f"code/data name collision: {sorted(collisions)}"
            )
        model = Model("casa-unified", Sense.MINIMIZE)
        objective = LinExpr()
        capacity = LinExpr()
        locations: dict[str, object] = {}

        for prefix, graph, energy in (
            ("code", code_graph, code_energy),
            ("data", data_graph, data_energy),
        ):
            miss_premium = energy.cache_miss - energy.cache_hit
            hit_premium = energy.cache_hit - energy.spm_access
            candidates = {
                node.name for node in graph.nodes()
                if node.fetches or node.self_misses
                or node.compulsory_misses
                or graph.conflicts_of(node.name)
                or graph.victims_of(node.name)
            }
            location = {
                name: model.add_binary(f"l.{prefix}[{name}]")
                for name in graph.node_names if name in candidates
            }
            locations.update(location)
            for node in graph.nodes():
                objective = objective + node.fetches * energy.spm_access
                if node.name not in candidates:
                    objective = objective + \
                        node.fetches * hit_premium
                    continue
                linear = node.fetches * hit_premium
                extra = node.self_misses
                if self._include_compulsory:
                    extra += node.compulsory_misses
                linear += extra * miss_premium
                objective = objective + linear * location[node.name]
                capacity = capacity + \
                    (1 - location[node.name]) * node.size
            for victim, evictor, weight in graph.edges():
                product = model.add_variable(
                    f"L.{prefix}[{victim},{evictor}]", 0.0, 1.0
                )
                l_i = location[victim]
                l_j = location[evictor]
                model.add_constraint(l_i - product >= 0)
                model.add_constraint(l_j - product >= 0)
                model.add_constraint(l_i + l_j - 2 * product <= 1)
                model.add_constraint(l_i + l_j - product <= 1)
                objective = objective + \
                    (weight * miss_premium) * product

        model.add_constraint(capacity <= spm_size, "capacity")
        model.set_objective(objective)

        if not locations:
            return UnifiedAllocation(
                code_resident=frozenset(),
                data_resident=frozenset(),
                predicted_energy=model.objective.constant,
                solver_nodes=0,
                used_bytes=0,
            )
        result = model.solve(
            BranchAndBoundSolver(max_nodes=self._max_nodes)
        )
        if result.status is not SolveStatus.OPTIMAL:
            raise SolverError(
                f"unified ILP not optimal: {result.status.value}"
            )

        code_resident = frozenset(
            name for name in code_graph.node_names
            if name in locations
            and result.binary_value(locations[name]) == 0
        )
        data_resident = frozenset(
            name for name in data_graph.node_names
            if name in locations
            and result.binary_value(locations[name]) == 0
        )
        used = sum(
            code_graph.node(name).size for name in code_resident
        ) + sum(
            data_graph.node(name).size for name in data_resident
        )
        assert result.objective is not None
        return UnifiedAllocation(
            code_resident=code_resident,
            data_resident=data_resident,
            predicted_energy=result.objective,
            solver_nodes=result.nodes_explored,
            used_bytes=used,
        )


def unified_steinke(
    code_graph: ConflictGraph,
    code_energy: EnergyModel,
    data_graph: ConflictGraph,
    data_energy: EnergyModel,
    spm_size: int,
) -> UnifiedAllocation:
    """Steinke's original formulation: one knapsack over both kinds.

    Profit of every object is its fetch/access count times the saving
    of a scratchpad access over the respective cache's hit energy —
    conflict-blind, exactly as published.
    """
    items = [
        KnapsackItem(
            name=f"code:{node.name}",
            size=node.size,
            profit=node.fetches
            * (code_energy.cache_hit - code_energy.spm_access),
        )
        for node in code_graph.nodes()
    ] + [
        KnapsackItem(
            name=f"data:{node.name}",
            size=node.size,
            profit=node.fetches
            * (data_energy.cache_hit - data_energy.spm_access),
        )
        for node in data_graph.nodes()
    ]
    solution = knapsack_01(items, spm_size)
    code_resident = frozenset(
        name[len("code:"):] for name in solution.selected
        if name.startswith("code:")
    )
    data_resident = frozenset(
        name[len("data:"):] for name in solution.selected
        if name.startswith("data:")
    )
    return UnifiedAllocation(
        code_resident=code_resident,
        data_resident=data_resident,
        predicted_energy=float("nan"),
        solver_nodes=0,
        used_bytes=solution.total_size,
    )
