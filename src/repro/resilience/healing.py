"""Self-healing sweep execution: retries, timeouts, pool restarts.

:func:`map_points_healed` is the resilient sibling of
:func:`repro.engine.parallel.map_points`: same design points, same
deterministic input-order results, but each point is evaluated under a
:class:`RetryPolicy` — bounded retry-with-backoff, an optional
per-point timeout, and worker-crash detection with process-pool
restart — and the sweep returns a :class:`HealedRun` of per-point
:class:`PointOutcome` records instead of raising on the first failure.

The healing loop leans on one invariant of the fault framework:
injection rules skip retry attempts unless explicitly opted in
(``retries``), so a bounded number of retries always converges to the
fault-free result.  Because every stage of the engine is deterministic,
a retried or recomputed point is bit-identical to a never-faulted one —
which is exactly what the chaos gate (:mod:`repro.resilience.chaos`)
asserts.

Healing metrics: ``resilience.retries``, ``resilience.failed_points``,
``resilience.degraded_points``, ``resilience.pool_restarts``.
"""

from __future__ import annotations

import concurrent.futures
import concurrent.futures.process
import os
import pickle
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.engine.parallel import (
    POINT_ALGORITHMS,
    PointSpec,
    _active_fault_spec,
    _evaluate_in_worker,
    _evaluate_spec,
    _init_worker,
    _setup_worker_live,
    _teardown_worker_live,
)
from repro.engine.runner import RunRecord, StageRunner
from repro.engine.store import default_store
from repro.errors import ConfigurationError, InjectedFault, \
    PointTimeoutError
from repro.obs import metrics
from repro.obs.events import active_recorder
from repro.obs.live import note_total
from repro.obs.logging import active_log_spec, active_run_id, log_event
from repro.obs.metrics import active_registry
from repro.obs.trace import get_collector
from repro.resilience.faults import maybe_inject, set_fault_attempt

if TYPE_CHECKING:
    from repro.core.pipeline import ExperimentResult

#: The statuses a :class:`PointOutcome` may carry.
OUTCOME_STATUSES = ("ok", "retried", "degraded", "failed")


@dataclass(frozen=True)
class RetryPolicy:
    """How hard :func:`map_points_healed` tries before giving up.

    Attributes:
        max_attempts: total tries per point (1 = no retries).
        backoff_s: sleep before the first retry, in seconds.
        backoff_factor: multiplier applied to the backoff per retry.
        timeout_s: per-point evaluation timeout (``None`` = none).
            On the pool path the bound covers waiting for the worker,
            so queueing behind other points counts toward it; size it
            for the whole batch or raise ``jobs``.
    """

    max_attempts: int = 3
    backoff_s: float = 0.05
    backoff_factor: float = 2.0
    timeout_s: float | None = None

    def backoff_for(self, attempt: int) -> float:
        """Backoff before retrying after failed attempt *attempt*."""
        return self.backoff_s * (self.backoff_factor ** attempt)


@dataclass
class PointOutcome:
    """What happened to one design point of a healed sweep.

    Attributes:
        index: position of the point in the input list.
        point: the design point itself.
        status: one of :data:`OUTCOME_STATUSES` — ``ok`` (first try),
            ``retried`` (succeeded after >= 1 retry), ``degraded``
            (succeeded but a degradation ladder fired, e.g. the CASA
            solver fell back to greedy) or ``failed`` (no result).
        attempts: evaluation attempts consumed (>= 1).
        error: structured record of the last failure —
            ``{"type", "message", "site"}`` — or ``None``.
        result: the experiment result (a result *list* when the work
            unit was a grid chunk), or ``None`` when failed.
        wall_s: total wall time spent on this point across all
            attempts, in seconds.
        attempt_seconds: per-attempt wall times in attempt order, so
            the report can show where retry time went (everything
            after the first entry is retry cost).
        run_id: correlation id of the structured run log active when
            the outcome was built, or ``None`` when logging was off.
    """

    index: int
    point: PointSpec
    status: str
    attempts: int
    error: dict[str, str] | None = None
    result: "ExperimentResult | None" = None
    wall_s: float = 0.0
    attempt_seconds: list[float] = field(default_factory=list)
    run_id: str | None = None

    @property
    def retry_s(self) -> float:
        """Wall seconds spent on attempts after the first."""
        return sum(self.attempt_seconds[1:])

    def describe(self) -> str:
        """One-line human-readable summary of this outcome."""
        label = _describe_point(self.point)
        text = f"{label}: {self.status} after {self.attempts} attempt(s)"
        if self.error is not None:
            text += f" — {self.error['type']}: {self.error['message']}"
        return text


@dataclass
class HealedRun:
    """The outcome of a self-healing sweep, one record per point.

    Attributes:
        outcomes: per-point outcomes, in input order.
    """

    outcomes: list[PointOutcome] = field(default_factory=list)

    @property
    def results(self) -> list["ExperimentResult | None"]:
        """Per-point results in input order (``None`` where failed)."""
        return [outcome.result for outcome in self.outcomes]

    @property
    def ok(self) -> bool:
        """Whether every point produced a result (possibly retried)."""
        return all(o.status != "failed" for o in self.outcomes)

    def counts(self) -> dict[str, int]:
        """Outcome-status histogram (statuses with zero count omitted)."""
        totals: dict[str, int] = {}
        for outcome in self.outcomes:
            totals[outcome.status] = totals.get(outcome.status, 0) + 1
        return totals

    def failure_report(self) -> str:
        """Multi-line report of every non-``ok`` outcome (may be empty)."""
        lines = [outcome.describe() for outcome in self.outcomes
                 if outcome.status != "ok"]
        return "\n".join(lines)

    @property
    def wall_s(self) -> float:
        """Total wall seconds across all points and attempts."""
        return sum(outcome.wall_s for outcome in self.outcomes)

    @property
    def retry_wall_s(self) -> float:
        """Wall seconds spent on retry attempts (after each first try)."""
        return sum(outcome.retry_s for outcome in self.outcomes)


def _describe_point(point) -> str:
    """Short identifier of a point (or grid chunk) for error records."""
    sizes = getattr(point, "spm_sizes", None)
    if sizes is not None:
        axis = "+".join(str(size) for size in sizes)
        return f"{point.workload}/{point.algorithm}@[{axis}]"
    return f"{point.workload}/{point.algorithm}@{point.spm_size}"


def _error_record(error: BaseException) -> dict[str, str]:
    """The structured ``PointOutcome.error`` form of an exception."""
    return {
        "type": type(error).__name__,
        "message": str(error),
        "site": str(getattr(error, "site", "")),
    }


def _note_attempt_times(attempt_seconds: list[float] | None
                        ) -> tuple[float, list[float]]:
    """Total wall time and the retry-seconds metric for an outcome."""
    durations = list(attempt_seconds or ())
    for seconds in durations[1:]:
        metrics.observe("resilience.retry.seconds", seconds)
    return sum(durations), durations


def _finish_outcome(index: int, point: PointSpec, attempts: int,
                    result: "ExperimentResult",
                    error: BaseException | None,
                    attempt_seconds: list[float] | None = None
                    ) -> PointOutcome:
    """Build the outcome of a successful evaluation.

    Distinguishes ``ok`` / ``retried`` / ``degraded`` and counts
    degraded points; *error* is the last failure before the
    success, kept for the report.  A grid chunk's result is a list —
    the outcome is ``degraded`` when *any* capacity step degraded.
    """
    steps = result if isinstance(result, list) else [result]
    degraded = any(
        getattr(getattr(step, "allocation", None),
                "solver_status", "") == "degraded"
        for step in steps
    )
    if degraded:
        metrics.inc("resilience.degraded_points")
        status = "degraded"
    elif attempts > 1:
        status = "retried"
    else:
        status = "ok"
    wall, durations = _note_attempt_times(attempt_seconds)
    return PointOutcome(
        index=index, point=point, status=status, attempts=attempts,
        error=_error_record(error) if error is not None else None,
        result=result, wall_s=wall, attempt_seconds=durations,
        run_id=active_run_id(),
    )


def _failed_outcome(index: int, point: PointSpec, attempts: int,
                    error: BaseException,
                    attempt_seconds: list[float] | None = None
                    ) -> PointOutcome:
    """Build (and count) the outcome of an exhausted point."""
    metrics.inc("resilience.failed_points")
    log_event("point.failed", point=_describe_point(point),
              attempts=attempts, error=type(error).__name__)
    wall, durations = _note_attempt_times(attempt_seconds)
    return PointOutcome(
        index=index, point=point, status="failed", attempts=attempts,
        error=_error_record(error), result=None, wall_s=wall,
        attempt_seconds=durations, run_id=active_run_id(),
    )


def _evaluate_with_timeout(point: PointSpec, runner: StageRunner,
                           timeout_s: float | None
                           ) -> "ExperimentResult":
    """Serial-path evaluation with an optional wall-clock bound.

    The bounded variant runs the evaluation on a daemon thread and
    abandons it on timeout (Python threads cannot be killed; the
    orphaned thread finishes in the background while the sweep moves
    on).  Raises :class:`~repro.errors.PointTimeoutError` on timeout.
    """
    if timeout_s is None:
        return _evaluate_spec(point, runner=runner)
    box: dict[str, Any] = {}

    def target() -> None:
        try:
            box["result"] = _evaluate_spec(point, runner=runner)
        except BaseException as error:  # noqa: BLE001 — forwarded below
            box["error"] = error

    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    thread.join(timeout_s)
    if thread.is_alive():
        raise PointTimeoutError(
            f"point {_describe_point(point)} exceeded {timeout_s:g}s",
            point=_describe_point(point), seconds=timeout_s,
        )
    if "error" in box:
        raise box["error"]
    return box["result"]


def _heal_serial(points: list[PointSpec], policy: RetryPolicy,
                 record: RunRecord | None) -> HealedRun:
    """Serial healing loop: retry each point in-process."""
    runner = StageRunner(record=record)
    outcomes = []
    for index, point in enumerate(points):
        last_error: BaseException | None = None
        outcome = None
        durations: list[float] = []
        for attempt in range(policy.max_attempts):
            set_fault_attempt(attempt)
            started = time.perf_counter()
            try:
                result = _evaluate_with_timeout(
                    point, runner, policy.timeout_s)
            except Exception as error:  # contained: reported per point
                durations.append(time.perf_counter() - started)
                last_error = error
                if attempt + 1 < policy.max_attempts:
                    metrics.inc("resilience.retries")
                    log_event("point.retry",
                              point=_describe_point(point),
                              attempt=attempt + 1,
                              error=type(error).__name__)
                    time.sleep(policy.backoff_for(attempt))
                continue
            finally:
                set_fault_attempt(0)
            durations.append(time.perf_counter() - started)
            outcome = _finish_outcome(index, point, attempt + 1,
                                      result, last_error, durations)
            break
        if outcome is None:
            assert last_error is not None
            outcome = _failed_outcome(index, point,
                                      policy.max_attempts, last_error,
                                      durations)
        outcomes.append(outcome)
    return HealedRun(outcomes)


def _heal_pooled(points: list[PointSpec], jobs: int,
                 policy: RetryPolicy, record: RunRecord | None,
                 cache_dir: str | os.PathLike | None) -> HealedRun:
    """Pool healing loop: per-point retries plus pool restarts.

    Raises whatever pool *creation* raises (including an injected
    ``worker.spawn`` fault) — the caller degrades to the serial
    healing path, mirroring plain ``map_points``.  Once a pool exists,
    a broken pool (worker crash) or a per-point timeout restarts it
    and re-runs every unfinished point with its attempt counter
    advanced, so injected first-attempt faults cannot recur and the
    loop provably terminates.
    """
    n = len(points)
    if cache_dir is None:
        cache_dir = default_store().cache_dir
    init_arg = str(cache_dir) if cache_dir is not None else None
    collector = get_collector()
    registry = active_registry()
    recorder = active_recorder()
    flags = (collector is not None, registry is not None,
             recorder is not None)
    heartbeat_dir, bus = _setup_worker_live()

    def make_pool() -> concurrent.futures.ProcessPoolExecutor:
        maybe_inject("worker.spawn", jobs=jobs)
        return concurrent.futures.ProcessPoolExecutor(
            max_workers=min(jobs, n),
            initializer=_init_worker,
            initargs=(init_arg, _active_fault_spec(), heartbeat_dir,
                      active_log_spec()),
        )

    started = [0.0] * n
    durations: list[list[float]] = [[] for _ in range(n)]

    def submit(pool, index: int, attempt: int):
        task = (points[index], *flags, attempt)
        started[index] = time.perf_counter()
        return pool.submit(_evaluate_in_worker, task)

    try:
        pool = make_pool()
    except BaseException:
        # Pool creation failed (the caller degrades to serial
        # healing); drop the heartbeat dir before propagating.
        _teardown_worker_live(heartbeat_dir, bus, absorb=False)
        raise
    outcomes: list[PointOutcome | None] = [None] * n
    payloads: list[tuple | None] = [None] * n
    attempts = [0] * n
    last_errors: list[BaseException | None] = [None] * n
    try:
        pending = set(range(n))
        futures = {index: submit(pool, index, 0) for index in pending}

        def restart(bump: set[int]) -> None:
            """Replace the pool; re-run *pending* with bumped attempts."""
            nonlocal pool
            metrics.inc("resilience.pool_restarts")
            log_event("pool.restart", pending=len(pending))
            pool.shutdown(wait=False, cancel_futures=True)
            for index in bump:
                attempts[index] += 1
                durations[index].append(
                    time.perf_counter() - started[index])
            exhausted = {index for index in pending
                         if attempts[index] >= policy.max_attempts}
            for index in exhausted:
                error = last_errors[index]
                assert error is not None
                outcomes[index] = _failed_outcome(
                    index, points[index], attempts[index], error,
                    durations[index])
            pending.difference_update(exhausted)
            pool = make_pool()
            for index in pending:
                if attempts[index] > 0:
                    metrics.inc("resilience.retries")
                futures[index] = submit(pool, index, attempts[index])

        while pending:
            index = min(pending)
            future = futures[index]
            try:
                payload = future.result(timeout=policy.timeout_s)
            except concurrent.futures.TimeoutError:
                # The worker is wedged on this point; the only safe
                # move is a whole-pool restart.  Every unfinished
                # point re-runs with its attempt advanced (injected
                # first-attempt faults cannot recur).
                error = PointTimeoutError(
                    f"point {_describe_point(points[index])} exceeded "
                    f"{policy.timeout_s:g}s",
                    point=_describe_point(points[index]),
                    seconds=policy.timeout_s or 0.0,
                )
                for other in pending:
                    last_errors[other] = error if other == index \
                        else (last_errors[other] or error)
                restart(set(pending))
                continue
            except concurrent.futures.process.BrokenProcessPool \
                    as error:
                # A worker died (crash fault or real).  Which point
                # killed it is unknowable, so every unfinished point
                # retries on a fresh pool.
                for other in pending:
                    last_errors[other] = last_errors[other] or error
                restart(set(pending))
                continue
            except Exception as error:  # worker raised for this point
                durations[index].append(
                    time.perf_counter() - started[index])
                last_errors[index] = error
                attempts[index] += 1
                if attempts[index] < policy.max_attempts:
                    metrics.inc("resilience.retries")
                    log_event("point.retry",
                              point=_describe_point(points[index]),
                              attempt=attempts[index],
                              error=type(error).__name__)
                    time.sleep(policy.backoff_for(attempts[index] - 1))
                    try:
                        futures[index] = submit(pool, index,
                                                attempts[index])
                    except concurrent.futures.process.BrokenProcessPool \
                            as broken:
                        # Another point's crash broke the pool while
                        # this one was being retried.
                        for other in pending:
                            last_errors[other] = \
                                last_errors[other] or broken
                        restart(set(pending) - {index})
                else:
                    outcomes[index] = _failed_outcome(
                        index, points[index], attempts[index], error,
                        durations[index])
                    pending.discard(index)
                continue
            durations[index].append(
                time.perf_counter() - started[index])
            payloads[index] = payload
            outcomes[index] = _finish_outcome(
                index, points[index], attempts[index] + 1, payload[0],
                last_errors[index], durations[index])
            pending.discard(index)
    finally:
        pool.shutdown(wait=False, cancel_futures=True)

    # Fold worker observability back in input order, exactly like
    # plain map_points (failed points contribute nothing).
    for payload in payloads:
        if payload is None:
            continue
        _, counts, events, snapshot, event_snapshot = payload
        if record is not None:
            record.merge(counts)
        if collector is not None and events:
            collector.merge(events)
        if registry is not None and snapshot:
            registry.merge(snapshot)
        if recorder is not None and event_snapshot:
            recorder.merge(event_snapshot)
    _teardown_worker_live(heartbeat_dir, bus, absorb=True)
    final = [outcome for outcome in outcomes if outcome is not None]
    assert len(final) == n
    return HealedRun(final)


def map_points_healed(
    points: list[PointSpec] | tuple[PointSpec, ...],
    jobs: int = 1,
    policy: RetryPolicy | None = None,
    record: RunRecord | None = None,
    cache_dir: str | os.PathLike | None = None,
) -> HealedRun:
    """Evaluate *points* with self-healing; never raises per-point.

    The resilient counterpart of
    :func:`repro.engine.parallel.map_points`: failures are retried
    under *policy* (with backoff), worker crashes restart the pool,
    per-point timeouts are enforced, and the sweep always completes,
    returning a :class:`HealedRun` whose outcomes (and results) are in
    input order.  Points that still fail after ``policy.max_attempts``
    tries are reported as ``failed`` outcomes with a structured error
    instead of aborting the sweep.

    Args:
        points: work units — design points and/or
            :class:`~repro.engine.grid.GridChunk` capacity axes — in
            the order outcomes are wanted (a chunk's outcome carries
            the *list* of its per-capacity results, and the whole
            chunk retries as one unit).
        jobs: worker processes; ``<= 1`` heals serially in-process.
        policy: retry/timeout policy (default :class:`RetryPolicy`).
        record: run record receiving merged per-stage counters from
            successful evaluations.
        cache_dir: on-disk cache directory shared with workers;
            defaults to the process-wide store's directory.

    Raises:
        ConfigurationError: for an unknown algorithm (checked up
            front — a misconfigured sweep is a bug, not a fault).
    """
    points = list(points)
    policy = policy if policy is not None else RetryPolicy()
    for point in points:
        if point.algorithm not in POINT_ALGORITHMS:
            raise ConfigurationError(
                f"unknown algorithm {point.algorithm!r}; choose from "
                f"{POINT_ALGORITHMS}"
            )
    note_total(len(points))
    log_event("heal.start", units=len(points), jobs=jobs,
              max_attempts=policy.max_attempts)
    if jobs > 1 and len(points) > 1:
        try:
            return _heal_pooled(points, jobs, policy, record, cache_dir)
        except (OSError, pickle.PicklingError, InjectedFault):
            # No usable multiprocessing (restricted sandbox,
            # unpicklable payload, injected spawn fault): heal
            # serially instead, same results.
            pass
    return _heal_serial(points, policy, record)
