"""Deterministic, seedable fault injection at named sites.

Production-scale sweeps meet partial failure constantly — corrupted
cache artifacts, crashed workers, pathological solver instances.  This
module lets tests and the ``repro chaos`` gate *manufacture* those
failures deterministically: a :class:`FaultPlan` holds rules that fire
at named injection sites compiled into the hot paths
(:data:`SITES`), and the self-healing machinery in
:mod:`repro.resilience.healing` plus the degradation ladders must then
recover to bit-identical results.

The framework follows the observability layer's
zero-overhead-when-disabled discipline: instrumented code calls
:func:`maybe_inject`, which costs one global read and one comparison
when no plan is installed (``benchmarks/bench_smoke.py`` bounds the
total below 2%).  Every fired fault is recorded as a metric
(``faults.injected`` and ``faults.injected.<site>``) and a
``fault.inject`` span carrying the site and kind.

Plans are written as compact specs (also accepted via the
``$CASA_FAULTS`` environment variable)::

    store.read:error@nth=2
    worker.exec:crash@nth=3,limit=1
    ilp.solve:error@p=0.05,seed=7
    worker.exec:sleep=0.5@nth=1;kernel.replay:error@nth=1

Grammar: ``site:kind[=value][@attr,...]`` rules joined by ``;``.
Kinds: ``error`` (raise :class:`~repro.errors.InjectedFault`),
``corrupt`` (alias of ``error``, reads better at store sites),
``crash`` (hard-exit a worker process; raises
:class:`~repro.errors.WorkerCrashError` when not in a worker) and
``sleep=SECONDS`` (delay, for exercising timeouts).  Attributes:
``nth=N`` (fire on the Nth eligible call, 1-based), ``p=F`` with
``seed=S`` (deterministic Bernoulli), ``limit=N`` (max fires; default
1 for ``nth``, unlimited for ``p``) and ``retries`` (also fire on
retry attempts — off by default, which is what guarantees that
bounded retries converge).  Rule state (call/fire counters, RNG) is
per process; worker processes replay their own copy of the plan.
"""

from __future__ import annotations

import multiprocessing
import os
import random
import time
from dataclasses import dataclass, field

from repro.errors import (
    ConfigurationError,
    InjectedFault,
    WorkerCrashError,
)
from repro.obs import metrics
from repro.obs.trace import span

#: Environment variable holding a default fault-plan spec.
FAULTS_ENV = "CASA_FAULTS"

#: The named injection sites compiled into the library's hot paths.
SITES = (
    "store.read",
    "store.write",
    "worker.spawn",
    "worker.exec",
    "ilp.solve",
    "kernel.replay",
    "serve.accept",
    "serve.parse",
    "serve.respond",
)

#: Fault kinds a rule may request.
KINDS = ("error", "corrupt", "crash", "sleep")

#: Exit status used by ``crash`` faults inside worker processes.
CRASH_EXIT_CODE = 87


@dataclass
class FaultRule:
    """One activation rule of a :class:`FaultPlan`.

    Attributes:
        site: the injection site this rule watches (one of
            :data:`SITES`).
        kind: what firing does (one of :data:`KINDS`).
        nth: fire on the Nth eligible call (1-based), or ``None``.
        probability: Bernoulli fire probability per eligible call, or
            ``None`` (exactly one of ``nth``/``probability`` is set;
            a rule with neither defaults to ``nth=1``).
        seed: RNG seed of a probabilistic rule (deterministic replay).
        limit: maximum number of fires (``None`` = unlimited).
        sleep_s: delay of a ``sleep`` fault, in seconds.
        on_retries: whether the rule also fires on retry attempts
            (off by default so bounded retries always converge).
        calls: eligible calls seen so far (runtime state).
        fires: times this rule has fired (runtime state).
    """

    site: str
    kind: str = "error"
    nth: int | None = None
    probability: float | None = None
    seed: int = 0
    limit: int | None = None
    sleep_s: float = 0.0
    on_retries: bool = False
    calls: int = field(default=0, compare=False)
    fires: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise ConfigurationError(
                f"unknown fault site {self.site!r}; choose from "
                f"{', '.join(SITES)}"
            )
        if self.kind not in KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; choose from "
                f"{', '.join(KINDS)}"
            )
        if self.nth is not None and self.probability is not None:
            raise ConfigurationError(
                f"fault rule for {self.site!r} sets both nth and p"
            )
        if self.nth is None and self.probability is None:
            self.nth = 1
        if self.limit is None and self.nth is not None:
            self.limit = 1
        self._rng = random.Random(self.seed)

    def spec(self) -> str:
        """This rule in :func:`FaultPlan.from_spec` syntax."""
        kind = self.kind
        if self.kind == "sleep":
            kind = f"sleep={self.sleep_s:g}"
        attrs = []
        if self.nth is not None:
            attrs.append(f"nth={self.nth}")
        if self.probability is not None:
            attrs.append(f"p={self.probability:g}")
            attrs.append(f"seed={self.seed}")
        if self.limit is not None and not (
                self.nth is not None and self.limit == 1):
            attrs.append(f"limit={self.limit}")
        if self.on_retries:
            attrs.append("retries")
        suffix = "@" + ",".join(attrs) if attrs else ""
        return f"{self.site}:{kind}{suffix}"

    def should_fire(self, attempt: int) -> bool:
        """Advance the rule's state for one eligible call.

        Returns whether the fault fires on this call.  Calls on retry
        attempts (*attempt* > 0) are ignored entirely unless the rule
        opted into ``retries``.
        """
        if attempt > 0 and not self.on_retries:
            return False
        if self.limit is not None and self.fires >= self.limit:
            return False
        self.calls += 1
        if self.nth is not None:
            fire = self.calls == self.nth or (
                self.limit is not None and self.limit > 1
                and self.calls > self.nth
            )
        else:
            fire = self._rng.random() < (self.probability or 0.0)
        if fire:
            self.fires += 1
        return fire

    def reset(self) -> None:
        """Clear the runtime counters and re-seed the RNG."""
        self.calls = 0
        self.fires = 0
        self._rng = random.Random(self.seed)


def _parse_rule(text: str) -> FaultRule:
    """Parse one ``site:kind[@attr,...]`` rule."""
    head, _, attr_text = text.partition("@")
    site, sep, kind_text = head.partition(":")
    site = site.strip()
    kind_text = kind_text.strip() if sep else "error"
    kind, _, kind_value = kind_text.partition("=")
    sleep_s = 0.0
    if kind == "sleep":
        try:
            sleep_s = float(kind_value or "0.1")
        except ValueError:
            raise ConfigurationError(
                f"bad sleep duration in fault rule {text!r}"
            )
    elif kind_value:
        raise ConfigurationError(
            f"fault kind {kind!r} takes no value ({text!r})"
        )
    nth = probability = limit = None
    seed = 0
    on_retries = False
    for raw in filter(None, attr_text.split(",")):
        key, _, value = raw.strip().partition("=")
        try:
            if key == "nth":
                nth = int(value)
            elif key == "p":
                probability = float(value)
            elif key == "seed":
                seed = int(value)
            elif key == "limit":
                limit = int(value)
            elif key == "retries":
                on_retries = True
            else:
                raise ConfigurationError(
                    f"unknown fault attribute {key!r} in {text!r}"
                )
        except ValueError:
            raise ConfigurationError(
                f"bad value for fault attribute {key!r} in {text!r}"
            )
    return FaultRule(site=site, kind=kind or "error", nth=nth,
                     probability=probability, seed=seed, limit=limit,
                     sleep_s=sleep_s, on_retries=on_retries)


class FaultPlan:
    """A set of :class:`FaultRule`\\ s, installable process-wide.

    Args:
        rules: the activation rules (empty plan = inject nothing).
    """

    def __init__(self, rules: list[FaultRule] | None = None) -> None:
        self.rules = list(rules or [])

    @classmethod
    def from_spec(cls, text: str) -> "FaultPlan":
        """Parse a ``;``-joined rule spec (the ``$CASA_FAULTS`` syntax).

        Raises:
            ConfigurationError: on an unknown site, kind or attribute.
        """
        rules = [
            _parse_rule(part.strip())
            for part in text.split(";") if part.strip()
        ]
        return cls(rules)

    @classmethod
    def from_env(cls) -> "FaultPlan | None":
        """The plan named by ``$CASA_FAULTS``, or ``None`` if unset."""
        spec = os.environ.get(FAULTS_ENV)
        if not spec:
            return None
        return cls.from_spec(spec)

    def spec(self) -> str:
        """The plan as a round-trippable rule spec."""
        return ";".join(rule.spec() for rule in self.rules)

    def match(self, site: str, attempt: int) -> FaultRule | None:
        """The first rule for *site* that fires on this call, if any.

        Every rule watching *site* advances its call counter (subject
        to attempt eligibility), so ``nth`` rules stay deterministic
        even when several rules share a site.
        """
        fired = None
        for rule in self.rules:
            if rule.site != site:
                continue
            if rule.should_fire(attempt) and fired is None:
                fired = rule
        return fired

    @property
    def injected(self) -> int:
        """Total fires across every rule (this process only)."""
        return sum(rule.fires for rule in self.rules)

    def counts(self) -> dict[str, int]:
        """Fires per site (sites that never fired are omitted)."""
        totals: dict[str, int] = {}
        for rule in self.rules:
            if rule.fires:
                totals[rule.site] = totals.get(rule.site, 0) + rule.fires
        return totals

    def reset(self) -> None:
        """Reset every rule's runtime state."""
        for rule in self.rules:
            rule.reset()

    def __getstate__(self):
        """Pickle as the spec (worker processes replay fresh state)."""
        return {"spec": self.spec()}

    def __setstate__(self, state) -> None:
        """Rebuild from the spec with fresh rule state."""
        self.rules = FaultPlan.from_spec(state["spec"]).rules


# -- process-wide active plan ---------------------------------------------------

# $CASA_FAULTS is honoured by every entry point (CLI, tests, spawned
# workers): a spec there becomes the initial process-wide plan.
_PLAN: FaultPlan | None = None
_ATTEMPT: int = 0


def set_fault_plan(plan: FaultPlan | None) -> FaultPlan | None:
    """Install (or, with ``None``, remove) the active fault plan.

    Returns the previously active plan so callers can restore it.
    """
    global _PLAN
    previous = _PLAN
    _PLAN = plan
    return previous


def active_fault_plan() -> FaultPlan | None:
    """The active plan, or ``None`` when injection is disabled."""
    return _PLAN


def set_fault_attempt(attempt: int) -> int:
    """Declare the current retry attempt (0 = first try).

    Rules without the ``retries`` attribute never fire on attempts
    greater than zero, which is what makes bounded retry-with-backoff
    converge under any plan.  Returns the previous attempt so callers
    can restore it.
    """
    global _ATTEMPT
    previous = _ATTEMPT
    _ATTEMPT = attempt
    return previous


def in_worker_process() -> bool:
    """Whether this process is a multiprocessing worker."""
    return multiprocessing.parent_process() is not None


def maybe_inject(site: str, **context) -> None:
    """Fire any matching fault at *site* (no-op without a plan).

    This is the one function instrumented code calls; with no plan
    installed it costs one global read and one comparison.  A fired
    fault is counted in ``faults.injected`` / ``faults.injected.<site>``
    and recorded as a ``fault.inject`` span before it acts:

    * ``error`` / ``corrupt`` raise :class:`~repro.errors.InjectedFault`;
    * ``sleep`` delays by the rule's duration and returns;
    * ``crash`` hard-exits a worker process (the parent sees a broken
      pool, exactly like a real crash) or raises
      :class:`~repro.errors.WorkerCrashError` in the main process.
    """
    plan = _PLAN
    if plan is None:
        return
    rule = plan.match(site, _ATTEMPT)
    if rule is None:
        return
    metrics.inc("faults.injected")
    metrics.inc(f"faults.injected.{site}")
    with span("fault.inject", site=site, kind=rule.kind, **context):
        pass
    if rule.kind == "sleep":
        time.sleep(rule.sleep_s)
        return
    if rule.kind == "crash":
        if in_worker_process():
            os._exit(CRASH_EXIT_CODE)
        raise WorkerCrashError(
            f"injected worker crash at {site}", site=site,
            point=str(context.get("point", "")),
        )
    raise InjectedFault(f"injected fault at {site}", site=site)


_PLAN = FaultPlan.from_env()
