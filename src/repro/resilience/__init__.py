"""Fault injection, self-healing sweeps and chaos testing.

Three layers, bottom up:

* :mod:`repro.resilience.faults` — deterministic fault injection at
  named sites (:data:`~repro.resilience.faults.SITES`), driven by a
  :class:`~repro.resilience.faults.FaultPlan` (``$CASA_FAULTS``).
* :mod:`repro.resilience.healing` — a self-healing variant of
  ``map_points`` with per-point timeout, bounded retry-with-backoff,
  pool restart on worker crashes and a per-point
  :class:`~repro.resilience.healing.PointOutcome`.
* :mod:`repro.resilience.chaos` — the differential gate: run a sweep
  with and without an injected plan and assert the deterministic
  results are bit-identical.

Only the fault layer is imported eagerly: the engine's hot paths
import :func:`~repro.resilience.faults.maybe_inject` from here, while
the healing and chaos layers import the engine — the names below are
resolved lazily to keep that cycle open.
"""

from repro.resilience.faults import (
    FAULTS_ENV,
    FaultPlan,
    FaultRule,
    SITES,
    active_fault_plan,
    maybe_inject,
    set_fault_attempt,
    set_fault_plan,
)

_HEALING_NAMES = ("HealedRun", "PointOutcome", "RetryPolicy",
                  "map_points_healed")
_CHAOS_NAMES = ("ChaosResult", "run_chaos")

__all__ = [
    "FAULTS_ENV",
    "FaultPlan",
    "FaultRule",
    "SITES",
    "active_fault_plan",
    "maybe_inject",
    "set_fault_attempt",
    "set_fault_plan",
    *_HEALING_NAMES,
    *_CHAOS_NAMES,
]


def __getattr__(name: str):
    """Resolve healing/chaos exports lazily (they import the engine)."""
    if name in _HEALING_NAMES:
        import repro.resilience.healing as healing
        return getattr(healing, name)
    if name in _CHAOS_NAMES:
        import repro.resilience.chaos as chaos
        return getattr(chaos, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )
