"""Chaos differential gate: faults in, bit-identical results out.

:func:`run_chaos` executes the same small sweep twice — once clean,
once under an injected :class:`~repro.resilience.faults.FaultPlan`
through the self-healing layer — and compares the deterministic
observables of every design point (energies, hit/miss counts,
scratchpad-resident sets) for *bit-identical* equality.  Any
divergence means a resilience mechanism leaked state (a retry that
was not idempotent, a quarantine that changed a result, a fallback
that was not exact) and fails the gate.

The sweep schedules one self-healed grid chunk per allocator by
default — proving the retry/restart ladder on the grid pipeline's
unit shape — with ``grid=False`` falling back to per-point units.
Either shape adds one policy-varied configuration (the workload's
cache as 2-way LFU) so a non-default replacement policy rides through
the same ladder.
The faulty pass runs against a throwaway on-disk cache that is warmed
first and then stripped of its memory tier, so ``store.read`` faults
genuinely exercise the quarantine-and-recompute ladder rather than
missing cold caches.  Exposed on the CLI as ``repro chaos`` and in CI
as ``make chaos-smoke``.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field

from repro.engine.grid import GridChunk
from repro.engine.parallel import PointSpec
from repro.engine.store import ArtifactStore, set_default_store
from repro.obs.live import note_phase
from repro.obs.logging import log_event
from repro.obs.metrics import MetricsRegistry, active_registry, \
    set_registry
from repro.resilience.faults import FaultPlan, set_fault_plan
from repro.resilience.healing import HealedRun, RetryPolicy, \
    map_points_healed

#: Default scratchpad sizes of the chaos sweep.
DEFAULT_SIZES = (64, 128)

#: Default allocators of the chaos sweep.
DEFAULT_ALGORITHMS = ("casa", "steinke")

#: Error types in point outcomes that witness an injected/healed fault.
_FAULT_ERROR_TYPES = (
    "InjectedFault",
    "WorkerCrashError",
    "PointTimeoutError",
    "BrokenProcessPool",
)


def _signature(result) -> tuple:
    """Every deterministic observable of one experiment result.

    Exact (unrounded) floats and the full resident set: two runs agree
    on this tuple iff they are bit-identical where it matters.
    """
    report = result.report
    allocation = result.allocation
    return (
        result.energy.total,
        report.total_fetches,
        report.cache_accesses,
        report.cache_hits,
        report.cache_misses,
        report.spm_accesses,
        report.lc_accesses,
        allocation.predicted_energy,
        tuple(sorted(allocation.spm_resident)),
        allocation.solver_status,
    )


def _label(point: PointSpec) -> str:
    """Short display label of a design point."""
    return f"{point.workload}/{point.algorithm}@{point.spm_size}"


def _unit_signatures(result) -> list[tuple] | None:
    """Per-point signatures of one work unit's result.

    A grid chunk's result is a list (one entry per capacity step), a
    design point's a single experiment result; either way the return
    value is one signature per compared point, or ``None`` when the
    unit produced nothing.
    """
    if result is None:
        return None
    steps = result if isinstance(result, list) else [result]
    return [_signature(step) for step in steps]


@dataclass
class ChaosResult:
    """Verdict and accounting of one chaos differential run.

    Attributes:
        workload: the workload swept.
        points: number of design points compared.
        ok: no divergences and every faulty-run point produced a
            result.
        divergences: human-readable descriptions of every point whose
            faulty-run observables differ from the clean run.
        injected: faults observed — parent-side metric count plus
            worker-side faults surfaced as healed point errors.
        site_counts: injected-fault counts per site (best effort:
            worker-side fires on failed attempts are attributed to
            their site only when the error record names it).
        retries: ``resilience.retries`` during the faulty run.
        degraded: ``resilience.degraded_points`` during the faulty run.
        failed: points with no result after healing.
        pool_restarts: ``resilience.pool_restarts`` during the run.
        kernel_fallbacks: ``resilience.kernel_fallbacks`` during it.
        quarantined: artifacts moved to quarantine by the faulty run.
        outcome_counts: outcome-status histogram of the faulty run.
        failure_report: the healed run's non-``ok`` outcome report.
    """

    workload: str
    points: int
    ok: bool
    divergences: list[str] = field(default_factory=list)
    injected: int = 0
    site_counts: dict[str, int] = field(default_factory=dict)
    retries: int = 0
    degraded: int = 0
    failed: int = 0
    pool_restarts: int = 0
    kernel_fallbacks: int = 0
    quarantined: int = 0
    outcome_counts: dict[str, int] = field(default_factory=dict)
    failure_report: str = ""

    def render(self) -> str:
        """Multi-line human-readable report of the run."""
        lines = [
            f"chaos: {self.workload}, {self.points} points — "
            + ("OK (bit-identical under faults)" if self.ok
               else "DIVERGED"),
            f"  faults injected   {self.injected}",
        ]
        for site in sorted(self.site_counts):
            lines.append(f"    {site:<15} {self.site_counts[site]}")
        lines.append(f"  retries           {self.retries}")
        lines.append(f"  degraded points   {self.degraded}")
        lines.append(f"  failed points     {self.failed}")
        lines.append(f"  pool restarts     {self.pool_restarts}")
        lines.append(f"  kernel fallbacks  {self.kernel_fallbacks}")
        lines.append(f"  quarantined       {self.quarantined}")
        if self.outcome_counts:
            summary = ", ".join(
                f"{status}={count}"
                for status, count in sorted(self.outcome_counts.items())
            )
            lines.append(f"  outcomes          {summary}")
        for divergence in self.divergences:
            lines.append(f"  DIVERGENCE: {divergence}")
        if self.failure_report:
            for line in self.failure_report.splitlines():
                lines.append(f"  healed: {line}")
        return "\n".join(lines)


def _count_worker_faults(healed: HealedRun) -> dict[str, int]:
    """Fault witnesses per site from healed point-error records.

    Worker-side faults that killed an attempt never merge their
    metrics back (the attempt died with them); the structured error on
    the point outcome is their witness.  Errors without a recorded
    site are tallied under ``worker.exec`` — the only site that can
    fail a pooled attempt anonymously.
    """
    counts: dict[str, int] = {}
    for outcome in healed.outcomes:
        error = outcome.error
        if error is None or error["type"] not in _FAULT_ERROR_TYPES:
            continue
        site = error["site"] or "worker.exec"
        counts[site] = counts.get(site, 0) + 1
    return counts


def run_chaos(
    workload: str = "tiny",
    sizes: tuple[int, ...] | list[int] | None = None,
    algorithms: tuple[str, ...] | list[str] = DEFAULT_ALGORITHMS,
    plan: FaultPlan | None = None,
    spec: str | None = None,
    scale: float = 0.2,
    seed: int = 0,
    jobs: int = 1,
    policy: RetryPolicy | None = None,
    grid: bool = True,
) -> ChaosResult:
    """Run the chaos differential gate on one workload.

    Args:
        workload: registered workload name.
        sizes: scratchpad sizes to sweep (default :data:`DEFAULT_SIZES`).
        algorithms: allocators to sweep (default
            :data:`DEFAULT_ALGORITHMS`).
        plan: the fault plan of the faulty pass (wins over *spec*).
        spec: plan as a ``$CASA_FAULTS``-syntax string.
        scale: workload trip-count multiplier.
        seed: executor seed.
        jobs: worker processes of the faulty pass (the clean pass is
            always serial — it is the reference).
        policy: retry/timeout policy of the faulty pass.
        grid: schedule one healed grid chunk per allocator (the grid
            pipeline's unit shape — the whole chunk retries as one),
            rather than one design point per (size, allocator) pair.
            The compared observables are identical either way.

    Returns:
        A :class:`ChaosResult`; ``result.ok`` is the gate verdict.
    """
    if plan is None:
        plan = FaultPlan.from_spec(spec) if spec else FaultPlan()
    sizes = tuple(sizes) if sizes else DEFAULT_SIZES
    # One policy-varied configuration rides along with every chaos
    # sweep: the workload's cache made 2-way LFU, so the healing
    # ladder is proven over a non-default replacement policy (the
    # per-config vector fallback path) too.
    from dataclasses import replace as _replace

    from repro.workloads.registry import get_workload

    varied_cache = _replace(
        get_workload(workload, scale=scale).cache,
        associativity=2, policy="lfu",
    )
    varied_algorithm = algorithms[0]
    if grid:
        units: list = [
            GridChunk(workload=workload, spm_sizes=sizes,
                      algorithm=algorithm, scale=scale, seed=seed)
            for algorithm in algorithms
        ]
        units.append(GridChunk(
            workload=workload, spm_sizes=sizes[:1],
            algorithm=varied_algorithm, scale=scale, seed=seed,
            cache=varied_cache,
        ))
        labels = [
            [f"{workload}/{algorithm}@{size}" for size in sizes]
            for algorithm in algorithms
        ]
        labels.append([
            f"{workload}/{varied_algorithm}@{size}[lfu,2way]"
            for size in sizes[:1]
        ])
    else:
        units = [
            PointSpec(workload, size, algorithm, scale=scale,
                      seed=seed)
            for algorithm in algorithms
            for size in sizes
        ]
        labels = [[_label(point)] for point in units]
        units.append(PointSpec(
            workload, sizes[0], varied_algorithm, scale=scale,
            seed=seed, cache=varied_cache,
        ))
        labels.append([_label(units[-1]) + "[lfu,2way]"])
    total_points = sum(len(group) for group in labels)

    # Reference pass: serial, memory-only store, injection disabled.
    note_phase("chaos.clean")
    log_event("chaos.pass", phase="clean", units=len(units))
    previous_plan = set_fault_plan(None)
    previous_store = set_default_store(ArtifactStore())
    try:
        clean = map_points_healed(units, jobs=1)
    finally:
        set_default_store(previous_store)
        set_fault_plan(previous_plan)
    clean_signatures = [
        _unit_signatures(result) for result in clean.results
    ]

    # Faulty pass: throwaway disk cache, warmed then stripped of its
    # memory tier so store.read faults hit real artifacts; dedicated
    # metrics registry so the accounting is exact.  The final "result"
    # stage is evicted from the warm cache so every point re-runs its
    # allocation and simulation — otherwise the ilp.solve and
    # kernel.replay sites would sit behind a cache hit and never fire.
    note_phase("chaos.faulty")
    log_event("chaos.pass", phase="faulty", units=len(units),
              jobs=jobs)
    registry = MetricsRegistry()
    with tempfile.TemporaryDirectory(prefix="casa-chaos-") as tmp:
        store = ArtifactStore(cache_dir=tmp)
        previous_store = set_default_store(store)
        previous_plan = set_fault_plan(None)
        try:
            map_points_healed(units, jobs=1)  # warm the disk tier
            store.clear(memory=True, disk=False)
            for path in store.disk_entries():
                if path.name.startswith("result-"):
                    path.unlink()
            plan.reset()
            set_fault_plan(plan)
            previous_registry = set_registry(registry)
            try:
                faulty = map_points_healed(
                    units, jobs=jobs, policy=policy, cache_dir=tmp)
            finally:
                set_registry(previous_registry)
        finally:
            set_default_store(previous_store)
            set_fault_plan(previous_plan)
        quarantined = store.stats.quarantined

    divergences = []
    for index, unit_labels in enumerate(labels):
        outcome = faulty.outcomes[index]
        expected = clean_signatures[index]
        if outcome.result is None:
            divergences.append(
                f"{' '.join(unit_labels)}: no result after healing "
                f"({outcome.error['type'] if outcome.error else '?'})"
            )
            continue
        actual = _unit_signatures(outcome.result)
        if expected is None:
            divergences.append(
                f"{' '.join(unit_labels)}: clean run failed to "
                f"evaluate")
            continue
        for label, exp, act in zip(unit_labels, expected, actual):
            if exp != act:
                divergences.append(
                    f"{label}: clean {exp} != faulty {act}"
                )

    site_counts = {
        name[len("faults.injected."):]: int(registry.value(name))
        for name in registry.names()
        if name.startswith("faults.injected.")
    }
    worker_faults = _count_worker_faults(faulty) if jobs > 1 else {}
    for site, count in worker_faults.items():
        site_counts[site] = site_counts.get(site, 0) + count
    injected = int(registry.value("faults.injected")) \
        + sum(worker_faults.values())

    # Surface the faulty pass's resilience counters to any registry
    # the caller (e.g. ``repro chaos --metrics``) has installed.
    outer = active_registry()
    if outer is not None:
        outer.merge(registry.snapshot())

    counts = faulty.counts()
    log_event("chaos.done", ok=not divergences and faulty.ok,
              injected=injected, points=total_points)
    return ChaosResult(
        workload=workload,
        points=total_points,
        ok=not divergences and faulty.ok,
        divergences=divergences,
        injected=injected,
        site_counts=site_counts,
        retries=int(registry.value("resilience.retries")),
        degraded=int(registry.value("resilience.degraded_points")),
        failed=counts.get("failed", 0),
        pool_restarts=int(registry.value("resilience.pool_restarts")),
        kernel_fallbacks=int(
            registry.value("resilience.kernel_fallbacks")),
        quarantined=quarantined,
        outcome_counts=counts,
        failure_report=faulty.failure_report(),
    )
