"""Fetch-stream compilation: block sequence -> compact arrays.

The reference simulator re-walks the fetch plans on every run.  The
kernel instead *compiles* the (image, block sequence) pair once into a
:class:`FetchStream` — four parallel arrays over fetch segments — and
every cache configuration replays those arrays.  The compilation is the
only per-block Python loop left; it replicates the reference
simulator's call/return tail semantics exactly (see
:mod:`repro.memory.hierarchy`): a block ending in a call pushes its
trace-exit tail onto a stack and the matching return pops and fetches
it, while a plain tail is fetched only when control actually leaves via
the fall-through edge.

Line-probe expansion (one entry per cache-line touch) depends only on
the line size, so it is memoised on the stream and shared across every
cache geometry of a sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.obs import metrics
from repro.obs.trace import span
from repro.traces.layout import LinkedImage

#: Bytes per instruction word (mirrors ``repro.isa.INSTRUCTION_SIZE``).
_WORD = 4


@dataclass(frozen=True)
class ProbeStream:
    """Cache-line probes of a stream, for one line size.

    One entry per line *touch* in chronological order — exactly the
    probes the reference simulator issues via ``Cache.access_line``.

    Attributes:
        line: memory line id of each probe (int64).
        owner: memory-object index of each probe (int32, indexes the
            stream's ``mo_names``).
        words: instruction words served by each probe (int64).
        first: whether the probe is the globally first touch of its
            line (a compulsory miss under any replacement policy).
        line_order: stable argsort of ``line`` — shared by the
            first-touch mask and the replay's previous-occurrence
            computation, so it is paid once per line size, not per
            cache configuration.
    """

    line: np.ndarray
    owner: np.ndarray
    words: np.ndarray
    first: np.ndarray
    line_order: np.ndarray

    def __len__(self) -> int:
        return int(self.line.shape[0])


@dataclass(eq=False)
class FetchStream:
    """The fetch-address stream of one (program, layout) pair.

    Four parallel arrays over fetch *segments* (runs of consecutively
    fetched words), in chronological order.  The compiled form is
    deterministic; compare two streams with :meth:`same_as`.

    Attributes:
        mo_names: memory-object names; ``seg_mo`` indexes this tuple.
        seg_mo: per-segment memory-object index (int32).
        seg_addr: per-segment first byte address (int64).
        seg_words: per-segment word count (int64).
        seg_on_spm: per-segment scratchpad residency flag (bool).
        num_blocks: executed basic blocks (for the report).
        spm_base: scratchpad base address used by the layout.
    """

    mo_names: tuple[str, ...]
    seg_mo: np.ndarray
    seg_addr: np.ndarray
    seg_words: np.ndarray
    seg_on_spm: np.ndarray
    num_blocks: int
    spm_base: int
    _probe_cache: dict[int, ProbeStream] = field(
        default_factory=dict, repr=False, compare=False
    )
    _first_seen: list[int] | None = field(
        default=None, repr=False, compare=False
    )

    def __getstate__(self):
        """Pickle without the memoised probe expansions."""
        state = self.__dict__.copy()
        state["_probe_cache"] = {}
        state["_first_seen"] = None
        return state

    def same_as(self, other: "FetchStream") -> bool:
        """Whether two compiled streams are identical."""
        return (
            self.mo_names == other.mo_names
            and self.num_blocks == other.num_blocks
            and self.spm_base == other.spm_base
            and np.array_equal(self.seg_mo, other.seg_mo)
            and np.array_equal(self.seg_addr, other.seg_addr)
            and np.array_equal(self.seg_words, other.seg_words)
            and np.array_equal(self.seg_on_spm, other.seg_on_spm)
        )

    @property
    def num_segments(self) -> int:
        """Number of fetch segments."""
        return int(self.seg_mo.shape[0])

    @property
    def total_words(self) -> int:
        """Total instruction-word fetches of the stream."""
        return int(self.seg_words.sum())

    @property
    def spm_words(self) -> int:
        """Words served by the scratchpad."""
        return int(self.seg_words[self.seg_on_spm].sum())

    def mo_first_seen(self) -> list[int]:
        """Memory-object indices in order of first fetch (memoised).

        This is the insertion order of the reference report's
        ``mo_stats`` dict, which the kernel reproduces bit-identically.
        """
        if self._first_seen is None:
            if self.num_segments == 0:
                self._first_seen = []
            else:
                _, first_pos = np.unique(self.seg_mo,
                                         return_index=True)
                self._first_seen = \
                    self.seg_mo[np.sort(first_pos)].tolist()
        return list(self._first_seen)

    def probes(self, line_size: int) -> ProbeStream:
        """Expand the cache-path segments into line probes (memoised).

        A segment of ``w`` words starting at byte ``a`` touches the
        lines ``a // line_size .. (a + 4w - 4) // line_size``; each
        probe serves the words of the segment that fall inside its
        line.  Probe order is segment order, lines ascending within a
        segment — the reference simulator's exact probe order.
        """
        cached = self._probe_cache.get(line_size)
        if cached is not None:
            # A sweep re-used a memoised expansion instead of
            # re-deriving the ProbeStream for this line size.
            metrics.inc("sim.kernel.stream_reuse")
            return cached

        mask = ~self.seg_on_spm
        addr = self.seg_addr[mask]
        words = self.seg_words[mask]
        mo = self.seg_mo[mask]

        if addr.shape[0] == 0:
            empty_i64 = np.zeros(0, dtype=np.int64)
            probe = ProbeStream(
                line=empty_i64,
                owner=np.zeros(0, dtype=np.int32),
                words=empty_i64.copy(),
                first=np.zeros(0, dtype=bool),
                line_order=empty_i64.copy(),
            )
            self._probe_cache[line_size] = probe
            return probe

        first_line = addr // line_size
        last_line = (addr + _WORD * words - _WORD) // line_size
        nlines = last_line - first_line + 1
        total = int(nlines.sum())

        starts = np.cumsum(nlines) - nlines
        probe_seg = np.repeat(
            np.arange(addr.shape[0], dtype=np.int64), nlines
        )
        intra = np.arange(total, dtype=np.int64) - starts[probe_seg]
        line = first_line[probe_seg] + intra
        owner = mo[probe_seg]

        line_start = line * line_size
        seg_start = addr[probe_seg]
        seg_end = seg_start + _WORD * words[probe_seg]
        begin = np.maximum(seg_start, line_start)
        end = np.minimum(seg_end, line_start + line_size)
        probe_words = (end - begin) // _WORD

        order = np.argsort(line, kind="stable")
        sorted_lines = line[order]
        first_sorted = np.empty(total, dtype=bool)
        first_sorted[0] = True
        first_sorted[1:] = sorted_lines[1:] != sorted_lines[:-1]
        first = np.empty(total, dtype=bool)
        first[order] = first_sorted

        probe = ProbeStream(
            line=line, owner=owner, words=probe_words, first=first,
            line_order=order,
        )
        self._probe_cache[line_size] = probe
        return probe


def compile_stream(
    image: LinkedImage,
    block_sequence: list[str],
    spm_base: int | None = None,
) -> FetchStream:
    """Compile a block sequence into a :class:`FetchStream`.

    Replicates the reference simulator's segment emission order,
    including the pending-call-tail stack: calls push their trace-exit
    tail, returns pop and fetch it, and plain tails are fetched only
    when the next executed block is the plan's fall-through successor.

    Args:
        image: the linked image whose fetch plans to replay.
        block_sequence: executed block names (from the executor).
        spm_base: scratchpad base address (defaults to the layout
            default, as in the reference simulator).
    """
    with span("sim.kernel.compile", blocks=len(block_sequence)):
        metrics.inc("sim.kernel.streams")
        return _compile(image, block_sequence, spm_base)


def _compile(
    image: LinkedImage,
    block_sequence: list[str],
    spm_base: int | None,
) -> FetchStream:
    if spm_base is None:
        spm_base = 0x0040_0000
    mo_names = tuple(mo.name for mo in image.memory_objects)
    mo_index = {name: i for i, name in enumerate(mo_names)}

    # Per-block compiled form: segment field lists plus control flags.
    compiled: dict[str, tuple] = {}
    for name, plan in image.all_plans().items():
        seg_fields = (
            [mo_index[s.mo_name] for s in plan.segments],
            [s.address for s in plan.segments],
            [s.num_words for s in plan.segments],
            [s.on_spm for s in plan.segments],
        )
        tail = plan.tail_jump
        tail_fields = None
        if tail is not None:
            tail_fields = (
                mo_index[tail.mo_name], tail.address,
                tail.num_words, tail.on_spm,
            )
        compiled[name] = (
            seg_fields, tail_fields, plan.fallthrough,
            plan.ends_with_call, plan.ends_with_return,
        )

    out_mo: list[int] = []
    out_addr: list[int] = []
    out_words: list[int] = []
    out_spm: list[bool] = []
    pending_tails: list[tuple | None] = []
    last_index = len(block_sequence) - 1

    for index, block_name in enumerate(block_sequence):
        (seg_mo, seg_addr, seg_words, seg_spm), tail, fallthrough, \
            is_call, is_return = compiled[block_name]
        out_mo.extend(seg_mo)
        out_addr.extend(seg_addr)
        out_words.extend(seg_words)
        out_spm.extend(seg_spm)
        if is_call:
            pending_tails.append(tail)
        elif tail is not None:
            if index < last_index and \
                    block_sequence[index + 1] == fallthrough:
                out_mo.append(tail[0])
                out_addr.append(tail[1])
                out_words.append(tail[2])
                out_spm.append(tail[3])
        if is_return and pending_tails:
            popped = pending_tails.pop()
            if popped is not None:
                out_mo.append(popped[0])
                out_addr.append(popped[1])
                out_words.append(popped[2])
                out_spm.append(popped[3])

    return FetchStream(
        mo_names=mo_names,
        seg_mo=np.asarray(out_mo, dtype=np.int32),
        seg_addr=np.asarray(out_addr, dtype=np.int64),
        seg_words=np.asarray(out_words, dtype=np.int64),
        seg_on_spm=np.asarray(out_spm, dtype=bool),
        num_blocks=len(block_sequence),
        spm_base=spm_base,
    )
