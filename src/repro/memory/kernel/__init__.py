"""Vectorized simulation kernel (the ``vector`` backend).

The reference simulator in :mod:`repro.memory.hierarchy` interprets the
fetch stream word by word in Python — clear, but slow.  This package
trades the interpreter for three array passes:

1. :func:`~repro.memory.kernel.stream.compile_stream` materializes the
   fetch-address stream of one (program, layout) pair once, as compact
   int64/int32 arrays (a :class:`~repro.memory.kernel.stream.FetchStream`
   — cacheable as an engine artifact);
2. the stream is expanded into cache-line probes per line size (memoised
   on the stream, so a multi-configuration sweep pays it once);
3. :func:`~repro.memory.kernel.vector.simulate_stream` replays the
   probes through a set-associative LRU/FIFO cache model with
   conflict-miss attribution — fully vectorized for direct-mapped
   caches, per-set chronological replay over small arrays otherwise —
   and emits a :class:`~repro.memory.stats.SimulationReport` that is
   bit-identical to the reference simulator's (same counters, same
   dict/Counter insertion orders).

:func:`~repro.memory.kernel.vector.simulate_many` batches several cache
configurations over one stream (the fig4/DSE sweep shape); since the
grid refactor it delegates to
:func:`~repro.memory.kernel.grid.simulate_grid`, which replays every
LRU geometry of a :class:`~repro.memory.kernel.grid.SweepGrid` in one
stack-distance pass per (line size, set count) group.  The
differential harnesses in :mod:`repro.memory.kernel.verify` back the
``repro verify-kernel`` and ``repro verify-grid`` commands.
"""

from repro.memory.kernel.grid import SweepGrid, simulate_grid
from repro.memory.kernel.stream import (
    FetchStream,
    ProbeStream,
    compile_stream,
)
from repro.memory.kernel.vector import (
    KernelUnsupported,
    simulate_many,
    simulate_stream,
    unsupported_reason,
)
from repro.memory.kernel.verify import (
    VerifyCase,
    VerifyReport,
    report_differences,
    verify_kernel,
)

__all__ = [
    "FetchStream",
    "KernelUnsupported",
    "ProbeStream",
    "SweepGrid",
    "VerifyCase",
    "VerifyReport",
    "compile_stream",
    "report_differences",
    "simulate_grid",
    "simulate_many",
    "simulate_stream",
    "unsupported_reason",
    "verify_kernel",
]
