"""Differential verification of the vector kernel.

The kernel's contract is *bit-identical* reports — not just equal
totals, but the same per-object counters, the same ``mo_stats``
insertion order and the same conflict-Counter key order as the
reference simulator.  This module checks that contract from three
independent directions:

1. **Randomized probe-level replay** — random cache geometries
   (power-of-two line size, associativity and set count, any
   kernel-supported policy: LRU, FIFO, LFU or 2Q) are driven with
   random line-probe sequences through both the reference
   :class:`~repro.memory.cache.Cache` and the kernel's replay,
   comparing every per-probe hit/miss outcome and the full conflict
   attribution.
2. **End-to-end workload replay** — committed workloads are simulated
   under a grid of hierarchy configurations (direct-mapped and
   set-associative, every kernel-supported policy, several line
   sizes, with and without a scratchpad and an L2) through both
   backends, and the two reports are compared field by field.
3. **Audit cross-check** — the conflict graph built from a
   *vector-backend* report is audited against the event stream the
   *reference* simulator actually emitted
   (:func:`repro.obs.events.audit_workload` with ``backend="vector"``).

``repro verify-kernel`` runs all three and exits non-zero on any
difference.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.memory.cache import Cache, CacheConfig
from repro.memory.kernel.vector import _conflict_counters, _replay
from repro.memory.stats import SimulationReport
from repro.obs.trace import span

#: Default workloads of the end-to-end and audit checks.
DEFAULT_WORKLOADS = ("tiny", "adpcm")

#: The kernel-supported corner of the cache design space, used by both
#: the random generator and the end-to-end configuration grid.
LINE_SIZES = (8, 16, 32)
ASSOCIATIVITIES = (1, 2, 4)
POLICIES = ("lru", "fifo", "lfu", "2q")


def report_differences(reference: SimulationReport,
                       vector: SimulationReport) -> list[str]:
    """Every field where two reports disagree, human-readably.

    The comparison is strict: per-object counters, scalar totals and
    the *insertion order* of ``mo_stats`` and of both conflict
    Counters all participate, because downstream consumers (the
    conflict graph, rendered tables) observe those orders.
    """
    differences: list[str] = []

    def check(label: str, expected, actual) -> None:
        if expected != actual:
            differences.append(
                f"{label}: reference {expected!r} != vector {actual!r}"
            )

    check("mo_stats keys", list(reference.mo_stats),
          list(vector.mo_stats))
    for name in reference.mo_stats:
        if name not in vector.mo_stats:
            continue
        expected = reference.mo_stats[name]
        actual = vector.mo_stats[name]
        for field_name in ("fetches", "spm_accesses", "lc_accesses",
                           "cache_hits", "cache_misses",
                           "compulsory_misses"):
            check(f"mo_stats[{name!r}].{field_name}",
                  getattr(expected, field_name),
                  getattr(actual, field_name))
    check("conflict_misses", list(reference.conflict_misses.items()),
          list(vector.conflict_misses.items()))
    check("phase_conflicts", list(reference.phase_conflicts.items()),
          list(vector.phase_conflicts.items()))
    for field_name in ("lc_controller_checks", "main_memory_words",
                       "num_block_executions", "overlay_copy_words",
                       "l2_hits", "l2_misses"):
        check(field_name, getattr(reference, field_name),
              getattr(vector, field_name))
    return differences


@dataclass(frozen=True)
class VerifyCase:
    """Outcome of one differential check.

    Attributes:
        kind: ``probe`` | ``workload`` | ``audit``.
        description: what was compared (config, workload, trial seed).
        differences: disagreements found (empty = the check passed).
    """

    kind: str
    description: str
    differences: tuple[str, ...]

    @property
    def ok(self) -> bool:
        """Whether the two sides agreed exactly."""
        return not self.differences


@dataclass(frozen=True)
class VerifyReport:
    """Outcome of one full differential-verification run."""

    cases: tuple[VerifyCase, ...]

    @property
    def ok(self) -> bool:
        """Whether every case passed."""
        return all(case.ok for case in self.cases)

    @property
    def failures(self) -> list[VerifyCase]:
        """The cases that found a difference."""
        return [case for case in self.cases if not case.ok]

    def render(self) -> str:
        """Human-readable verdict, one line per failing case."""
        by_kind: Counter = Counter(case.kind for case in self.cases)
        coverage = ", ".join(
            f"{count} {kind}" for kind, count in sorted(by_kind.items())
        )
        lines = [f"kernel differential verification: "
                 f"{len(self.cases)} cases ({coverage})"]
        if self.ok:
            lines.append(
                "  OK — vector kernel matches the reference "
                "simulator bit-for-bit"
            )
            return "\n".join(lines)
        lines.append(f"  {len(self.failures)} FAILING CASES:")
        for case in self.failures:
            lines.append(f"  - [{case.kind}] {case.description}")
            for diff in case.differences[:8]:
                lines.append(f"      {diff}")
            hidden = len(case.differences) - 8
            if hidden > 0:
                lines.append(f"      ... and {hidden} more")
        return "\n".join(lines)


# -- check 1: randomized probe-level replay -----------------------------------


def random_cache_config(rng: random.Random) -> CacheConfig:
    """A random kernel-supported cache geometry.

    Sizes are derived as ``line * associativity * sets`` with every
    factor a power of two, so the result always satisfies the
    :class:`~repro.memory.cache.CacheConfig` constraints.
    """
    line_size = rng.choice(LINE_SIZES)
    associativity = rng.choice(ASSOCIATIVITIES)
    num_sets = rng.choice((1, 2, 4, 8))
    return CacheConfig(
        size=line_size * associativity * num_sets,
        line_size=line_size,
        associativity=associativity,
        policy=rng.choice(POLICIES),
    )


def _random_probes(rng: random.Random, config: CacheConfig
                   ) -> tuple[list[int], list[int], tuple[str, ...]]:
    """A random probe sequence sized to exercise evictions.

    The line pool is a small multiple of the cache's line capacity so
    capacity and conflict misses actually occur; each line belongs to
    a fixed owner, mirroring real layouts where a line holds one
    memory object.
    """
    capacity_lines = config.num_sets * config.associativity
    pool = rng.randrange(capacity_lines + 1, 4 * capacity_lines + 2)
    names = tuple(f"mo{index}" for index in range(rng.randrange(2, 6)))
    owner_of_line = [rng.randrange(len(names)) for _ in range(pool)]
    length = rng.randrange(50, 400)
    # Mix uniform draws with short sequential runs (the fetch pattern
    # real streams produce).
    lines: list[int] = []
    while len(lines) < length:
        start = rng.randrange(pool)
        run = rng.randrange(1, 5)
        for offset in range(run):
            lines.append((start + offset) % pool)
    lines = lines[:length]
    owners = [owner_of_line[line] for line in lines]
    return lines, owners, names


def _reference_probe_replay(lines: list[int], owners: list[int],
                            names: tuple[str, ...],
                            config: CacheConfig
                            ) -> tuple[list[bool], Counter, int]:
    """Drive the reference cache probe by probe."""
    cache = Cache(config)
    hits = [
        cache.access_line(line, names[owner])
        for line, owner in zip(lines, owners)
    ]
    return hits, cache.conflict_misses, cache.compulsory_misses


def _probe_case(seed: int) -> VerifyCase:
    """One randomized probe-level differential trial."""
    rng = random.Random(seed)
    config = random_cache_config(rng)
    lines, owners, names = _random_probes(rng, config)
    ref_hits, ref_conflicts, ref_compulsory = \
        _reference_probe_replay(lines, owners, names, config)

    line_array = np.asarray(lines, dtype=np.int64)
    owner_array = np.asarray(owners, dtype=np.int32)
    replay = _replay(line_array, owner_array, config, attribute=True)
    conflicts, _ = _conflict_counters(replay, names)
    first_seen: set[int] = set()
    compulsory = 0
    for line in lines:
        if line not in first_seen:
            first_seen.add(line)
            compulsory += 1

    differences: list[str] = []
    vec_hits = replay.hit.tolist()
    if ref_hits != vec_hits:
        mismatches = [
            index for index, (expected, actual)
            in enumerate(zip(ref_hits, vec_hits))
            if expected != actual
        ]
        differences.append(
            f"hit/miss outcome differs at probes {mismatches[:10]} "
            f"({len(mismatches)} of {len(lines)})"
        )
    if list(ref_conflicts.items()) != list(conflicts.items()):
        differences.append(
            f"conflict attribution: reference "
            f"{dict(ref_conflicts)!r} != vector {dict(conflicts)!r}"
        )
    if ref_compulsory != compulsory:
        differences.append(
            f"compulsory misses: reference {ref_compulsory} != "
            f"vector {compulsory}"
        )
    description = (
        f"seed={seed} size={config.size} line={config.line_size} "
        f"assoc={config.associativity} policy={config.policy} "
        f"probes={len(lines)}"
    )
    return VerifyCase("probe", description, tuple(differences))


# -- check 2: end-to-end workload replay --------------------------------------


def _config_grid() -> list:
    """Hierarchy configurations of the end-to-end check.

    Covers the kernel's whole supported surface: the line / way /
    policy cross product (every :data:`POLICIES` member) at a fixed
    small capacity (so conflicts occur), plus one two-level (L1+L2)
    configuration.
    """
    from repro.memory.hierarchy import HierarchyConfig

    configs = []
    for line_size in LINE_SIZES:
        for associativity in ASSOCIATIVITIES:
            for policy in POLICIES:
                configs.append(HierarchyConfig(cache=CacheConfig(
                    size=line_size * associativity * 4,
                    line_size=line_size,
                    associativity=associativity,
                    policy=policy,
                )))
    l1 = CacheConfig(size=128, line_size=16, associativity=2)
    l2 = CacheConfig(size=512, line_size=16, associativity=4)
    configs.append(HierarchyConfig(cache=l1, l2_cache=l2))
    return configs


def workload_images(workload_name: str, scale: float, seed: int):
    """Baseline and scratchpad-resident images of one workload.

    Shared fixture of the kernel and grid differential gates: the
    cache-only image plus (when anything fits) a greedy-filled
    scratchpad image at the workload's smallest table-1 size.

    Returns:
        ``(bench, images)`` where each image entry is a
        ``(label, image, spm_size)`` triple.
    """
    from repro.engine.runner import make_workbench
    from repro.traces.layout import LinkedImage, Placement

    workload, bench = make_workbench(
        workload_name, scale, seed, backend="reference"
    )
    config = bench.config
    spm_size = min(workload.spm_sizes)
    resident: set[str] = set()
    used = 0
    for mo in bench.memory_objects:
        if used + mo.unpadded_size <= spm_size:
            resident.add(mo.name)
            used += mo.unpadded_size

    def image(spm_resident: frozenset[str], size: int) -> LinkedImage:
        return LinkedImage(
            bench.program,
            bench.memory_objects,
            spm_resident=spm_resident,
            spm_size=size,
            placement=Placement.COPY,
            main_base=config.main_base,
            spm_base=config.spm_base,
        )

    images = [("baseline", image(frozenset(), 0), 0)]
    if resident:
        images.append(("spm", image(frozenset(resident), spm_size),
                       spm_size))
    return bench, images


def _workload_cases(workload_name: str, scale: float,
                    seed: int) -> list[VerifyCase]:
    """End-to-end reference-vs-vector cases for one workload."""
    from dataclasses import replace

    from repro.memory.hierarchy import simulate
    from repro.memory.kernel.stream import compile_stream
    from repro.memory.kernel.vector import simulate_stream

    bench, images = workload_images(workload_name, scale, seed)
    config = bench.config
    cases: list[VerifyCase] = []
    for label, image, spm_size in images:
        stream = compile_stream(image, bench.block_sequence,
                                spm_base=config.spm_base)
        for hierarchy in _config_grid():
            hierarchy = replace(hierarchy, spm_size=spm_size)
            reference = simulate(
                image, hierarchy, bench.block_sequence,
                spm_base=config.spm_base, backend="reference",
            )
            vector = simulate_stream(stream, hierarchy,
                                     spm_base=config.spm_base)
            cache = hierarchy.cache
            description = (
                f"{workload_name}/{label} size={cache.size} "
                f"line={cache.line_size} assoc={cache.associativity} "
                f"policy={cache.policy}"
                + (" +L2" if hierarchy.l2_cache is not None else "")
            )
            cases.append(VerifyCase(
                "workload", description,
                tuple(report_differences(reference, vector)),
            ))
    return cases


# -- check 3: audit cross-check -----------------------------------------------


def _audit_case(workload_name: str, scale: float,
                seed: int) -> VerifyCase:
    """Audit a vector-built conflict graph against reference events."""
    from repro.obs.events import audit_workload

    result = audit_workload(workload_name, scale=scale, seed=seed,
                            backend="vector")
    differences = tuple(
        mismatch.describe() for mismatch in result.mismatches
    )
    description = (
        f"{workload_name}: vector conflict graph vs "
        f"{result.events} reference events"
    )
    return VerifyCase("audit", description, differences)


# -- entry point --------------------------------------------------------------


def verify_kernel(
    workloads: tuple[str, ...] | list[str] | None = None,
    trials: int = 50,
    seed: int = 0,
    scale: float = 1.0,
) -> VerifyReport:
    """Run the full differential-verification suite.

    Args:
        workloads: workload names of the end-to-end and audit checks
            (default :data:`DEFAULT_WORKLOADS`).
        trials: randomized probe-level trials.
        seed: base seed; trial ``t`` uses ``seed + t``.
        scale: workload trip-count multiplier of the end-to-end runs.

    Returns:
        A :class:`VerifyReport`; ``report.ok`` is the verdict.
    """
    names = tuple(workloads) if workloads else DEFAULT_WORKLOADS
    cases: list[VerifyCase] = []
    with span("kernel.verify", trials=trials,
              workloads=len(names)) as verify_span:
        for trial in range(trials):
            cases.append(_probe_case(seed + trial))
        for workload_name in names:
            cases.extend(_workload_cases(workload_name, scale, seed))
            cases.append(_audit_case(workload_name, scale, seed))
        report = VerifyReport(tuple(cases))
        verify_span.add(cases=len(cases),
                        failures=len(report.failures))
    return report
