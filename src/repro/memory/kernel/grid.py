"""Grid-native cache replay: one traversal, every LRU geometry.

LRU is a *stack algorithm*: at any probe, a cache with ``A`` ways
holds exactly the ``A`` most recently used distinct lines of each set.
A probe therefore hits in every LRU geometry whose associativity
exceeds its per-set stack distance (the number of distinct same-set
lines touched since the probe's line was last accessed), and the line
at recency depth ``A - 1`` is the one displaced when a miss inserts
into a full set.  One chronological scan per (line size, set count)
group of a :class:`SweepGrid` therefore yields hit masks *and*
eviction attribution for every associativity in the grid at once —
the many-configurations-per-traversal evaluation of the DSE
literature applied to the paper's conflict-attributing caches.

Two properties keep the scan cheap:

* a probe whose set's previous probe touched the same line sits at
  recency depth zero — it hits in every geometry and changes no
  recency state, so such probes are filtered vectorially and never
  enter the Python scan (instruction streams are dominated by them);
* the recency list is truncated at the grid's maximum associativity:
  anything deeper misses everywhere, and its eviction attribution was
  already recorded when it crossed each tracked depth.

Of the replacement policies only LRU is a stack algorithm (FIFO hits
do not refresh recency; LFU/2Q/ARC/OPT violate inclusion outright), so
set-associative non-LRU shapes — and anything
:func:`~repro.memory.kernel.vector.unsupported_reason` rejects — fall
back to per-configuration replay: FIFO/LFU/2Q land on the vector
kernel's per-set interpreters (counted in ``sim.grid.per_config`` —
they never leave the kernel), while ARC/OPT/random configs must be
pre-routed to the reference simulator by the caller (the engine's
``simulate_image_grid`` does this, counting ``sim.kernel.fallbacks``),
since :func:`~repro.memory.kernel.vector.simulate_stream` raises for
them.
Direct-mapped members of kernel-supported policies reuse the
vectorized direct replay, one per group regardless of policy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.memory.kernel.stream import FetchStream
from repro.memory.kernel.vector import (
    _EMPTY_I32,
    _EMPTY_I64,
    _Replay,
    _replay_direct,
    _set_indices,
    assemble_report,
    simulate_stream,
    unsupported_reason,
)
from repro.memory.stats import SimulationReport
from repro.obs import metrics
from repro.obs.trace import span


def _describe_cache(cache) -> list | None:
    if cache is None:
        return None
    return [cache.size, cache.line_size, cache.associativity,
            cache.policy]


@dataclass(frozen=True)
class SweepGrid:
    """The cache axis of a sweep: hierarchy configurations to replay.

    A first-class value so the engine can digest it (one ``grid_sim``
    artifact covers the whole axis) and the kernel can partition it
    into single-pass scan groups.

    Attributes:
        configs: hierarchy configurations
            (:class:`~repro.memory.hierarchy.HierarchyConfig`), in the
            order reports are returned.
    """

    configs: tuple

    @classmethod
    def of(cls, configs) -> "SweepGrid":
        """Build a grid from any iterable of hierarchy configs."""
        return cls(configs=tuple(configs))

    def __len__(self) -> int:
        return len(self.configs)

    def __iter__(self):
        return iter(self.configs)

    def describe(self) -> list:
        """JSON-friendly description of the axis (digest input)."""
        out = []
        for cfg in self.configs:
            loop = getattr(cfg, "loop_cache", None)
            out.append({
                "cache": _describe_cache(cfg.cache),
                "l2": _describe_cache(cfg.l2_cache),
                "spm": cfg.spm_size,
                "loop": repr(loop) if loop is not None else None,
            })
        return out

    def partition(self) -> tuple[dict, list[int], list[int]]:
        """Split the axis into scan groups and per-config fallbacks.

        Returns:
            ``(groups, plain, fallback)`` where ``groups`` maps
            ``(line_size, num_sets)`` to member config indices that
            the single-pass scan covers (LRU, or direct-mapped under
            any kernel-supported policy), ``plain`` lists cache-less
            configs (no replay needed at all), and ``fallback`` lists
            configs that must be replayed one at a time — non-stack
            policies (FIFO/LFU/2Q) per-config on the vector kernel,
            kernel-unsupported ones (ARC/OPT/random, loop caches) on
            whatever the caller routes them to.
        """
        groups: dict[tuple[int, int], list[int]] = {}
        plain: list[int] = []
        fallback: list[int] = []
        for index, cfg in enumerate(self.configs):
            if unsupported_reason(cfg) is not None:
                fallback.append(index)
                continue
            cache = cfg.cache
            if cache is None:
                plain.append(index)
                continue
            if cache.policy != "lru" and cache.associativity != 1:
                fallback.append(index)
                continue
            key = (cache.line_size, cache.num_sets)
            groups.setdefault(key, []).append(index)
        return groups, plain, fallback

    def coverage(self) -> tuple[int, int]:
        """``(covered, fallback)`` config counts of the grid."""
        groups, plain, fallback = self.partition()
        covered = sum(len(m) for m in groups.values()) + len(plain)
        return covered, len(fallback)


def _scan_group(
    line: np.ndarray,
    owner: np.ndarray,
    num_sets: int,
    assocs: list[int],
) -> tuple[list[np.ndarray], list[list[tuple[int, int, int]]]]:
    """One chronological pass yielding all associativities at once.

    ``assocs`` must be ascending and all >= 2 (LRU); the return value
    carries, aligned with it, one global hit mask and one conflict
    event list per associativity.
    """
    total = line.shape[0]
    max_ways = assocs[-1]

    set_idx = _set_indices(line, num_sets)
    set_order = np.argsort(set_idx, kind="stable")
    sorted_sets = set_idx[set_order]
    sorted_lines = line[set_order]

    # Depth-zero probes: same line as the set's previous probe.  They
    # hit in every geometry and leave the recency order untouched.
    trivial = np.zeros(total, dtype=bool)
    if total:
        trivial[1:] = (
            (sorted_sets[1:] == sorted_sets[:-1])
            & (sorted_lines[1:] == sorted_lines[:-1])
        )
    base_hit = np.zeros(total, dtype=bool)
    base_hit[set_order[trivial]] = True

    hits = [base_hit.copy() for _ in assocs]
    events: list[list[tuple[int, int, int]]] = [[] for _ in assocs]

    deep_pos = np.flatnonzero(~trivial)
    if deep_pos.size == 0:
        return hits, events
    deep_global = set_order[deep_pos]
    deep_sets = sorted_sets[deep_pos]

    cuts = np.flatnonzero(np.diff(deep_sets)) + 1
    bounds = [0, *cuts.tolist(), int(deep_global.shape[0])]
    lines_l = line[deep_global].tolist()
    owners_l = owner[deep_global].tolist()
    idx_l = deep_global.tolist()
    flags: list[list[bool]] = [[] for _ in assocs]
    slots = range(len(assocs))

    for b in range(len(bounds) - 1):
        start, stop = bounds[b], bounds[b + 1]
        # Recency list, MRU first, truncated at max_ways entries; one
        # eviction-attribution dict per tracked associativity.
        recency: list[int] = []
        evicted: list[dict[int, int]] = [dict() for _ in assocs]
        for pos in range(start, stop):
            line_id = lines_l[pos]
            depth = -1
            for j, resident in enumerate(recency):
                if resident == line_id:
                    depth = j
                    break
            probe_owner = owners_l[pos]
            if depth >= 0:
                del recency[depth]
                shifted = depth
            else:
                shifted = len(recency)
            recency.insert(0, line_id)
            size = len(recency)
            for k in slots:
                ways = assocs[k]
                if 0 <= depth < ways:
                    flags[k].append(True)
                    continue
                flags[k].append(False)
                evictor = evicted[k].get(line_id)
                if evictor is not None:
                    events[k].append((idx_l[pos], probe_owner, evictor))
                # The entry now at index `ways` crossed the geometry's
                # capacity boundary: this probe evicted it.
                if ways <= shifted and ways < size:
                    evicted[k][recency[ways]] = probe_owner
            if size > max_ways:
                recency.pop()

    for k in slots:
        hits[k][deep_global] = flags[k]
    return hits, events


def _replay_from_scan(
    hit: np.ndarray, events: list[tuple[int, int, int]]
) -> _Replay:
    """Package one associativity's scan outcome as a `_Replay`."""
    if not events:
        return _Replay(hit, _EMPTY_I64, _EMPTY_I32, _EMPTY_I32)
    events.sort()
    idx, victims, evictors = zip(*events)
    return _Replay(
        hit=hit,
        conflict_idx=np.asarray(idx, dtype=np.int64),
        victim=np.asarray(victims, dtype=np.int32),
        evictor=np.asarray(evictors, dtype=np.int32),
    )


def simulate_grid(
    stream: FetchStream,
    grid: SweepGrid,
    spm_base: int | None = None,
) -> list[SimulationReport]:
    """Replay one stream under a whole cache axis in shared passes.

    Produces reports bit-identical to calling
    :func:`~repro.memory.kernel.vector.simulate_stream` once per
    config (the ``repro verify-grid`` gate enforces this), but pays
    the per-set chronological scan once per (line size, set count)
    group instead of once per configuration.

    Args:
        stream: compiled fetch stream.
        grid: the cache axis to replay.
        spm_base: scratchpad base override applied to every config.

    Returns:
        One report per grid config, in grid order.
    """
    configs = grid.configs
    reports: list[SimulationReport | None] = [None] * len(configs)
    groups, plain, fallback = grid.partition()

    metrics.inc("sim.grid.batches")
    metrics.inc("sim.grid.configs", len(configs))
    metrics.inc("sim.grid.groups", len(groups))
    with span("sim.grid.replay", configs=len(configs),
              groups=len(groups), fallbacks=len(fallback)) as grid_span:
        scanned_probes = 0
        for (line_size, num_sets), members in groups.items():
            probes = stream.probes(line_size)
            line = probes.line
            owner = probes.owner
            scanned_probes += len(probes)

            direct_replay = None
            if any(configs[i].cache.associativity == 1
                   for i in members):
                direct_replay = _replay_direct(
                    line, owner, num_sets, attribute=True,
                    line_order=probes.line_order,
                )
            assocs = sorted({
                configs[i].cache.associativity for i in members
                if configs[i].cache.associativity > 1
            })
            replay_by_ways: dict[int, _Replay] = {}
            if assocs:
                hits, events = _scan_group(line, owner, num_sets,
                                           assocs)
                for k, ways in enumerate(assocs):
                    replay_by_ways[ways] = _replay_from_scan(
                        hits[k], events[k]
                    )
            for i in members:
                ways = configs[i].cache.associativity
                replay = (direct_replay if ways == 1
                          else replay_by_ways[ways])
                reports[i] = assemble_report(
                    stream, configs[i], spm_base, probes, replay
                )
        for i in plain:
            reports[i] = assemble_report(
                stream, configs[i], spm_base, None, None
            )
        for i in fallback:
            # Still the vector kernel — just one replay per config
            # instead of a shared scan.  `sim.kernel.fallbacks` is
            # reserved for runs that leave the kernel for the
            # reference interpreter.
            metrics.inc("sim.grid.per_config")
            reports[i] = simulate_stream(
                stream, configs[i], spm_base=spm_base
            )
        grid_span.add(probes=scanned_probes)
    return reports
