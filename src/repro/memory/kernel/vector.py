"""Vectorized set-associative cache replay over compiled streams.

Two replay strategies, both bit-identical to
:meth:`repro.memory.cache.Cache.access_line`:

* **direct-mapped** caches are replayed with pure array ops: a probe
  hits iff the previous probe of its set touched the same line, the
  globally first touch of a line is its compulsory miss, and the
  evictor of a non-compulsory miss is the owner of the probe that
  followed the line's previous occurrence within its set (in a
  direct-mapped cache that probe necessarily evicted it);
* **set-associative** LRU/FIFO/LFU/2Q caches are replayed per set:
  probes are bucketed by set index with one stable argsort, then each
  set's small subsequence is interpreted chronologically with
  insertion-ordered dicts as the recency/fill/frequency queues — the
  per-set state never leaves a cache-friendly working set.  The
  line-keyed interpreters are exact because the reference fills empty
  ways in ascending order before ever evicting, making line <-> way a
  bijection within each set.

ARC and OPT track state beyond the resident ways (ghost lists, a
next-use oracle), and seeded random replacement is inherently
sequential; all three stay on the reference interpreter via the
``auto`` fallback matrix (counted in ``sim.kernel.fallbacks`` —
fallback cost measured in ``docs/POLICIES.md``).

Conflict events carry their global probe index, so the report's
``conflict_misses`` Counter is rebuilt in the reference simulator's
exact key order (first chronological occurrence of each (victim,
evictor) pair).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.memory.cache import CacheConfig
from repro.memory.kernel.stream import FetchStream, compile_stream
from repro.memory.stats import MemoryObjectStats, SimulationReport
from repro.obs import metrics
from repro.obs.trace import span

#: Replacement policies the kernel replays exactly.
SUPPORTED_POLICIES = ("lru", "fifo", "lfu", "2q")


class KernelUnsupported(SimulationError):
    """The vector kernel cannot replay this configuration exactly.

    Raised for loop-cache hierarchies, phase-tracked runs and
    replacement policies outside :data:`SUPPORTED_POLICIES`
    (``random``, ``arc``, ``opt``); the ``auto`` backend catches it
    and falls back to the reference simulator.
    """


def unsupported_reason(
    config,
    block_phases=None,
    loop_regions=None,
) -> str | None:
    """Why the kernel cannot handle a run, or ``None`` if it can.

    Args:
        config: a :class:`~repro.memory.hierarchy.HierarchyConfig`.
        block_phases: phase map of the intended run, if any.
        loop_regions: preloaded loop regions of the intended run.
    """
    if config.loop_cache is not None:
        return "loop-cache hierarchies use the reference simulator"
    if loop_regions:
        return "loop regions require the reference simulator"
    if block_phases is not None:
        return "phase-tracked (overlay) runs use the reference simulator"
    for cache in (config.cache, config.l2_cache):
        if cache is not None and cache.policy not in SUPPORTED_POLICIES:
            return (
                f"replacement policy {cache.policy!r} is not vectorized "
                f"(supported: {', '.join(SUPPORTED_POLICIES)})"
            )
    return None


@dataclass(frozen=True)
class _Replay:
    """Outcome of replaying one cache level over a probe stream."""

    hit: np.ndarray          # bool[N]
    conflict_idx: np.ndarray  # int64[C], ascending probe indices
    victim: np.ndarray       # int32[C] memory-object index
    evictor: np.ndarray      # int32[C] memory-object index


_EMPTY_I64 = np.zeros(0, dtype=np.int64)
_EMPTY_I32 = np.zeros(0, dtype=np.int32)


def _set_indices(line: np.ndarray, num_sets: int) -> np.ndarray:
    """Set index of every probe, in the narrowest sortable dtype.

    ``num_sets`` is a power of two, so the modulo is a mask; narrowing
    to uint16 lets numpy's stable radix sort finish in two passes.
    """
    set_idx = line & (num_sets - 1)
    if num_sets <= (1 << 16):
        return set_idx.astype(np.uint16)
    if num_sets <= (1 << 32):
        return set_idx.astype(np.uint32)
    return set_idx


def _replay_direct(line: np.ndarray, owner: np.ndarray,
                   num_sets: int, attribute: bool,
                   line_order: np.ndarray | None = None) -> _Replay:
    """Fully vectorized replay of a direct-mapped cache."""
    total = line.shape[0]
    hit = np.zeros(total, dtype=bool)
    if total == 0:
        return _Replay(hit, _EMPTY_I64, _EMPTY_I32, _EMPTY_I32)

    set_idx = _set_indices(line, num_sets)
    set_order = np.argsort(set_idx, kind="stable")
    lines_by_set = line[set_order]
    same_set = set_idx[set_order][1:] == set_idx[set_order][:-1]
    hit_sorted = np.zeros(total, dtype=bool)
    hit_sorted[1:] = same_set & (lines_by_set[1:] == lines_by_set[:-1])
    hit[set_order] = hit_sorted

    if not attribute:
        return _Replay(hit, _EMPTY_I64, _EMPTY_I32, _EMPTY_I32)

    # Previous occurrence of the same line (global probe index).
    if line_order is None:
        line_order = np.argsort(line, kind="stable")
    prev = np.full(total, -1, dtype=np.int64)
    same_line = line[line_order][1:] == line[line_order][:-1]
    prev[line_order[1:][same_line]] = line_order[:-1][same_line]

    # Next probe within the same set (global probe index).
    nxt = np.full(total, -1, dtype=np.int64)
    nxt[set_order[:-1][same_set]] = set_order[1:][same_set]

    # A non-compulsory miss of line L was evicted by the probe that
    # followed L's previous occurrence in the set: that probe found L
    # resident, missed, and displaced it (associativity 1).
    victims = np.flatnonzero(~hit & (prev >= 0))
    evict_probe = nxt[prev[victims]]
    valid = evict_probe >= 0
    victims = victims[valid]
    evict_probe = evict_probe[valid]
    return _Replay(
        hit=hit,
        conflict_idx=victims.astype(np.int64),
        victim=owner[victims],
        evictor=owner[evict_probe],
    )


def _replay_set_lfu(lines_l: list, owners_l: list, idx_l: list,
                    num_ways: int, attribute: bool,
                    events: list) -> list[bool]:
    """One set's chronological LFU replay, keyed by line.

    Mirrors :class:`~repro.memory.replacement.LfuPolicy` exactly: dict
    insertion order is the recency queue (refreshed on hits and fills,
    like the reference's way order), and the victim is the first
    strictly-minimal reference count scanning LRU-first.
    """
    resident: dict[int, int] = {}  # line -> refcount, LRU first.
    evicted_by: dict[int, int] = {}
    flags = []
    for pos, line_id in enumerate(lines_l):
        count = resident.pop(line_id, None)
        if count is not None:
            flags.append(True)
            resident[line_id] = count + 1
            continue
        flags.append(False)
        probe_owner = owners_l[pos]
        if attribute:
            evictor = evicted_by.get(line_id)
            if evictor is not None:
                events.append((idx_l[pos], probe_owner, evictor))
        if len(resident) >= num_ways:
            victim_line = next(iter(resident))
            best = resident[victim_line]
            for cand, cnt in resident.items():
                if cnt < best:
                    victim_line, best = cand, cnt
            del resident[victim_line]
            evicted_by[victim_line] = probe_owner
        resident[line_id] = 1
    return flags


def _replay_set_2q(lines_l: list, owners_l: list, idx_l: list,
                   num_ways: int, attribute: bool,
                   events: list) -> list[bool]:
    """One set's chronological 2Q replay, keyed by line.

    Mirrors :class:`~repro.memory.replacement.TwoQPolicy` exactly: A1
    is a FIFO of once-seen lines, a hit there promotes into the Am LRU
    queue, and victims drain A1 while it exceeds Kin (or Am is empty).
    """
    a1: dict[int, None] = {}  # once-seen, FIFO order.
    am: dict[int, None] = {}  # reheated, LRU order.
    kin = max(1, num_ways // 4)
    evicted_by: dict[int, int] = {}
    flags = []
    for pos, line_id in enumerate(lines_l):
        if line_id in a1:
            flags.append(True)
            del a1[line_id]
            am[line_id] = None
            continue
        if line_id in am:
            flags.append(True)
            del am[line_id]
            am[line_id] = None
            continue
        flags.append(False)
        probe_owner = owners_l[pos]
        if attribute:
            evictor = evicted_by.get(line_id)
            if evictor is not None:
                events.append((idx_l[pos], probe_owner, evictor))
        if len(a1) + len(am) >= num_ways:
            if a1 and (len(a1) > kin or not am):
                victim_line = next(iter(a1))
                del a1[victim_line]
            elif am:
                victim_line = next(iter(am))
                del am[victim_line]
            else:
                victim_line = next(iter(a1))
                del a1[victim_line]
            evicted_by[victim_line] = probe_owner
        a1[line_id] = None
    return flags


def _replay_assoc(line: np.ndarray, owner: np.ndarray,
                  config: CacheConfig, attribute: bool) -> _Replay:
    """Per-set chronological replay of a set-associative cache."""
    total = line.shape[0]
    hit = np.zeros(total, dtype=bool)
    if total == 0:
        return _Replay(hit, _EMPTY_I64, _EMPTY_I32, _EMPTY_I32)

    num_ways = config.associativity
    policy = config.policy
    set_idx = _set_indices(line, config.num_sets)
    set_order = np.argsort(set_idx, kind="stable")
    cuts = np.flatnonzero(np.diff(set_idx[set_order])) + 1
    events: list[tuple[int, int, int]] = []

    if policy in ("lru", "fifo"):
        move_on_hit = policy == "lru"
        for group in np.split(set_order, cuts):
            lines_l = line[group].tolist()
            owners_l = owner[group].tolist()
            idx_l = group.tolist()
            # Insertion order is the recency (LRU) / fill (FIFO) queue.
            resident: dict[int, None] = {}
            evicted_by: dict[int, int] = {}
            flags = []
            for pos, line_id in enumerate(lines_l):
                if line_id in resident:
                    flags.append(True)
                    if move_on_hit:
                        del resident[line_id]
                        resident[line_id] = None
                    continue
                flags.append(False)
                probe_owner = owners_l[pos]
                if attribute:
                    evictor = evicted_by.get(line_id)
                    if evictor is not None:
                        events.append((idx_l[pos], probe_owner, evictor))
                if len(resident) >= num_ways:
                    victim_line = next(iter(resident))
                    del resident[victim_line]
                    evicted_by[victim_line] = probe_owner
                resident[line_id] = None
            hit[group] = flags
    elif policy in ("lfu", "2q"):
        replay_set = _replay_set_lfu if policy == "lfu" else _replay_set_2q
        for group in np.split(set_order, cuts):
            hit[group] = replay_set(
                line[group].tolist(), owner[group].tolist(),
                group.tolist(), num_ways, attribute, events,
            )
    else:
        raise KernelUnsupported(
            f"replacement policy {policy!r} is not vectorized "
            f"(supported: {', '.join(SUPPORTED_POLICIES)})"
        )

    if not events:
        return _Replay(hit, _EMPTY_I64, _EMPTY_I32, _EMPTY_I32)
    events.sort()
    idx, victims, evictors = zip(*events)
    return _Replay(
        hit=hit,
        conflict_idx=np.asarray(idx, dtype=np.int64),
        victim=np.asarray(victims, dtype=np.int32),
        evictor=np.asarray(evictors, dtype=np.int32),
    )


def _replay(line: np.ndarray, owner: np.ndarray,
            config: CacheConfig, attribute: bool,
            line_order: np.ndarray | None = None) -> _Replay:
    if config.associativity == 1:
        return _replay_direct(line, owner, config.num_sets, attribute,
                              line_order=line_order)
    return _replay_assoc(line, owner, config, attribute)


def _counts(ids: np.ndarray, size: int,
            weights: np.ndarray | None = None) -> np.ndarray:
    """Per-memory-object totals as an exact int64 array."""
    if weights is None:
        return np.bincount(ids, minlength=size).astype(np.int64)
    return np.bincount(
        ids, weights=weights.astype(np.float64), minlength=size
    ).astype(np.int64)


def _conflict_counters(replay: _Replay, names: tuple[str, ...]
                       ) -> tuple[Counter, Counter]:
    """Rebuild conflict Counters in reference key order.

    The reference creates a ``(victim, evictor)`` key the first time
    that pair conflicts; replaying the events in ascending probe order
    reproduces that insertion order exactly.
    """
    conflicts: Counter = Counter()
    phase_conflicts: Counter = Counter()
    if replay.conflict_idx.size == 0:
        return conflicts, phase_conflicts
    num = len(names)
    keys = replay.victim.astype(np.int64) * num + replay.evictor
    uniq, first_pos, counts = np.unique(
        keys, return_index=True, return_counts=True
    )
    for slot in np.argsort(first_pos, kind="stable").tolist():
        victim, evictor = divmod(int(uniq[slot]), num)
        pair = (names[victim], names[evictor])
        conflicts[pair] = int(counts[slot])
        phase_conflicts[(0,) + pair] = int(counts[slot])
    return conflicts, phase_conflicts


def assemble_report(
    stream: FetchStream,
    config,
    spm_base: int | None,
    probes,
    replay: _Replay | None,
) -> SimulationReport:
    """Assemble a report from a precomputed L1 replay.

    Shared by the per-configuration path (:func:`simulate_stream`) and
    the grid path (:func:`repro.memory.kernel.grid.simulate_grid`), so
    both produce byte-for-byte identical reports from the same replay
    outcome.  ``probes``/``replay`` are ``None`` for cache-less
    hierarchies.
    """
    names = stream.mo_names
    num_mos = len(names)
    seg_mo = stream.seg_mo
    seg_words = stream.seg_words
    spm_mask = stream.seg_on_spm

    fetches = _counts(seg_mo, num_mos, seg_words)

    spm_accesses = np.zeros(num_mos, dtype=np.int64)
    if spm_mask.any():
        if not config.spm_size:
            first = int(seg_mo[int(np.argmax(spm_mask))])
            raise SimulationError(
                f"segment of {names[first]!r} mapped to a "
                "scratchpad that does not exist"
            )
        base = spm_base if spm_base is not None else stream.spm_base
        spm_addr = stream.seg_addr[spm_mask]
        spm_words = seg_words[spm_mask]
        low = int(spm_addr.min())
        high = int((spm_addr + 4 * spm_words).max())
        if low < base or high > base + config.spm_size:
            raise SimulationError(
                f"scratchpad access [{low:#x},{high:#x}) outside "
                f"[{base:#x},{base + config.spm_size:#x})"
            )
        spm_accesses = _counts(seg_mo[spm_mask], num_mos, spm_words)

    conflicts: Counter = Counter()
    phase_conflicts: Counter = Counter()
    l2_hits = 0
    l2_misses = 0
    if config.cache is None:
        cache_mask = ~spm_mask
        cache_misses = _counts(
            seg_mo[cache_mask], num_mos, seg_words[cache_mask]
        )
        cache_hits = np.zeros(num_mos, dtype=np.int64)
        compulsory = np.zeros(num_mos, dtype=np.int64)
        main_memory_words = int(cache_misses.sum())
    else:
        cache_cfg = config.cache
        hit = replay.hit
        miss = ~hit
        owner = probes.owner
        cache_hits = (
            _counts(owner[hit], num_mos, probes.words[hit])
            + _counts(owner[miss], num_mos, probes.words[miss] - 1)
        )
        cache_misses = _counts(owner[miss], num_mos)
        compulsory = _counts(owner[probes.first], num_mos)
        conflicts, phase_conflicts = _conflict_counters(replay, names)

        miss_probes = int(cache_misses.sum())
        if config.l2_cache is not None:
            l2_replay = _replay(
                probes.line[miss], owner[miss], config.l2_cache,
                attribute=False,
            )
            l2_hits = int(l2_replay.hit.sum())
            l2_misses = miss_probes - l2_hits
            main_memory_words = l2_misses * cache_cfg.words_per_line
        else:
            main_memory_words = miss_probes * cache_cfg.words_per_line

    report = SimulationReport(
        num_block_executions=stream.num_blocks
    )
    for mo_idx in stream.mo_first_seen():
        report.mo_stats[names[mo_idx]] = MemoryObjectStats(
            name=names[mo_idx],
            fetches=int(fetches[mo_idx]),
            spm_accesses=int(spm_accesses[mo_idx]),
            cache_hits=int(cache_hits[mo_idx]),
            cache_misses=int(cache_misses[mo_idx]),
            compulsory_misses=int(compulsory[mo_idx]),
        )
    report.conflict_misses = conflicts
    report.phase_conflicts = phase_conflicts
    report.main_memory_words = main_memory_words
    report.l2_hits = l2_hits
    report.l2_misses = l2_misses
    metrics.inc("sim.kernel.simulations")
    report.assert_identities()
    return report


def simulate_stream(
    stream: FetchStream,
    config,
    spm_base: int | None = None,
) -> SimulationReport:
    """Replay a compiled stream through a hierarchy configuration.

    Produces a :class:`~repro.memory.stats.SimulationReport` that is
    bit-identical to the reference simulator's — including the
    insertion order of ``mo_stats`` (first-fetch order) and of the
    conflict Counters (first-conflict order).

    Args:
        stream: compiled fetch stream (see :func:`compile_stream`).
        config: a :class:`~repro.memory.hierarchy.HierarchyConfig`.
        spm_base: scratchpad base address override (defaults to the
            base recorded in the stream).

    Raises:
        KernelUnsupported: for configurations the kernel cannot replay
            exactly (see :func:`unsupported_reason`).
        SimulationError: on scratchpad mapping violations, exactly as
            the reference simulator.
    """
    reason = unsupported_reason(config)
    if reason is not None:
        raise KernelUnsupported(reason)

    with span("sim.kernel.replay", segments=stream.num_segments,
              words=stream.total_words) as replay_span:
        probes = None
        replay = None
        if config.cache is not None:
            probes = stream.probes(config.cache.line_size)
            replay = _replay(probes.line, probes.owner, config.cache,
                             attribute=True,
                             line_order=probes.line_order)
            miss_probes = len(probes) - int(replay.hit.sum())
            replay_span.add(probes=len(probes), misses=miss_probes)
            metrics.inc("sim.kernel.probes", len(probes))
        return assemble_report(stream, config, spm_base, probes, replay)


def simulate(
    image,
    config,
    block_sequence: list[str],
    spm_base: int | None = None,
) -> SimulationReport:
    """Compile and replay in one call (kernel-only entry point).

    Prefer :func:`repro.memory.hierarchy.simulate` with
    ``backend="vector"`` — it adds the dispatch, spans and metrics.
    """
    stream = compile_stream(image, block_sequence, spm_base=spm_base)
    return simulate_stream(stream, config, spm_base=spm_base)


def simulate_many(
    stream: FetchStream,
    configs,
    spm_base: int | None = None,
) -> list[SimulationReport]:
    """Replay one stream under many hierarchy configurations.

    The expensive parts of a configuration sweep — stream compilation
    and the per-line-size probe expansion — are shared: the stream is
    compiled once by the caller and each distinct line size is expanded
    once (memoised on the stream).  This is the fig4/DSE shape: one
    fixed trace, thousands of cache configurations.

    Since the grid refactor this is a thin wrapper over
    :func:`repro.memory.kernel.grid.simulate_grid`: LRU shapes are
    replayed in a single stack-distance pass per (line size, set
    count) group and only non-stack (FIFO/LFU/2Q) / unsupported
    shapes fall back to the per-configuration replay above.

    Args:
        stream: compiled fetch stream.
        configs: iterable of hierarchy configurations.
        spm_base: scratchpad base override applied to every run.

    Returns:
        One report per configuration, in input order.
    """
    from repro.memory.kernel.grid import SweepGrid, simulate_grid

    grid = SweepGrid.of(configs)
    metrics.inc("sim.kernel.batches")
    with span("sim.kernel.batch", configs=len(grid)):
        return simulate_grid(stream, grid, spm_base=spm_base)
