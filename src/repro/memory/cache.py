"""Set-associative instruction cache with conflict-miss attribution.

Beyond hit/miss counting, the cache remembers, for every memory line it
evicts, *which memory object's* line displaced it.  When the evicted line
later misses again, that miss is attributed to the displacing object —
exactly the ``Miss(x_i, x_j)`` quantity of the paper's conflict graph
(section 3.3): an edge ``e_ij`` with weight ``m_ij`` counts the misses of
``x_i`` that occur because ``x_j`` replaced its lines.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.memory.replacement import ReplacementPolicy, make_policy
from repro.obs.events import CacheEvent, active_recorder
from repro.utils.bitops import is_power_of_two, log2_int


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and policy of an instruction cache.

    Attributes:
        size: capacity in bytes.
        line_size: line (block) size in bytes.
        associativity: number of ways (1 = direct mapped).
        policy: replacement policy name — any entry of
            :data:`repro.memory.replacement.POLICIES` (``lru``,
            ``fifo``, ``random``, ``lfu``, ``2q``, ``arc``, ``opt``;
            see ``docs/POLICIES.md``).
    """

    size: int = 2048
    line_size: int = 16
    associativity: int = 1
    policy: str = "lru"

    def __post_init__(self) -> None:
        for name in ("size", "line_size", "associativity"):
            value = getattr(self, name)
            if not is_power_of_two(value):
                raise ConfigurationError(
                    f"cache {name} must be a power of two, got {value}"
                )
        if self.line_size > self.size:
            raise ConfigurationError(
                f"line size {self.line_size} exceeds cache size {self.size}"
            )
        if self.associativity * self.line_size > self.size:
            raise ConfigurationError(
                "cache cannot hold a full set: "
                f"{self.associativity} ways x {self.line_size} B "
                f"> {self.size} B"
            )

    @property
    def num_sets(self) -> int:
        """Number of sets (``size / (associativity * line_size)``)."""
        return self.size // (self.associativity * self.line_size)

    @property
    def words_per_line(self) -> int:
        """Instruction words per cache line (4-byte words)."""
        return self.line_size // 4

    def map_line(self, line_id: int) -> int:
        """Set index of a memory line — the paper's ``Map`` function."""
        return line_id % self.num_sets


class _CacheSet:
    """One cache set: tags, line owners, and a replacement policy."""

    __slots__ = ("tags", "owners", "lines", "policy")

    def __init__(self, num_ways: int, policy_name: str) -> None:
        self.tags: list[int | None] = [None] * num_ways
        self.owners: list[str | None] = [None] * num_ways
        self.lines: list[int | None] = [None] * num_ways
        self.policy: ReplacementPolicy = make_policy(policy_name, num_ways)


class Cache:
    """A set-associative I-cache with eviction attribution.

    Addresses are byte addresses; internally the cache works on *memory
    line ids* (``address // line_size``).  Every resident line carries
    the name of the memory object that owns it.
    """

    def __init__(self, config: CacheConfig, label: str = "L1") -> None:
        self._config = config
        #: event-stream label distinguishing cache levels (``L1``/``L2``).
        self.label = label
        # The recorder is bound once at construction: the disabled-path
        # cost per probe is one attribute read and one None comparison
        # (bench_smoke budgets it under the 2% overhead gate).
        self._recorder = active_recorder()
        self._set_bits = log2_int(config.num_sets)
        self._sets = [
            _CacheSet(config.associativity, config.policy)
            for _ in range(config.num_sets)
        ]
        # Zero-arg factory producing a fresh next-use oracle for
        # line-aware policies that need one (OPT); kept so flush() can
        # rebuild oracle state alongside the sets.
        self._oracle_factory = None
        # For every memory line currently NOT in the cache but seen
        # before: the owner of the line that evicted it last.
        self._evicted_by: dict[int, str] = {}
        self._seen_lines: set[int] = set()

        self.hits = 0
        self.misses = 0
        self.compulsory_misses = 0
        #: per-(victim_mo, evictor_mo) conflict-miss counts (m_ij).
        self.conflict_misses: Counter = Counter()
        #: per-mo hit / miss / compulsory counters.
        self.mo_hits: Counter = Counter()
        self.mo_misses: Counter = Counter()
        self.mo_compulsory: Counter = Counter()
        #: execution phase the driver is currently in (see the overlay
        #: extension); only used when phase-binned counters are wanted.
        self.phase = 0
        #: per-(phase, victim_mo, evictor_mo) conflict misses.
        self.phase_conflicts: Counter = Counter()
        #: per-(phase, mo) compulsory misses.
        self.phase_compulsory: Counter = Counter()

    @property
    def config(self) -> CacheConfig:
        """The cache's configuration."""
        return self._config

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    def access_line(self, line_id: int, owner: str) -> bool:
        """Probe the cache for a memory line.

        Args:
            line_id: memory line id (byte address // line size).
            owner: name of the memory object the fetch belongs to.

        Returns:
            ``True`` on a hit, ``False`` on a miss (the line is filled).
        """
        index = line_id % len(self._sets)
        cache_set = self._sets[index]
        recorder = self._recorder
        policy = cache_set.policy
        # line_aware is a class attribute (False for the classic
        # policies), so the hot path pays one attribute check.
        line_aware = policy.line_aware
        if line_aware:
            policy.note_access(line_id)
        for way, resident in enumerate(cache_set.lines):
            if resident == line_id:
                self.hits += 1
                self.mo_hits[owner] += 1
                policy.on_hit(way)
                if recorder is not None and recorder.record_hits:
                    recorder.record(CacheEvent(
                        kind="hit", seq=recorder.next_seq(),
                        cache=self.label, set_index=index,
                        line_id=line_id, mo=owner, way=way,
                        phase=self.phase,
                    ))
                return True

        # Miss: classify, pick a victim, fill.
        self.misses += 1
        self.mo_misses[owner] += 1
        compulsory = line_id not in self._seen_lines
        evictor: str | None = None
        if compulsory:
            self._seen_lines.add(line_id)
            self.compulsory_misses += 1
            self.mo_compulsory[owner] += 1
            self.phase_compulsory[(self.phase, owner)] += 1
        else:
            evictor = self._evicted_by.get(line_id)
            if evictor is not None:
                self.conflict_misses[(owner, evictor)] += 1
                self.phase_conflicts[(self.phase, owner, evictor)] += 1
        if recorder is not None:
            recorder.record(CacheEvent(
                kind="miss", seq=recorder.next_seq(), cache=self.label,
                set_index=index, line_id=line_id, mo=owner,
                evictor=evictor, compulsory=compulsory, phase=self.phase,
            ))
        if line_aware:
            policy.note_miss(line_id)

        victim_way = None
        for way, resident in enumerate(cache_set.lines):
            if resident is None:
                victim_way = way
                break
        if victim_way is None:
            victim_way = policy.victim()
            evicted_line = cache_set.lines[victim_way]
            assert evicted_line is not None
            self._evicted_by[evicted_line] = owner
            if line_aware:
                policy.note_evict(evicted_line)
            if recorder is not None:
                victim_owner = cache_set.owners[victim_way]
                assert victim_owner is not None
                recorder.record(CacheEvent(
                    kind="evict", seq=recorder.next_seq(),
                    cache=self.label, set_index=index,
                    line_id=evicted_line, mo=victim_owner,
                    evictor=owner, way=victim_way, phase=self.phase,
                    policy_state=(policy.state()
                                  if recorder.record_policy_state
                                  else None),
                ))
        cache_set.lines[victim_way] = line_id
        cache_set.owners[victim_way] = owner
        policy.on_fill(victim_way)
        if line_aware:
            policy.note_fill(victim_way, line_id)
        return False

    def contains_line(self, line_id: int) -> bool:
        """Whether the memory line is currently resident."""
        index = line_id % len(self._sets)
        return line_id in self._sets[index].lines

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------

    @property
    def accesses(self) -> int:
        """Total probes (hits + misses)."""
        return self.hits + self.misses

    @property
    def conflict_miss_count(self) -> int:
        """Total misses attributed to a conflicting object."""
        return sum(self.conflict_misses.values())

    def reset_statistics(self) -> None:
        """Clear counters but keep cache contents."""
        self.hits = 0
        self.misses = 0
        self.compulsory_misses = 0
        self.conflict_misses.clear()
        self.mo_hits.clear()
        self.mo_misses.clear()
        self.mo_compulsory.clear()

    def attach_oracle(self, factory) -> None:
        """Bind a next-use oracle for line-aware policies (OPT).

        Args:
            factory: zero-arg callable returning a fresh
                :class:`~repro.memory.replacement.OptOracle`-compatible
                oracle.  A factory (not an instance) because oracles
                are consumed as the stream replays: :meth:`flush`
                rebuilds the sets and needs a pristine oracle to match.

        The oracle is shared across all sets — every probe touches
        exactly one set, so the per-set policies advance it exactly
        once per probe, in stream order.
        """
        self._oracle_factory = factory
        self._install_oracle()

    def _install_oracle(self) -> None:
        oracle = self._oracle_factory()
        for cache_set in self._sets:
            attach = getattr(cache_set.policy, "attach", None)
            if attach is not None:
                attach(oracle)

    def flush(self) -> None:
        """Invalidate all lines and forget eviction history."""
        config = self._config
        self._sets = [
            _CacheSet(config.associativity, config.policy)
            for _ in range(config.num_sets)
        ]
        self._evicted_by.clear()
        self._seen_lines.clear()
        if self._oracle_factory is not None:
            self._install_oracle()
