"""Cache replacement policies.

Each cache set owns one policy instance tracking the order of its ways.
The paper's conflict-graph definition is policy-agnostic ("using the
cache replacement policy"); LRU is the default.  FIFO and seeded random
are provided for sensitivity studies, and the adaptive suite — LFU, 2Q
and ARC — plus the offline-optimal OPT (Belady) open the policy axis of
the design space.  OPT is driven by a precomputed next-use oracle (see
:class:`OptOracle`) and serves as the provable miss-count lower bound
the online policies are reported against.

Policies that need to see *line identities* (not just way indices) set
:attr:`ReplacementPolicy.line_aware` and receive the ``note_*`` hooks
from :class:`repro.memory.cache.Cache`; the way-index-only policies pay
nothing for them.  See ``docs/POLICIES.md`` for per-policy semantics,
``state()`` shapes and audit caveats.
"""

from __future__ import annotations

import abc
from collections import deque
from typing import Iterable

from repro.errors import ConfigurationError, UnknownPolicyError
from repro.utils.rng import DeterministicRng

#: Sentinel next-use distance for a line that is never fetched again.
NEVER = -1


class ReplacementPolicy(abc.ABC):
    """Victim selection and usage tracking for one cache set."""

    #: Policies that track line identities set this to ``True``; the
    #: cache then calls the ``note_*`` hooks.  Way-index-only policies
    #: (LRU, FIFO, random, LFU, 2Q) leave it ``False`` so the probe hot
    #: path stays a single attribute check.
    line_aware = False

    def __init__(self, num_ways: int) -> None:
        if num_ways < 1:
            raise ConfigurationError(f"need at least one way, got {num_ways}")
        self.num_ways = num_ways

    @abc.abstractmethod
    def on_hit(self, way: int) -> None:
        """Record a hit in *way*."""

    @abc.abstractmethod
    def on_fill(self, way: int) -> None:
        """Record that *way* was (re)filled."""

    @abc.abstractmethod
    def victim(self) -> int:
        """Way to evict next (called only when the set is full)."""

    def state(self) -> tuple[int, ...]:
        """Snapshot of the policy's bookkeeping for event auditing.

        The shape is policy-defined (documented per policy in
        ``docs/POLICIES.md``): the classic age-ordered policies return
        way indices oldest (next victim) first, richer policies encode
        their lists/counters, and stateless policies return ``()``.
        """
        return ()

    # -- line-aware hooks (no-ops unless ``line_aware``) -------------------
    #
    # The cache only calls these when ``line_aware`` is set, so the
    # default implementations exist purely as interface documentation.

    def note_access(self, line_id: int) -> None:
        """Observe a probe for *line_id* (hit or miss), in stream order."""

    def note_miss(self, line_id: int) -> None:
        """Observe a miss for *line_id*, before victim selection."""

    def note_evict(self, line_id: int) -> None:
        """Observe that resident *line_id* was just evicted."""

    def note_fill(self, way: int, line_id: int) -> None:
        """Observe that *line_id* was just filled into *way*."""


class LruPolicy(ReplacementPolicy):
    """Least-recently-used replacement."""

    def __init__(self, num_ways: int) -> None:
        super().__init__(num_ways)
        # _order[0] is least recently used, _order[-1] most recent.
        self._order = list(range(num_ways))

    def on_hit(self, way: int) -> None:
        self._order.remove(way)
        self._order.append(way)

    def on_fill(self, way: int) -> None:
        self._order.remove(way)
        self._order.append(way)

    def victim(self) -> int:
        return self._order[0]

    def state(self) -> tuple[int, ...]:
        return tuple(self._order)


class FifoPolicy(ReplacementPolicy):
    """First-in-first-out replacement (hits do not refresh age)."""

    def __init__(self, num_ways: int) -> None:
        super().__init__(num_ways)
        self._order = list(range(num_ways))

    def on_hit(self, way: int) -> None:
        pass

    def on_fill(self, way: int) -> None:
        self._order.remove(way)
        self._order.append(way)

    def victim(self) -> int:
        return self._order[0]

    def state(self) -> tuple[int, ...]:
        return tuple(self._order)


class RandomPolicy(ReplacementPolicy):
    """Seeded random replacement."""

    def __init__(self, num_ways: int, rng: DeterministicRng | None = None
                 ) -> None:
        super().__init__(num_ways)
        self._rng = rng if rng is not None else DeterministicRng(0)

    def on_hit(self, way: int) -> None:
        pass

    def on_fill(self, way: int) -> None:
        pass

    def victim(self) -> int:
        return self._rng.uniform_int(0, self.num_ways - 1)


class LfuPolicy(ReplacementPolicy):
    """Least-frequently-used replacement with LRU tie-breaking.

    Each way carries a reference count (reset to 1 on fill, incremented
    on hit); the victim is the way with the smallest count, and among
    equal counts the least recently touched way loses.  The recency
    order refreshes on both hits and fills, so a tie between two
    cold ways resolves against the one untouched longest.
    """

    def __init__(self, num_ways: int) -> None:
        super().__init__(num_ways)
        self._counts = [0] * num_ways
        self._order = list(range(num_ways))  # LRU first, like LruPolicy.

    def on_hit(self, way: int) -> None:
        self._counts[way] += 1
        self._order.remove(way)
        self._order.append(way)

    def on_fill(self, way: int) -> None:
        self._counts[way] = 1
        self._order.remove(way)
        self._order.append(way)

    def victim(self) -> int:
        best = self._order[0]
        for way in self._order[1:]:
            if self._counts[way] < self._counts[best]:
                best = way
        return best

    def state(self) -> tuple[int, ...]:
        """Recency-ordered ``(way, count)`` pairs, flattened, LRU first."""
        flat: list[int] = []
        for way in self._order:
            flat += (way, self._counts[way])
        return tuple(flat)


class TwoQPolicy(ReplacementPolicy):
    """Simplified 2Q replacement (Johnson & Shasha) within one set.

    Ways seen exactly once live in the FIFO probation queue A1; a hit
    while in A1 promotes the way into the LRU main queue Am.  Victims
    come from A1 while it exceeds its target share ``Kin`` (a quarter
    of the ways, at least one) or whenever Am is empty; otherwise the
    Am LRU way loses.  This is the no-ghost ("2Q simplified") variant:
    with only ``num_ways`` slots per set there is no room for a
    meaningful A1out history, so demoted ways restart in A1.
    """

    def __init__(self, num_ways: int) -> None:
        super().__init__(num_ways)
        self._a1: list[int] = []  # FIFO, oldest first.
        self._am: list[int] = []  # LRU,  oldest first.
        self._kin = max(1, num_ways // 4)

    def on_hit(self, way: int) -> None:
        if way in self._a1:
            self._a1.remove(way)
            self._am.append(way)
        else:
            self._am.remove(way)
            self._am.append(way)

    def on_fill(self, way: int) -> None:
        if way in self._a1:
            self._a1.remove(way)
        elif way in self._am:
            self._am.remove(way)
        self._a1.append(way)

    def victim(self) -> int:
        if self._a1 and (len(self._a1) > self._kin or not self._am):
            return self._a1[0]
        if self._am:
            return self._am[0]
        return self._a1[0]

    def state(self) -> tuple[int, ...]:
        """``(len(A1), *A1, *Am)`` — both queues oldest first."""
        return (len(self._a1), *self._a1, *self._am)


class ArcPolicy(ReplacementPolicy):
    """Adaptive replacement cache (Megiddo & Modha) for one set.

    Resident ways split into T1 (seen once recently) and T2 (seen at
    least twice); evicted line ids are remembered in the ghost lists B1
    and B2, whose hits steer the adaptation target ``p`` (the desired
    size of T1).  ARC needs to see line identities to maintain its
    ghosts, so it is :attr:`line_aware`: the cache feeds it misses,
    evictions and fills via the ``note_*`` hooks.

    Owner-attribution caveat: the ghost lists influence *which* way is
    victimised but the conflict-graph attribution (``m_ij``) still
    charges the evictor that triggered the miss, exactly as for the
    other policies — the audit replay re-derives it bit-for-bit.
    """

    line_aware = True

    def __init__(self, num_ways: int) -> None:
        super().__init__(num_ways)
        self._t1: list[int] = []  # ways, LRU first
        self._t2: list[int] = []  # ways, LRU first
        self._b1: deque[int] = deque()  # ghost line ids, LRU first
        self._b2: deque[int] = deque()  # ghost line ids, LRU first
        self._p = 0  # adaptation target for len(T1)
        self._lines: dict[int, int] = {}  # way -> resident line id
        self._insert_target = "t1"
        self._ghost_target = "b1"
        self._was_b2_hit = False

    def on_hit(self, way: int) -> None:
        # Cases I: any resident hit moves the way to T2's MRU end.
        if way in self._t1:
            self._t1.remove(way)
        else:
            self._t2.remove(way)
        self._t2.append(way)

    def on_fill(self, way: int) -> None:
        pass  # placement happens in note_fill, which knows the line id.

    def note_miss(self, line_id: int) -> None:
        c = self.num_ways
        self._was_b2_hit = False
        if line_id in self._b1:
            # Case II: ghost hit in B1 — grow p, promote into T2.
            delta = max(1, len(self._b2) // max(1, len(self._b1)))
            self._p = min(c, self._p + delta)
            self._b1.remove(line_id)
            self._insert_target = "t2"
        elif line_id in self._b2:
            # Case III: ghost hit in B2 — shrink p, promote into T2.
            delta = max(1, len(self._b1) // max(1, len(self._b2)))
            self._p = max(0, self._p - delta)
            self._b2.remove(line_id)
            self._insert_target = "t2"
            self._was_b2_hit = True
        else:
            # Case IV: brand-new line — trim the directory to 2c.
            if len(self._t1) + len(self._b1) >= c and self._b1:
                self._b1.popleft()
            elif (len(self._t1) + len(self._t2) + len(self._b1)
                    + len(self._b2) >= 2 * c and self._b2):
                self._b2.popleft()
            self._insert_target = "t1"

    def victim(self) -> int:
        # REPLACE(p): prefer T1's LRU way when T1 is over target (or
        # exactly on target and the miss was a B2 ghost hit).
        if self._t1 and (len(self._t1) > self._p
                         or (self._was_b2_hit
                             and len(self._t1) == self._p)):
            way = self._t1.pop(0)
            self._ghost_target = "b1"
        elif self._t2:
            way = self._t2.pop(0)
            self._ghost_target = "b2"
        else:
            way = self._t1.pop(0)
            self._ghost_target = "b1"
        return way

    def note_evict(self, line_id: int) -> None:
        ghost = self._b1 if self._ghost_target == "b1" else self._b2
        ghost.append(line_id)
        while len(ghost) > self.num_ways:
            ghost.popleft()

    def note_fill(self, way: int, line_id: int) -> None:
        # Empty-way fills never pass through victim(), so the way may
        # still be unlisted; victimised ways were already popped there.
        if way in self._t1:
            self._t1.remove(way)
        elif way in self._t2:
            self._t2.remove(way)
        target = self._t1 if self._insert_target == "t1" else self._t2
        target.append(way)
        self._lines[way] = line_id

    def state(self) -> tuple[int, ...]:
        """``(p, len(T1), *T1, *T2)`` — way lists LRU first."""
        return (self._p, len(self._t1), *self._t1, *self._t2)


class OptOracle:
    """Next-use index for Belady's OPT, built from a probe line stream.

    Feed it the full sequence of cache-line ids the cache will be
    probed with (the ``line`` column of a compiled
    :class:`~repro.memory.kernel.stream.ProbeStream`, which is
    positionally identical to the reference interpreter's
    ``access_line`` calls).  Each probe consumes one occurrence via
    :meth:`advance`, after which :meth:`next_use` answers "when is this
    line needed again?" strictly in the future.
    """

    def __init__(self, lines: Iterable[int]) -> None:
        occurrences: dict[int, deque[int]] = {}
        count = 0
        for position, line_id in enumerate(lines):
            occurrences.setdefault(line_id, deque()).append(position)
            count += 1
        self._occurrences = occurrences
        self.total_probes = count

    def advance(self, line_id: int) -> None:
        """Consume the current occurrence of *line_id* (probe start)."""
        pending = self._occurrences.get(line_id)
        if pending:
            pending.popleft()

    def next_use(self, line_id: int) -> int:
        """Next future probe position for *line_id*, or :data:`NEVER`."""
        pending = self._occurrences.get(line_id)
        if pending:
            return pending[0]
        return NEVER


class OptPolicy(ReplacementPolicy):
    """Belady's offline-optimal replacement (MIN).

    Evicts the resident line whose next use lies farthest in the
    future (preferring lines never fetched again, then the lowest way
    index among ties).  Requires an :class:`OptOracle` attached via
    :meth:`Cache.attach_oracle <repro.memory.cache.Cache.attach_oracle>`
    before the first eviction — the simulator precomputes it from the
    compiled :class:`~repro.memory.kernel.stream.FetchStream`, which is
    why OPT is only available for the L1 of oracle-compatible runs (no
    loop cache, no overlay phases, no L2 placement).  OPT's miss count
    is the provable lower bound every online policy is reported
    against in ``repro dse --policies``.
    """

    line_aware = True

    def __init__(self, num_ways: int) -> None:
        super().__init__(num_ways)
        self._oracle: OptOracle | None = None
        self._lines: dict[int, int] = {}  # way -> resident line id

    def attach(self, oracle: OptOracle) -> None:
        """Bind the shared next-use oracle (one per cache)."""
        self._oracle = oracle

    def on_hit(self, way: int) -> None:
        pass

    def on_fill(self, way: int) -> None:
        pass

    def note_access(self, line_id: int) -> None:
        if self._oracle is None:
            raise ConfigurationError(
                "OptPolicy needs a next-use oracle; attach one with "
                "Cache.attach_oracle() (the hierarchy simulator does "
                "this automatically for oracle-compatible runs)"
            )
        self._oracle.advance(line_id)

    def note_fill(self, way: int, line_id: int) -> None:
        self._lines[way] = line_id

    def victim(self) -> int:
        oracle = self._oracle
        assert oracle is not None  # note_access raised already if not
        best_way = 0
        best_use = oracle.next_use(self._lines[0])
        if best_use == NEVER:
            return best_way
        for way in range(1, self.num_ways):
            use = oracle.next_use(self._lines[way])
            if use == NEVER:
                return way
            if use > best_use:
                best_way, best_use = way, use
        return best_way

    def state(self) -> tuple[int, ...]:
        """Per-way next-use probe positions (:data:`NEVER` = no reuse)."""
        if self._oracle is None:
            return ()
        return tuple(
            self._oracle.next_use(self._lines[way])
            if way in self._lines else NEVER
            for way in range(self.num_ways)
        )


#: The one policy registry: ``make_policy``, the CLI help text, the DSE
#: axis and the docs all source their name lists from here.
POLICIES: dict[str, type[ReplacementPolicy]] = {
    "lru": LruPolicy,
    "fifo": FifoPolicy,
    "random": RandomPolicy,
    "lfu": LfuPolicy,
    "2q": TwoQPolicy,
    "arc": ArcPolicy,
    "opt": OptPolicy,
}

# Backwards-compatible alias (pre-policy-suite name).
_POLICIES = POLICIES


def available_policies() -> tuple[str, ...]:
    """All registered policy names, sorted."""
    return tuple(sorted(POLICIES))


def make_policy(name: str, num_ways: int) -> ReplacementPolicy:
    """Create a policy by registry name (see :func:`available_policies`).

    Raises:
        UnknownPolicyError: *name* is not in :data:`POLICIES`.
    """
    try:
        factory = POLICIES[name.lower()]
    except KeyError:
        raise UnknownPolicyError(name, available_policies()) from None
    return factory(num_ways)
