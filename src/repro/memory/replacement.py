"""Cache replacement policies.

Each cache set owns one policy instance tracking the order of its ways.
The paper's conflict-graph definition is policy-agnostic ("using the
cache replacement policy"); LRU is the default, FIFO and seeded random
are provided for sensitivity studies.
"""

from __future__ import annotations

import abc

from repro.errors import ConfigurationError
from repro.utils.rng import DeterministicRng


class ReplacementPolicy(abc.ABC):
    """Victim selection and usage tracking for one cache set."""

    def __init__(self, num_ways: int) -> None:
        if num_ways < 1:
            raise ConfigurationError(f"need at least one way, got {num_ways}")
        self.num_ways = num_ways

    @abc.abstractmethod
    def on_hit(self, way: int) -> None:
        """Record a hit in *way*."""

    @abc.abstractmethod
    def on_fill(self, way: int) -> None:
        """Record that *way* was (re)filled."""

    @abc.abstractmethod
    def victim(self) -> int:
        """Way to evict next (called only when the set is full)."""

    def state(self) -> tuple[int, ...]:
        """Snapshot of the policy's way ordering for event auditing.

        Age-ordered way indices, oldest (next victim) first; stateless
        policies return an empty tuple.
        """
        return ()


class LruPolicy(ReplacementPolicy):
    """Least-recently-used replacement."""

    def __init__(self, num_ways: int) -> None:
        super().__init__(num_ways)
        # _order[0] is least recently used, _order[-1] most recent.
        self._order = list(range(num_ways))

    def on_hit(self, way: int) -> None:
        self._order.remove(way)
        self._order.append(way)

    def on_fill(self, way: int) -> None:
        self._order.remove(way)
        self._order.append(way)

    def victim(self) -> int:
        return self._order[0]

    def state(self) -> tuple[int, ...]:
        return tuple(self._order)


class FifoPolicy(ReplacementPolicy):
    """First-in-first-out replacement (hits do not refresh age)."""

    def __init__(self, num_ways: int) -> None:
        super().__init__(num_ways)
        self._order = list(range(num_ways))

    def on_hit(self, way: int) -> None:
        pass

    def on_fill(self, way: int) -> None:
        self._order.remove(way)
        self._order.append(way)

    def victim(self) -> int:
        return self._order[0]

    def state(self) -> tuple[int, ...]:
        return tuple(self._order)


class RandomPolicy(ReplacementPolicy):
    """Seeded random replacement."""

    def __init__(self, num_ways: int, rng: DeterministicRng | None = None
                 ) -> None:
        super().__init__(num_ways)
        self._rng = rng if rng is not None else DeterministicRng(0)

    def on_hit(self, way: int) -> None:
        pass

    def on_fill(self, way: int) -> None:
        pass

    def victim(self) -> int:
        return self._rng.uniform_int(0, self.num_ways - 1)


_POLICIES = {
    "lru": LruPolicy,
    "fifo": FifoPolicy,
    "random": RandomPolicy,
}


def make_policy(name: str, num_ways: int) -> ReplacementPolicy:
    """Create a policy by name (``lru``, ``fifo`` or ``random``)."""
    try:
        factory = _POLICIES[name.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown replacement policy {name!r}; "
            f"choose from {sorted(_POLICIES)}"
        ) from None
    return factory(num_ways)
