"""The instruction-memory hierarchy simulator.

Replays an executed basic-block sequence (from
:func:`repro.program.executor.execute_program`) through the fetch plans
of a :class:`~repro.traces.layout.LinkedImage`, dispatching every fetch
to the scratchpad, the preloaded loop cache, or the I-cache + main
memory, and producing a :class:`~repro.memory.stats.SimulationReport`.

Call/return precision: when a trace-exit jump sits *after* a call
instruction, the core fetches it when the callee returns (the return
address points at the jump).  The simulator therefore keeps a stack of
pending call tails that is pushed on calls and popped on returns, so the
fetch stream is cycle-exact with respect to block ordering.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.errors import ConfigurationError, InjectedFault, \
    SimulationError
from repro.memory.cache import Cache, CacheConfig
from repro.memory.kernel.stream import FetchStream, compile_stream
from repro.memory.kernel.vector import KernelUnsupported, \
    simulate_stream, unsupported_reason
from repro.memory.loopcache import LoopCache, LoopCacheConfig, LoopRegion
from repro.memory.mainmem import MainMemory
from repro.memory.replacement import OptOracle
from repro.memory.scratchpad import Scratchpad
from repro.memory.stats import SimulationReport
from repro.obs import metrics
from repro.obs.events import active_recorder
from repro.obs.trace import span
from repro.resilience.faults import maybe_inject
from repro.traces.layout import BlockFetchPlan, FetchSegment, LinkedImage

#: Valid values of the simulation ``backend`` knob.
BACKENDS = ("reference", "vector", "auto")

#: Environment override consulted when no backend is passed explicitly.
BACKEND_ENV_VAR = "CASA_BACKEND"


def resolve_backend(backend: str | None) -> str:
    """Normalize a backend choice.

    ``None`` falls back to the :data:`BACKEND_ENV_VAR` environment
    variable and finally to ``"auto"`` (use the vector kernel whenever
    it can replay the run exactly, the reference simulator otherwise).
    """
    if backend is None:
        backend = os.environ.get(BACKEND_ENV_VAR) or "auto"
    if backend not in BACKENDS:
        raise ConfigurationError(
            f"unknown simulation backend {backend!r} "
            f"(choose from {', '.join(BACKENDS)})"
        )
    return backend


@dataclass(frozen=True)
class HierarchyConfig:
    """What sits next to the I-cache (figure 1 of the paper).

    Exactly one of ``spm_size``/``loop_cache`` is normally used; a
    plain cache-only hierarchy has neither.

    Attributes:
        cache: the L1 I-cache configuration, or ``None`` for a
            cache-less (scratchpad + main memory) hierarchy.
        spm_size: scratchpad capacity in bytes (0 = no scratchpad).
        loop_cache: preloaded-loop-cache configuration, or ``None``.
    """

    cache: CacheConfig | None = CacheConfig()
    spm_size: int = 0
    loop_cache: LoopCacheConfig | None = None
    #: optional unified L2 I-cache between the L1 and main memory
    #: (section 4: the allocation "need not do anything" about it).
    l2_cache: CacheConfig | None = None

    def __post_init__(self) -> None:
        if self.spm_size and self.loop_cache is not None:
            raise ConfigurationError(
                "a hierarchy has either a scratchpad or a loop cache, "
                "not both (figure 1)"
            )
        if self.spm_size < 0:
            raise ConfigurationError(f"negative spm size: {self.spm_size}")
        if (self.cache is not None and self.cache.policy == "opt"
                and self.loop_cache is not None):
            # The OPT oracle is precomputed from the compiled fetch
            # stream; a loop cache filters probes word-by-word, so the
            # oracle would no longer match the L1's probe order.
            raise ConfigurationError(
                "the 'opt' policy cannot be combined with a loop cache"
            )
        if self.l2_cache is not None:
            if self.cache is None:
                raise ConfigurationError(
                    "an L2 cache requires an L1 cache"
                )
            if self.l2_cache.size < self.cache.size:
                raise ConfigurationError(
                    "the L2 must be at least as large as the L1"
                )
            if self.l2_cache.line_size != self.cache.line_size:
                raise ConfigurationError(
                    "L1 and L2 line sizes must match in this model"
                )
            if self.l2_cache.policy == "opt":
                # The L2's probe stream is the L1's miss stream, which
                # depends on the L1 replay — there is no precomputable
                # next-use oracle for it.
                raise ConfigurationError(
                    "the 'opt' policy is only available on the L1 "
                    "(the L2 probe stream is not precomputable)"
                )


class InstructionMemorySimulator:
    """Simulates one hierarchy for one linked image."""

    def __init__(
        self,
        image: LinkedImage,
        config: HierarchyConfig,
        spm_base: int | None = None,
        loop_regions: list[LoopRegion] | None = None,
    ) -> None:
        self._image = image
        self._config = config
        self.cache = Cache(config.cache) if config.cache else None
        self.l2_cache = (
            Cache(config.l2_cache, label="L2") if config.l2_cache else None
        )
        self.main_memory = MainMemory()
        self.scratchpad = (
            Scratchpad(config.spm_size, spm_base if spm_base is not None
                       else 0x0040_0000)
            if config.spm_size
            else None
        )
        self.loop_cache = (
            LoopCache(config.loop_cache, loop_regions or [])
            if config.loop_cache is not None
            else None
        )
        if loop_regions and self.loop_cache is None:
            raise ConfigurationError(
                "loop regions given but no loop cache configured"
            )

    # ------------------------------------------------------------------

    def run(self, block_sequence: list[str],
            block_phases: dict[str, int] | None = None
            ) -> SimulationReport:
        """Replay *block_sequence* and return the statistics.

        Args:
            block_sequence: executed block names.
            block_phases: optional map from (top-level) block names to
                execution-phase ids; when given, statistics are also
                binned per phase (used by the overlay extension).
        """
        return self._replay(block_sequence, block_phases, phase_plans=None,
                            phase_residents=None, resident_sizes=None)

    def run_overlay(
        self,
        block_sequence: list[str],
        block_phases: dict[str, int],
        phase_plans: dict[int, dict[str, BlockFetchPlan]],
        phase_residents: dict[int, frozenset[str]],
        resident_sizes: dict[str, int],
        charge_initial_copies: bool = False,
    ) -> SimulationReport:
        """Replay with per-phase scratchpad contents (overlay extension).

        At each transition into phase ``p``, every object resident in
        ``p`` but not in the previous phase is copied from main memory
        to the scratchpad; the copied words are counted in
        ``report.overlay_copy_words`` and as main-memory reads.

        Args:
            block_sequence: executed block names.
            block_phases: top-level block name -> phase id.
            phase_plans: per-phase fetch plans (from per-phase
                :class:`~repro.traces.layout.LinkedImage`\\ s).
            phase_residents: per-phase scratchpad-resident object sets.
            resident_sizes: unpadded byte size of every object that is
                resident in any phase.
            charge_initial_copies: also charge the phase-0 fill (off by
                default: the boot-time preload is free for the static
                allocators too).
        """
        return self._replay(
            block_sequence, block_phases, phase_plans, phase_residents,
            resident_sizes, charge_initial_copies=charge_initial_copies,
        )

    def _replay(
        self,
        block_sequence: list[str],
        block_phases: dict[str, int] | None,
        phase_plans: dict[int, dict[str, BlockFetchPlan]] | None,
        phase_residents: dict[int, frozenset[str]] | None,
        resident_sizes: dict[str, int] | None,
        charge_initial_copies: bool = False,
    ) -> SimulationReport:
        if self.cache is not None and \
                self.cache.config.policy == "opt":
            if phase_plans is not None:
                raise ConfigurationError(
                    "the 'opt' policy cannot drive overlay runs: "
                    "per-phase relinking changes the fetch plans, so "
                    "the next-use oracle is not precomputable"
                )
            self._install_opt_oracle(block_sequence)
        report = SimulationReport(num_block_executions=len(block_sequence))
        plans = self._image.all_plans()
        pending_tails: list[FetchSegment | None] = []
        track_phases = block_phases is not None
        phase = 0
        started = False
        if phase_plans is not None:
            plans = phase_plans[phase]

        last_index = len(block_sequence) - 1
        for index, block_name in enumerate(block_sequence):
            if track_phases:
                new_phase = block_phases.get(block_name, phase)
                if new_phase != phase or not started:
                    if phase_plans is not None:
                        self._overlay_transition(
                            report,
                            old=None if not started else
                            phase_residents[phase],
                            new=phase_residents[new_phase],
                            sizes=resident_sizes,
                            charge_initial=charge_initial_copies,
                        )
                        plans = phase_plans[new_phase]
                    phase = new_phase
                    if self.cache is not None:
                        self.cache.phase = phase
                started = True
            plan = plans[block_name]
            current_phase = phase if track_phases else None
            for segment in plan.segments:
                self._fetch_segment(segment, report, current_phase)
            if plan.ends_with_call:
                pending_tails.append(plan.tail_jump)
            elif plan.tail_jump is not None:
                if index < last_index and \
                        block_sequence[index + 1] == plan.fallthrough:
                    self._fetch_segment(plan.tail_jump, report,
                                        current_phase)
            if plan.ends_with_return and pending_tails:
                tail = pending_tails.pop()
                if tail is not None:
                    self._fetch_segment(tail, report, current_phase)

        if self.loop_cache is not None:
            report.lc_controller_checks = self.loop_cache.controller_checks
        report.main_memory_words = self.main_memory.word_reads
        if self.cache is not None:
            report.conflict_misses = self.cache.conflict_misses.copy()
            report.phase_conflicts = self.cache.phase_conflicts.copy()
        if self.l2_cache is not None:
            report.l2_hits = self.l2_cache.hits
            report.l2_misses = self.l2_cache.misses
        report.assert_identities()
        return report

    def _install_opt_oracle(self, block_sequence: list[str]) -> None:
        """Precompute Belady's next-use index for an OPT-policy L1.

        The compiled :class:`~repro.memory.kernel.stream.ProbeStream`
        for the L1's line size is positionally identical to the
        ``access_line`` calls this replay is about to issue (the
        property ``repro verify-kernel`` enforces), so its ``line``
        column is exactly the future the oracle needs.
        """
        assert self.cache is not None
        line_size = self.cache.config.line_size
        stream = compile_stream(self._image, block_sequence)
        lines = stream.probes(line_size).line.tolist()
        self.cache.attach_oracle(lambda: OptOracle(lines))

    def _overlay_transition(self, report: SimulationReport,
                            old: frozenset[str] | None,
                            new: frozenset[str],
                            sizes: dict[str, int] | None,
                            charge_initial: bool) -> None:
        """Account the copy-in traffic of one phase transition."""
        assert sizes is not None
        if old is None and not charge_initial:
            return
        incoming = new - (old or frozenset())
        for name in incoming:
            words = sizes[name] // 4
            report.overlay_copy_words += words
            self.main_memory.read_words(words)

    # ------------------------------------------------------------------

    def _fetch_segment(self, segment: FetchSegment,
                       report: SimulationReport,
                       phase: int | None = None) -> None:
        stats = report.stats_for(segment.mo_name)
        sinks = [stats]
        if phase is not None:
            sinks.append(report.phase_stats_for(phase, segment.mo_name))
        for sink in sinks:
            sink.fetches += segment.num_words

        if segment.on_spm:
            if self.scratchpad is None:
                raise SimulationError(
                    f"segment of {segment.mo_name!r} mapped to a "
                    "scratchpad that does not exist"
                )
            self.scratchpad.access_words(segment.address, segment.num_words)
            for sink in sinks:
                sink.spm_accesses += segment.num_words
            return

        if self.loop_cache is not None:
            served = self.loop_cache.access_words(
                segment.address, segment.num_words
            )
            for sink in sinks:
                sink.lc_accesses += served
            if served == segment.num_words:
                return
            if served != 0:
                # Mixed segment: replay the cache-path words one by one.
                self._fetch_mixed_segment(segment, report, sinks)
                return

        self._fetch_cached(segment.address, segment.num_words,
                           segment.mo_name, sinks)

    def _fetch_mixed_segment(self, segment: FetchSegment,
                             report: SimulationReport, sinks) -> None:
        """Word-exact path for segments straddling a loop-cache region.

        ``access_words`` already counted the loop-cache words, so only
        the words *outside* the regions go through the cache here.
        """
        assert self.loop_cache is not None
        for offset in range(segment.num_words):
            address = segment.address + 4 * offset
            in_region = any(
                region.covers(address)
                for region in self.loop_cache.regions
            )
            if not in_region:
                self._fetch_cached(address, 1, segment.mo_name, sinks)

    def _fetch_cached(self, address: int, num_words: int,
                      mo_name: str, sinks) -> None:
        """Fetch a sequential word run through the I-cache."""
        if self.cache is None:
            # Cache-less hierarchy: every word goes off-chip.  We book
            # the words as "misses" so the accounting identity holds
            # and the energy model charges main-memory energy.
            self.main_memory.read_words(num_words)
            for sink in sinks:
                sink.cache_misses += num_words
            return
        line_size = self.cache.config.line_size
        position = address
        remaining = num_words
        while remaining > 0:
            line_id = position // line_size
            line_end = (line_id + 1) * line_size
            words_in_line = min(remaining, (line_end - position) // 4)
            compulsory_before = self.cache.compulsory_misses
            hit = self.cache.access_line(line_id, mo_name)
            if hit:
                for sink in sinks:
                    sink.cache_hits += words_in_line
            else:
                was_compulsory = (
                    self.cache.compulsory_misses > compulsory_before
                )
                for sink in sinks:
                    sink.cache_misses += 1
                    sink.cache_hits += words_in_line - 1
                    if was_compulsory:
                        sink.compulsory_misses += 1
                if self.l2_cache is not None:
                    if not self.l2_cache.access_line(line_id, mo_name):
                        self.main_memory.read_line(
                            self.cache.config.words_per_line
                        )
                else:
                    self.main_memory.read_line(
                        self.cache.config.words_per_line
                    )
            position += words_in_line * 4
            remaining -= words_in_line


def _choose_backend(
    backend: str,
    config: HierarchyConfig,
    loop_regions: list[LoopRegion] | None,
    block_phases: dict[str, int] | None,
) -> str:
    """Pick the concrete simulator for one run.

    ``auto`` silently falls back to the reference simulator when the
    kernel cannot replay the run exactly; ``vector`` raises on
    structurally unsupported configurations but degrades gracefully
    when an event recorder is active (event streams require per-probe
    interpretation).  Fallbacks are counted in the
    ``sim.kernel.fallbacks`` metric.
    """
    if backend == "reference":
        return "reference"
    reason = unsupported_reason(
        config, block_phases=block_phases, loop_regions=loop_regions
    )
    if reason is None and active_recorder() is not None:
        reason = "event recording requires the reference simulator"
        if backend == "vector":
            metrics.inc("sim.kernel.fallbacks")
            return "reference"
    if reason is None:
        return "vector"
    if backend == "vector":
        raise ConfigurationError(f"backend 'vector': {reason}")
    metrics.inc("sim.kernel.fallbacks")
    return "reference"


def simulate(
    image: LinkedImage,
    config: HierarchyConfig,
    block_sequence: list[str],
    spm_base: int | None = None,
    loop_regions: list[LoopRegion] | None = None,
    block_phases: dict[str, int] | None = None,
    backend: str | None = None,
    stream: FetchStream | None = None,
) -> SimulationReport:
    """One-call convenience wrapper around the simulator.

    Dispatches between the reference interpreter and the vectorized
    kernel (:mod:`repro.memory.kernel`) according to *backend*
    (``reference`` | ``vector`` | ``auto``; ``None`` consults the
    ``CASA_BACKEND`` environment variable, then defaults to ``auto``).
    Both backends produce bit-identical reports; *stream* lets callers
    reuse a pre-compiled fetch stream (e.g. an engine artifact).

    Emits a ``sim.hierarchy`` span and, when metrics are enabled,
    accumulates the report's access totals into the ``sim.*`` counters
    (``sim.cache_hits``, ``sim.cache_misses``, ``sim.spm_accesses``...)
    — the numbers ``repro report`` turns into cache hit rates.  The
    per-fetch inner loop itself carries no instrumentation.
    """
    backend = resolve_backend(backend)
    chosen = _choose_backend(backend, config, loop_regions, block_phases)
    with span("sim.hierarchy", blocks=len(block_sequence),
              backend=chosen) as sim_span:
        report = None
        if chosen == "vector":
            # Degradation ladder: any kernel fault — injected via the
            # ``kernel.replay`` site or a genuine replay limitation
            # surfacing late — falls back to the reference
            # interpreter, which is bit-identical by construction.
            try:
                maybe_inject("kernel.replay",
                             blocks=len(block_sequence))
                if stream is None:
                    stream = compile_stream(
                        image, block_sequence, spm_base=spm_base
                    )
                report = simulate_stream(stream, config,
                                         spm_base=spm_base)
            except (InjectedFault, KernelUnsupported):
                metrics.inc("sim.kernel.fallbacks")
                metrics.inc("resilience.kernel_fallbacks")
                sim_span.add(fallback="reference")
                chosen = "reference"
        if report is None:
            simulator = InstructionMemorySimulator(
                image, config, spm_base=spm_base,
                loop_regions=loop_regions
            )
            report = simulator.run(block_sequence,
                                   block_phases=block_phases)
        sim_span.add(fetches=report.total_fetches,
                     cache_misses=report.cache_misses)
        metrics.inc("sim.runs")
        metrics.inc("sim.fetches", report.total_fetches)
        metrics.inc("sim.cache_accesses", report.cache_accesses)
        metrics.inc("sim.cache_hits", report.cache_hits)
        metrics.inc("sim.cache_misses", report.cache_misses)
        metrics.inc("sim.spm_accesses", report.spm_accesses)
        metrics.inc("sim.lc_accesses", report.lc_accesses)
        recorder = active_recorder()
        if recorder is not None:
            sim_span.add(events=recorder.total_events)
            metrics.set_gauge("events.total", float(recorder.total_events))
            for kind, count in recorder.counts.items():
                metrics.set_gauge(f"events.{kind}", float(count))
        return report
