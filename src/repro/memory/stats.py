"""Per-memory-object and aggregate simulation statistics.

All counters are *word-level* and satisfy the paper's accounting
identity (eq. 4): for every memory object,
``fetches == spm_accesses + lc_accesses + cache_hits + cache_misses``.
A word fetch that probes the cache and misses counts as one miss; the
remaining words of the fetched line count as hits.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.errors import SimulationError


@dataclass
class MemoryObjectStats:
    """Word-level fetch statistics of one memory object."""

    name: str
    fetches: int = 0
    spm_accesses: int = 0
    lc_accesses: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    compulsory_misses: int = 0

    def check_identity(self) -> bool:
        """Verify eq. 4: fetches decompose exactly into the four buckets."""
        return self.fetches == (
            self.spm_accesses + self.lc_accesses
            + self.cache_hits + self.cache_misses
        )

    def identity_breakdown(self) -> str:
        """The eq. 4 counters of this object, spelled out for errors."""
        served = (self.spm_accesses + self.lc_accesses
                  + self.cache_hits + self.cache_misses)
        return (
            f"{self.name!r}: fetches={self.fetches} != "
            f"spm={self.spm_accesses} + lc={self.lc_accesses} + "
            f"cache_hits={self.cache_hits} + "
            f"cache_misses={self.cache_misses} (= {served}, "
            f"off by {self.fetches - served:+d})"
        )


@dataclass
class SimulationReport:
    """Outcome of replaying a block sequence through a hierarchy.

    Attributes:
        mo_stats: per-memory-object statistics, keyed by object name.
        conflict_misses: ``(victim, evictor)`` conflict-miss counts
            (the conflict graph's edge weights ``m_ij``).
        lc_controller_checks: loop-cache controller comparisons (every
            fetch in a loop-cache hierarchy pays one).
        main_memory_words: words read from off-chip memory (line fills).
        num_block_executions: executed basic blocks.
    """

    mo_stats: dict[str, MemoryObjectStats] = field(default_factory=dict)
    conflict_misses: Counter = field(default_factory=Counter)
    lc_controller_checks: int = 0
    main_memory_words: int = 0
    num_block_executions: int = 0
    #: per-(phase, mo) statistics, filled only when the simulation was
    #: run with a phase map (overlay extension).
    phase_mo_stats: dict[tuple[int, str], MemoryObjectStats] = field(
        default_factory=dict
    )
    #: per-(phase, victim, evictor) conflict misses (overlay extension).
    phase_conflicts: Counter = field(default_factory=Counter)
    #: words copied into the scratchpad at phase transitions (overlay).
    overlay_copy_words: int = 0
    #: L2 probe outcomes (only with a two-level cache hierarchy).
    l2_hits: int = 0
    l2_misses: int = 0

    def stats_for(self, mo_name: str) -> MemoryObjectStats:
        """Statistics of one object (zero-filled if never fetched)."""
        if mo_name not in self.mo_stats:
            self.mo_stats[mo_name] = MemoryObjectStats(mo_name)
        return self.mo_stats[mo_name]

    def phase_stats_for(self, phase: int,
                        mo_name: str) -> MemoryObjectStats:
        """Per-phase statistics of one object (overlay extension)."""
        key = (phase, mo_name)
        if key not in self.phase_mo_stats:
            self.phase_mo_stats[key] = MemoryObjectStats(mo_name)
        return self.phase_mo_stats[key]

    @property
    def phases(self) -> list[int]:
        """Phase ids seen during a phase-tracked simulation."""
        return sorted({phase for phase, _ in self.phase_mo_stats})

    # -- aggregates -----------------------------------------------------

    @property
    def total_fetches(self) -> int:
        """Total instruction-word fetches."""
        return sum(s.fetches for s in self.mo_stats.values())

    @property
    def spm_accesses(self) -> int:
        """Total scratchpad word accesses."""
        return sum(s.spm_accesses for s in self.mo_stats.values())

    @property
    def lc_accesses(self) -> int:
        """Total loop-cache word accesses."""
        return sum(s.lc_accesses for s in self.mo_stats.values())

    @property
    def cache_accesses(self) -> int:
        """Total I-cache word accesses (hits + misses)."""
        return self.cache_hits + self.cache_misses

    @property
    def cache_hits(self) -> int:
        """Total I-cache word hits."""
        return sum(s.cache_hits for s in self.mo_stats.values())

    @property
    def cache_misses(self) -> int:
        """Total I-cache misses."""
        return sum(s.cache_misses for s in self.mo_stats.values())

    @property
    def compulsory_misses(self) -> int:
        """Total first-touch misses."""
        return sum(s.compulsory_misses for s in self.mo_stats.values())

    @property
    def conflict_miss_total(self) -> int:
        """Total misses attributed to a conflicting object."""
        return sum(self.conflict_misses.values())

    def check_identities(self) -> bool:
        """Verify eq. 4 for every memory object."""
        return all(s.check_identity() for s in self.mo_stats.values())

    def identity_violations(self) -> list[MemoryObjectStats]:
        """The objects whose counters violate eq. 4 (normally empty)."""
        return [s for s in self.mo_stats.values()
                if not s.check_identity()]

    def assert_identities(self) -> None:
        """Raise a descriptive error if any object violates eq. 4.

        The :class:`~repro.errors.SimulationError` names every
        offending object with its full counter breakdown, so a broken
        fetch path is diagnosable from the message alone.
        """
        violations = self.identity_violations()
        if violations:
            details = "; ".join(
                s.identity_breakdown() for s in violations
            )
            raise SimulationError(
                "fetch accounting identity (eq. 4) violated for "
                f"{len(violations)} memory object(s): {details}"
            )

    def summary(self) -> str:
        """One-paragraph human-readable summary."""
        return (
            f"fetches={self.total_fetches} spm={self.spm_accesses} "
            f"lc={self.lc_accesses} cache_hits={self.cache_hits} "
            f"cache_misses={self.cache_misses} "
            f"(compulsory={self.compulsory_misses}, "
            f"conflict={self.conflict_miss_total}) "
            f"mainmem_words={self.main_memory_words}"
        )
