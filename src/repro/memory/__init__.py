"""Instruction-memory hierarchy simulation.

Re-implementation of the in-house *memsim* tool the paper cites [8]: a
set-associative I-cache with per-line owner tracking (so every conflict
miss is attributed to the memory object that caused it), a scratchpad, a
preloaded loop cache with its controller, and main memory — driven by the
executed basic-block sequence through the fetch plans of a
:class:`~repro.traces.layout.LinkedImage`.
"""

from repro.memory.cache import Cache, CacheConfig
from repro.memory.hierarchy import (
    HierarchyConfig,
    InstructionMemorySimulator,
    simulate,
)
from repro.memory.loopcache import LoopCache, LoopCacheConfig, LoopRegion
from repro.memory.mainmem import MainMemory
from repro.memory.replacement import (
    POLICIES,
    ArcPolicy,
    FifoPolicy,
    LfuPolicy,
    LruPolicy,
    OptOracle,
    OptPolicy,
    RandomPolicy,
    ReplacementPolicy,
    TwoQPolicy,
    available_policies,
    make_policy,
)
from repro.memory.scratchpad import Scratchpad
from repro.memory.stats import MemoryObjectStats, SimulationReport

__all__ = [
    "Cache",
    "CacheConfig",
    "HierarchyConfig",
    "InstructionMemorySimulator",
    "simulate",
    "LoopCache",
    "LoopCacheConfig",
    "LoopRegion",
    "MainMemory",
    "POLICIES",
    "ArcPolicy",
    "FifoPolicy",
    "LfuPolicy",
    "LruPolicy",
    "OptOracle",
    "OptPolicy",
    "RandomPolicy",
    "ReplacementPolicy",
    "TwoQPolicy",
    "available_policies",
    "make_policy",
    "Scratchpad",
    "MemoryObjectStats",
    "SimulationReport",
]
