"""Off-chip main memory model.

Only energy/latency-relevant event counting is needed: the number of
words transferred to the core or to the cache on line fills.  (The
paper measured main-memory energy per access on an evaluation board;
we count events and multiply by a per-word energy from the model.)
"""

from __future__ import annotations


class MainMemory:
    """Counts word reads served by the off-chip memory."""

    def __init__(self) -> None:
        self.word_reads = 0
        self.line_fills = 0

    def read_line(self, words_per_line: int) -> None:
        """Serve one cache line fill of *words_per_line* words."""
        self.word_reads += words_per_line
        self.line_fills += 1

    def read_words(self, num_words: int) -> None:
        """Serve uncached word reads (cache-bypass fetches)."""
        self.word_reads += num_words

    def reset_statistics(self) -> None:
        """Clear all counters."""
        self.word_reads = 0
        self.line_fills = 0
