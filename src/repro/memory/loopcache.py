"""Preloaded loop cache (Ross / Gordon-Ross & Vahid style).

A preloaded loop cache (figure 1(b) of the paper) is an SRAM that is
statically loaded with a *small, fixed number* of code regions (loops or
functions).  A controller holds the start and end address of each region
and, **on every instruction fetch**, compares the program counter against
the region table to decide whether to read the loop cache or the L1
I-cache.  The controller comparison is the architectural overhead that
limits the number of preloadable regions (typically 2-6; the paper's
experiments use 4).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AllocationError, ConfigurationError


@dataclass(frozen=True)
class LoopRegion:
    """One preloaded code region.

    Attributes:
        name: identifier of the region (loop header or function name).
        start: first byte address covered (inclusive).
        size: region size in bytes.
    """

    name: str
    start: int
    size: int

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ConfigurationError(
                f"region {self.name!r} has non-positive size {self.size}"
            )
        if self.start < 0:
            raise ConfigurationError(
                f"region {self.name!r} has negative start {self.start:#x}"
            )

    @property
    def end(self) -> int:
        """One past the last covered address."""
        return self.start + self.size

    def covers(self, address: int) -> bool:
        """Whether *address* lies inside the region."""
        return self.start <= address < self.end


@dataclass(frozen=True)
class LoopCacheConfig:
    """Loop-cache parameters.

    Attributes:
        size: SRAM capacity in bytes.
        max_regions: controller table entries (the paper assumes 4).
    """

    size: int = 256
    max_regions: int = 4

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ConfigurationError(f"negative loop-cache size: {self.size}")
        if self.max_regions < 1:
            raise ConfigurationError(
                f"need at least one region slot, got {self.max_regions}"
            )


class LoopCache:
    """A preloaded loop cache plus its address-matching controller."""

    def __init__(self, config: LoopCacheConfig,
                 regions: list[LoopRegion] | None = None) -> None:
        self._config = config
        self._regions: list[LoopRegion] = []
        self.accesses = 0        # fetches served by the loop-cache SRAM
        self.controller_checks = 0  # every fetch pays the tag-table check
        if regions:
            for region in regions:
                self.preload(region)

    @property
    def config(self) -> LoopCacheConfig:
        """The loop cache's configuration."""
        return self._config

    @property
    def regions(self) -> list[LoopRegion]:
        """Currently preloaded regions."""
        return list(self._regions)

    @property
    def used_bytes(self) -> int:
        """SRAM bytes consumed by the preloaded regions."""
        return sum(region.size for region in self._regions)

    def preload(self, region: LoopRegion) -> None:
        """Add a region to the controller table and SRAM.

        Raises:
            AllocationError: if the table is full, the SRAM capacity is
                exceeded, or the region overlaps one already preloaded.
        """
        if len(self._regions) >= self._config.max_regions:
            raise AllocationError(
                f"loop cache holds at most {self._config.max_regions} "
                "regions"
            )
        if self.used_bytes + region.size > self._config.size:
            raise AllocationError(
                f"region {region.name!r} ({region.size} B) does not fit: "
                f"{self.used_bytes}/{self._config.size} B used"
            )
        for existing in self._regions:
            if region.start < existing.end and existing.start < region.end:
                raise AllocationError(
                    f"region {region.name!r} overlaps {existing.name!r}"
                )
        self._regions.append(region)

    def lookup(self, address: int) -> bool:
        """Controller check for one fetch; ``True`` if the loop cache
        serves it."""
        self.controller_checks += 1
        for region in self._regions:
            if region.covers(address):
                return True
        return False

    def access_words(self, address: int, num_words: int) -> int:
        """Fetch up to *num_words* sequential words starting at *address*.

        Every word pays a controller check; words inside a preloaded
        region are served by the loop cache.

        Returns:
            The number of words served by the loop cache (the rest must
            be fetched through the regular cache path by the caller).
        """
        served = 0
        for index in range(num_words):
            if self.lookup(address + 4 * index):
                served += 1
        self.accesses += served
        return served

    def reset_statistics(self) -> None:
        """Clear counters but keep the preloaded regions."""
        self.accesses = 0
        self.controller_checks = 0
