"""Scratchpad memory model.

A scratchpad is a plain on-chip SRAM mapped into the address space
(figure 1(a) of the paper).  It has no tags and no controller — every
access inside its address range succeeds, which is precisely why it is
the most energy-efficient option per byte.
"""

from __future__ import annotations

from repro.errors import ConfigurationError, SimulationError


class Scratchpad:
    """An on-chip scratchpad occupying ``[base, base + size)``."""

    def __init__(self, size: int, base: int) -> None:
        if size < 0:
            raise ConfigurationError(f"negative scratchpad size: {size}")
        if base < 0:
            raise ConfigurationError(f"negative base address: {base:#x}")
        self._size = size
        self._base = base
        self.accesses = 0

    @property
    def size(self) -> int:
        """Capacity in bytes."""
        return self._size

    @property
    def base(self) -> int:
        """Base address of the scratchpad region."""
        return self._base

    @property
    def end(self) -> int:
        """One past the last scratchpad address."""
        return self._base + self._size

    def covers(self, address: int) -> bool:
        """Whether *address* falls inside the scratchpad region."""
        return self._base <= address < self.end

    def access_words(self, address: int, num_words: int) -> None:
        """Fetch *num_words* consecutive words starting at *address*.

        Raises:
            SimulationError: if the range leaves the scratchpad.
        """
        last = address + num_words * 4
        if not (self.covers(address) and last <= self.end):
            raise SimulationError(
                f"fetch [{address:#x}, {last:#x}) outside scratchpad "
                f"[{self._base:#x}, {self.end:#x})"
            )
        self.accesses += num_words

    def reset_statistics(self) -> None:
        """Clear the access counter."""
        self.accesses = 0
