"""On-chip area model for caches and scratchpads.

The architectural question behind the paper — *given some silicon,
should it be cache or scratchpad?* — needs an area model to be asked
precisely.  As with the energy model, only the functional shape
matters: SRAM area grows linearly with capacity; a cache additionally
pays tag storage (per line), comparators (per way) and control.
Banakar et al. [3] report scratchpads around 34 % smaller than caches
of equal capacity at these geometries, which this model reproduces.

Units are arbitrary ("area units" proportional to mm² at 0.5 µm); all
comparisons are ratios.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError
from repro.memory.cache import CacheConfig

#: Area per data bit of SRAM (area units).
DATA_BIT_AREA = 1.0
#: Area per tag bit (same cell, plus routing overhead).
TAG_BIT_AREA = 1.2
#: Area of one way's comparator per tag bit.
COMPARATOR_BIT_AREA = 0.6
#: Fixed overhead: decoder, sense amps, control (per array).
ARRAY_OVERHEAD = 512.0
#: Extra control overhead of a cache (miss handling, fill path).
CACHE_CONTROL_OVERHEAD = 768.0
#: Address width used for tag sizing.
ADDRESS_BITS = 32


def scratchpad_area(size: int) -> float:
    """Area of a scratchpad of *size* bytes."""
    if size <= 0:
        raise ConfigurationError(f"scratchpad size must be positive: {size}")
    return size * 8 * DATA_BIT_AREA + ARRAY_OVERHEAD


def cache_area(config: CacheConfig) -> float:
    """Area of a cache, including tags, comparators and control."""
    data_bits = config.size * 8
    num_lines = config.size // config.line_size
    offset_bits = int(math.log2(config.line_size))
    index_bits = int(math.log2(config.num_sets)) \
        if config.num_sets > 1 else 0
    tag_bits = ADDRESS_BITS - offset_bits - index_bits
    tags = num_lines * (tag_bits + 1) * TAG_BIT_AREA  # +1 valid bit
    comparators = config.associativity * tag_bits * COMPARATOR_BIT_AREA
    return (data_bits * DATA_BIT_AREA + tags + comparators
            + ARRAY_OVERHEAD + CACHE_CONTROL_OVERHEAD)


def hierarchy_area(cache: CacheConfig | None, spm_size: int) -> float:
    """Combined on-chip area of an L1 cache plus scratchpad."""
    total = 0.0
    if cache is not None:
        total += cache_area(cache)
    if spm_size:
        total += scratchpad_area(spm_size)
    return total
