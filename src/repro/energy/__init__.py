"""Energy models for the instruction-memory hierarchy.

The paper takes per-access energies from three sources: the CACTI
analytical model for caches and loop caches [15], the Banakar et al.
scratchpad model [3], and board measurements for off-chip main memory.
This package re-implements the *functional shape* of those models —
energy per access as a function of capacity, line size and
associativity — calibrated to 0.5 µm-era magnitudes.  The reproduction's
conclusions depend on the orderings (SPM < cache hit ≪ cache miss,
energies growing with capacity), not on absolute nanojoules.
"""

from repro.energy.cacti import cache_access_energy, sram_access_energy
from repro.energy.banakar import scratchpad_access_energy
from repro.energy.loopcache import (
    loop_cache_access_energy,
    loop_cache_controller_energy,
)
from repro.energy.mainmem import MAIN_MEMORY_WORD_ENERGY_NJ
from repro.energy.model import (
    EnergyBreakdown,
    EnergyModel,
    build_energy_model,
    compute_energy,
)

__all__ = [
    "cache_access_energy",
    "sram_access_energy",
    "scratchpad_access_energy",
    "loop_cache_access_energy",
    "loop_cache_controller_energy",
    "MAIN_MEMORY_WORD_ENERGY_NJ",
    "EnergyBreakdown",
    "EnergyModel",
    "build_energy_model",
    "compute_energy",
]
