"""Scratchpad access-energy model (after Banakar et al. [3]).

A scratchpad is an SRAM without tags, comparators or miss logic; its
access energy is the plain array cost.  Banakar et al. report roughly
40 % lower energy per access than a cache of equal capacity — our model
reproduces that relation because the cache adds tag-path and wider
parallel-read energy on top of the same array model.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.energy.cacti import sram_access_energy


def scratchpad_access_energy(size: int) -> float:
    """Energy (nJ) of one word access to a scratchpad of *size* bytes.

    Raises:
        ConfigurationError: for a non-positive size.
    """
    if size <= 0:
        raise ConfigurationError(
            f"scratchpad size must be positive: {size}"
        )
    return sram_access_energy(size)
