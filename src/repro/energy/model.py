"""The per-event energy table and energy accounting.

:class:`EnergyModel` collects the scalar per-event energies the
simulator's event counts are multiplied with; :func:`build_energy_model`
derives them from the hierarchy configuration using the CACTI/Banakar
models; :func:`compute_energy` turns a
:class:`~repro.memory.stats.SimulationReport` into a
:class:`EnergyBreakdown` — implementing the paper's eqs. 2 and 6.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.energy.banakar import scratchpad_access_energy
from repro.energy.cacti import cache_access_energy, cache_refill_energy
from repro.energy.loopcache import (
    loop_cache_access_energy,
    loop_cache_controller_energy,
)
from repro.energy.mainmem import MAIN_MEMORY_WORD_ENERGY_NJ
from repro.errors import ConfigurationError
from repro.memory.hierarchy import HierarchyConfig
from repro.memory.stats import SimulationReport


@dataclass(frozen=True)
class EnergyModel:
    """Per-event energies in nanojoules.

    Attributes:
        cache_hit: one word served by the I-cache (``E_Cache_hit``).
        cache_miss: one miss — tag probe, line fill from main memory
            and array refill (``E_Cache_miss``).
        spm_access: one word served by the scratchpad (``E_SP_hit``).
        lc_access: one word served by the loop-cache SRAM.
        lc_controller_check: one loop-cache controller lookup (paid per
            fetch in a loop-cache hierarchy).
        main_word: one uncached word read from main memory (used by
            cache-less hierarchies).
    """

    cache_hit: float = 0.0
    cache_miss: float = 0.0
    spm_access: float = 0.0
    lc_access: float = 0.0
    lc_controller_check: float = 0.0
    main_word: float = MAIN_MEMORY_WORD_ENERGY_NJ
    #: per-L2-probe energies (two-level hierarchies only); when an L2
    #: exists, ``cache_miss`` covers only the L1 probe + refill and the
    #: off-chip transfer moves into ``l2_miss``.
    l2_hit: float = 0.0
    l2_miss: float = 0.0

    def __post_init__(self) -> None:
        for name in ("cache_hit", "cache_miss", "spm_access", "lc_access",
                     "lc_controller_check", "main_word"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"negative energy for {name}")
        if self.cache_hit and self.cache_miss and \
                self.cache_miss <= self.cache_hit:
            raise ConfigurationError(
                "a miss must cost more than a hit "
                f"({self.cache_miss} <= {self.cache_hit})"
            )


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy (nJ) by component, as reported in the paper's figures."""

    spm: float
    loop_cache: float
    lc_controller: float
    cache_hits: float
    cache_misses: float
    #: energy of overlay copy-in traffic (0 for static allocations).
    overlay_copies: float = 0.0
    #: L2 probe energy (two-level hierarchies only).
    l2: float = 0.0

    @property
    def total(self) -> float:
        """Total instruction-memory energy in nJ."""
        return (self.spm + self.loop_cache + self.lc_controller
                + self.cache_hits + self.cache_misses
                + self.overlay_copies + self.l2)

    @property
    def total_uj(self) -> float:
        """Total energy in µJ (the unit of the paper's table 1)."""
        return self.total / 1e3


def build_energy_model(
    config: HierarchyConfig,
    technology: "TechnologyNode | None" = None,
) -> EnergyModel:
    """Derive per-event energies for a hierarchy configuration.

    Cache miss energy follows the paper's accounting: the probing access
    plus the off-chip transfer of a full line plus the array refill.

    Args:
        config: the hierarchy.
        technology: optional process node; energies are scaled from the
            paper-era 0.5 µm baseline (on-chip and off-chip scale
            differently — see :mod:`repro.energy.technology`).
    """
    if technology is None:
        onchip = 1.0
        offchip = 1.0
    else:
        from repro.energy.technology import offchip_scale, onchip_scale
        onchip = onchip_scale(technology)
        offchip = offchip_scale(technology)
    main_word = MAIN_MEMORY_WORD_ENERGY_NJ * offchip

    cache_hit = 0.0
    cache_miss = 0.0
    l2_hit = 0.0
    l2_miss = 0.0
    if config.cache is not None:
        cache = config.cache
        cache_hit = onchip * cache_access_energy(
            cache.size, cache.line_size, cache.associativity
        )
        refill = onchip * cache_refill_energy(
            cache.size, cache.line_size, cache.associativity
        )
        if config.l2_cache is not None:
            # With an L2, the off-chip transfer happens only on an L2
            # miss; an L1 miss pays its probe + refill and one L2 probe
            # (accounted separately per L2 event).
            l2 = config.l2_cache
            cache_miss = cache_hit + refill
            l2_hit = onchip * cache_access_energy(
                l2.size, l2.line_size, l2.associativity
            )
            l2_miss = (
                l2_hit
                + l2.words_per_line * main_word
                + onchip * cache_refill_energy(
                    l2.size, l2.line_size, l2.associativity
                )
            )
        else:
            cache_miss = (
                cache_hit + cache.words_per_line * main_word + refill
            )
    else:
        # Cache-less hierarchy: the simulator books uncached words as
        # misses; each costs one off-chip word read.
        cache_miss = main_word

    spm = (
        onchip * scratchpad_access_energy(config.spm_size)
        if config.spm_size else 0.0
    )
    if config.loop_cache is not None:
        lc = onchip * loop_cache_access_energy(config.loop_cache.size)
        controller = onchip * loop_cache_controller_energy(
            config.loop_cache.max_regions
        )
    else:
        lc = 0.0
        controller = 0.0

    return EnergyModel(
        cache_hit=cache_hit,
        cache_miss=cache_miss,
        spm_access=spm,
        lc_access=lc,
        lc_controller_check=controller,
        main_word=main_word,
        l2_hit=l2_hit,
        l2_miss=l2_miss,
    )


def compute_energy(report: SimulationReport, model: EnergyModel
                   ) -> EnergyBreakdown:
    """Multiply event counts by per-event energies (eqs. 2 and 6).

    Overlay copy-in words (if any) cost one off-chip read plus one
    scratchpad write each.
    """
    return EnergyBreakdown(
        spm=report.spm_accesses * model.spm_access,
        loop_cache=report.lc_accesses * model.lc_access,
        lc_controller=report.lc_controller_checks
        * model.lc_controller_check,
        cache_hits=report.cache_hits * model.cache_hit,
        cache_misses=report.cache_misses * model.cache_miss,
        overlay_copies=report.overlay_copy_words
        * (model.main_word + model.spm_access),
        l2=(report.l2_hits * model.l2_hit
            + report.l2_misses * model.l2_miss),
    )
