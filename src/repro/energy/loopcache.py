"""Preloaded-loop-cache energy model.

The loop cache stores code in a tag-less SRAM (same array model as a
scratchpad) but adds a *controller*: a small table of region start/end
addresses consulted on **every** instruction fetch (Ross et al. [12]).
Each table entry costs two address comparisons; keeping the table small
is exactly why only a handful of regions can be preloaded.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.energy.cacti import sram_access_energy

#: Energy (nJ) of one 32-bit address comparison in the controller.
COMPARATOR_ENERGY_NJ = 0.006


def loop_cache_access_energy(size: int) -> float:
    """Energy (nJ) of one word read from the loop-cache SRAM."""
    if size <= 0:
        raise ConfigurationError(f"loop-cache size must be positive: {size}")
    return sram_access_energy(size)


def loop_cache_controller_energy(max_regions: int) -> float:
    """Energy (nJ) of one controller lookup (paid on every fetch).

    Each region slot needs a lower-bound and an upper-bound comparison.
    """
    if max_regions < 1:
        raise ConfigurationError(
            f"controller needs at least one region slot: {max_regions}"
        )
    return 2.0 * COMPARATOR_ENERGY_NJ * max_regions
