"""Simplified CACTI-style SRAM and cache access-energy model.

CACTI [15] decomposes an access into decoder, wordline, bitline,
sense-amp and (for caches) tag-path energy.  We keep that decomposition:

* an SRAM (scratchpad / loop-cache data store) is a square-ish array of
  ``rows x cols`` bit cells; an access decodes ``log2(rows)`` address
  bits and swings ``cols`` bitline pairs;
* a cache access reads a full set row — ``associativity x line_size``
  data bits *plus* the tags of every way — and compares
  ``associativity`` tags.

Hence a cache access is always wider (and costlier) than a scratchpad
access of equal capacity — the Banakar et al. relation (roughly 60-85 %
of the cache energy depending on geometry) — and the energy of both
grows with capacity.  Constants are calibrated to 0.5 µm-era magnitudes
(a 2 kB direct-mapped cache costs ≈ 0.37 nJ per access).
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError

#: Energy per decoded address bit (nJ).
DECODE_ENERGY_PER_BIT_NJ = 0.006
#: Energy per bitline-pair swing + sense amplifier, per bit read (nJ).
BITLINE_ENERGY_PER_BIT_NJ = 0.002
#: Energy per tag bit compared (nJ).
TAG_COMPARE_ENERGY_PER_BIT_NJ = 0.001
#: Fixed per-access overhead (drivers, output latch) in nJ.
BASE_ACCESS_ENERGY_NJ = 0.01
#: Physical address width assumed for tag computation.
ADDRESS_BITS = 32


def _array_geometry(bits: int) -> tuple[int, int]:
    """Rows/cols of a square-ish SRAM array holding *bits* cells.

    Rows is the power of two nearest to ``sqrt(bits)`` so the array
    stays roughly square, as CACTI's organisation search would pick.
    """
    if bits <= 0:
        raise ConfigurationError(f"array must hold at least 1 bit: {bits}")
    rows = 1 << max(0, round(math.log2(math.sqrt(bits))))
    cols = math.ceil(bits / rows)
    return rows, cols


def sram_access_energy(num_bytes: int) -> float:
    """Energy (nJ) of one access to a tag-less SRAM of *num_bytes*.

    This is the array-only cost shared by scratchpads and the loop-cache
    data store.
    """
    if num_bytes <= 0:
        raise ConfigurationError(f"SRAM size must be positive: {num_bytes}")
    rows, cols = _array_geometry(num_bytes * 8)
    decode = DECODE_ENERGY_PER_BIT_NJ * math.log2(rows) if rows > 1 else 0.0
    array = BITLINE_ENERGY_PER_BIT_NJ * cols
    return BASE_ACCESS_ENERGY_NJ + decode + array


def cache_access_energy(
    size: int, line_size: int, associativity: int
) -> float:
    """Energy (nJ) of one hit access to a cache.

    Args:
        size: cache capacity in bytes.
        line_size: line size in bytes.
        associativity: number of ways.

    Returns:
        Per-access read energy, including the tag path.
    """
    if size <= 0 or line_size <= 0 or associativity <= 0:
        raise ConfigurationError(
            f"invalid cache geometry: size={size} line={line_size} "
            f"ways={associativity}"
        )
    num_sets = size // (line_size * associativity)
    if num_sets < 1:
        raise ConfigurationError(
            "cache smaller than one set: "
            f"size={size} line={line_size} ways={associativity}"
        )
    offset_bits = int(math.log2(line_size))
    index_bits = int(math.log2(num_sets)) if num_sets > 1 else 0
    tag_bits = ADDRESS_BITS - offset_bits - index_bits
    # Data + tag arrays are read in parallel across all ways (CACTI's
    # fast organisation): the effective row is the whole set.
    row_bits = associativity * (line_size * 8 + tag_bits)
    decode = DECODE_ENERGY_PER_BIT_NJ * index_bits
    array = BITLINE_ENERGY_PER_BIT_NJ * row_bits
    compare = TAG_COMPARE_ENERGY_PER_BIT_NJ * tag_bits * associativity
    return BASE_ACCESS_ENERGY_NJ + decode + array + compare


def cache_refill_energy(size: int, line_size: int, associativity: int
                        ) -> float:
    """Energy (nJ) of writing one fetched line into the cache array.

    Writing a line costs about one data-path access: no tag comparison,
    but a tag write of similar magnitude.
    """
    return cache_access_energy(size, line_size, associativity)
