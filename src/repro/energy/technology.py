"""Technology scaling of the energy models.

The paper's numbers are for a 0.5 µm process.  Dynamic energy scales
roughly with ``C * V^2``; shrinking a node reduces both capacitance and
supply voltage, so per-access energies fall sharply with feature size.
Off-chip main-memory energy is dominated by I/O pads and board traces
and scales far less.

The factors below are coarse (derived from the classic constant-field
scaling tables) — they exist so experiments can ask "does the CASA
advantage survive at a newer node?", not to predict absolute nJ.
"""

from __future__ import annotations

import enum

from repro.errors import ConfigurationError


class TechnologyNode(enum.Enum):
    """Supported process nodes."""

    UM_050 = "0.5um"
    UM_035 = "0.35um"
    UM_025 = "0.25um"
    UM_018 = "0.18um"
    UM_013 = "0.13um"


#: On-chip dynamic-energy factor relative to 0.5 µm.
_ONCHIP_FACTOR = {
    TechnologyNode.UM_050: 1.0,
    TechnologyNode.UM_035: 0.49,
    TechnologyNode.UM_025: 0.25,
    TechnologyNode.UM_018: 0.13,
    TechnologyNode.UM_013: 0.067,
}

#: Off-chip (main memory) energy factor relative to 0.5 µm — pads and
#: traces shrink much more slowly than logic.
_OFFCHIP_FACTOR = {
    TechnologyNode.UM_050: 1.0,
    TechnologyNode.UM_035: 0.85,
    TechnologyNode.UM_025: 0.72,
    TechnologyNode.UM_018: 0.61,
    TechnologyNode.UM_013: 0.52,
}


def onchip_scale(node: TechnologyNode) -> float:
    """On-chip energy multiplier of *node* relative to 0.5 µm."""
    try:
        return _ONCHIP_FACTOR[node]
    except KeyError:
        raise ConfigurationError(f"unknown node {node!r}") from None


def offchip_scale(node: TechnologyNode) -> float:
    """Off-chip energy multiplier of *node* relative to 0.5 µm."""
    try:
        return _OFFCHIP_FACTOR[node]
    except KeyError:
        raise ConfigurationError(f"unknown node {node!r}") from None
