"""Off-chip main-memory energy.

The paper measured this on an ARM7T evaluation board rather than
modelling it; we use a constant per 32-bit word read, an order of
magnitude above any on-chip access — the relation that makes cache
misses the dominant energy term (section 6).
"""

#: Energy (nJ) per 32-bit word read from off-chip memory.
MAIN_MEMORY_WORD_ENERGY_NJ = 7.9
