"""Command-line interface: ``python -m repro <command>`` or ``casa``.

Commands:

* ``fig4`` / ``fig5`` / ``table1`` — regenerate the paper's exhibits;
* ``sweep`` — free-form size sweep of any workload/allocators;
* ``graph`` — dump a workload's conflict graph as Graphviz DOT;
* ``cache`` — artifact-cache maintenance (``stats`` / ``clear``);
* ``report`` — all exhibits as one document, or (given a ``--trace``
  file) a per-run report of stage timings and cache hit rates;
* ``audit`` — replay recorded cache events against the conflict graph
  (the ``m_ij`` correctness oracle);
* ``verify-kernel`` — differentially verify the vectorized simulation
  kernel against the reference simulator (non-zero exit on any
  difference);
* ``verify-grid`` — differentially verify the grid pipeline
  (single-pass multi-configuration replay, warm-started solves)
  against the per-point path: bit-identical reports and allocations
  or non-zero exit;
* ``bench`` — benchmark regression tracking (``record`` a metric
  snapshot / ``compare`` against a committed baseline, non-zero exit
  on regression);
* ``chaos`` — chaos differential gate: run a sweep under an injected
  fault plan (``--faults`` / ``$CASA_FAULTS``) through the
  self-healing layer and assert bit-identical results versus the
  fault-free run (non-zero exit on divergence, silent plans, or too
  few retries — see ``docs/ROBUSTNESS.md``);
* ``serve`` — run the long-running allocation daemon (HTTP/JSON wire
  API over the Session verbs, micro-batched solves, multi-tenant
  artifact stores, ``/healthz`` + ``/metrics`` — see
  ``docs/SERVING.md``);
* ``workloads`` — list registered benchmarks.

Every experiment command consults the engine's content-addressed
artifact cache (on disk under ``--cache-dir``, default ``.casa_cache``
or ``$CASA_CACHE_DIR``); ``--no-cache`` disables the disk tier and
``--jobs N`` fans sweep design points across worker processes, and
``--backend`` selects the simulation backend (``reference`` |
``vector`` | ``auto``).  The
sweep-shaped commands (``sweep``, ``fig4``, ``fig5``, ``table1``,
``dse``) run the grid pipeline by default (one work unit per
allocator covering its whole capacity axis, with single-pass cache
replay and warm-started solves; ``--per-point`` restores one unit per
(size, allocator) pair, with identical results) and additionally
accept ``--trace FILE`` (record a Chrome-trace
run file, viewable in ``chrome://tracing`` / Perfetto and readable by
``report``), ``--metrics`` (print the run's metric counters),
``--events`` (record the cache eviction/miss event stream and print
its set-pressure summary), and the live telemetry flags — ``--watch``
(in-terminal progress + ETA + worker liveness), ``--telemetry FILE``
(periodic JSONL snapshots) with ``--telemetry-interval`` /
``--stall-timeout``, ``--prom FILE`` (Prometheus text exposition),
``--log FILE`` (run_id-correlated structured JSON log) and
``--profile-sample FILE`` (collapsed-stack sampling profile) — see
``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Callable

from repro.api import Session
from repro.engine.runner import RunRecord
from repro.engine.store import ArtifactStore, CACHE_DIR_ENV, \
    set_default_store
from repro.memory.replacement import available_policies
from repro.evaluation.fig4 import run_fig4
from repro.evaluation.fig5 import run_fig5
from repro.evaluation.sweep import run_sweep
from repro.evaluation.table1 import run_table1
from repro.evaluation.reporting import microjoules, percent
from repro.obs.events import EventRecorder, set_recorder
from repro.obs.metrics import MetricsRegistry, set_registry
from repro.obs.report import build_run_payload, load_run, \
    render_run_report, summarise_run, write_run_file
from repro.obs.trace import TraceCollector, set_collector
from repro.utils.tables import format_table
from repro.workloads.registry import available_workloads


def _default_cache_dir() -> str:
    return os.environ.get(CACHE_DIR_ENV) or ".casa_cache"


def _session(args: argparse.Namespace) -> Session:
    """The command's workload/scale/seed/backend as one Session."""
    return Session(args.workload, scale=args.scale, seed=args.seed,
                   backend=args.backend)


def _add_per_point(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--per-point", action="store_true",
        help="schedule one design point per (size, allocator) pair "
             "instead of the default grid path (one chunk per "
             "allocator with single-pass cache replay and "
             "warm-started solves); results are identical",
    )


def _add_scale(parser: argparse.ArgumentParser,
               jobs: bool = False) -> None:
    parser.add_argument(
        "--scale", type=float, default=1.0,
        help="outer-loop trip-count multiplier (default 1.0)",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="executor seed for probabilistic branches (default 0)",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="artifact-cache directory (default .casa_cache, or "
             f"${CACHE_DIR_ENV})",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="do not read or write the on-disk artifact cache",
    )
    parser.add_argument(
        "--backend", default=None,
        choices=("reference", "vector", "auto"),
        help="simulation backend (default: $CASA_BACKEND, then "
             "'auto' = the vectorized kernel whenever it can replay "
             "the run exactly)",
    )
    if jobs:
        parser.add_argument(
            "--jobs", type=int, default=1,
            help="worker processes for the sweep's design points "
                 "(default 1 = serial; results are identical)",
        )
        parser.add_argument(
            "--trace", metavar="FILE", default=None,
            help="record a Chrome-trace run file (open in "
                 "chrome://tracing or Perfetto; feed to "
                 "'report FILE')",
        )
        parser.add_argument(
            "--metrics", action="store_true",
            help="print the run's metric counters (cache statistics, "
                 "solver work, engine stages)",
        )
        parser.add_argument(
            "--events", action="store_true",
            help="record the cache eviction/miss event stream and "
                 "print its totals and set-pressure histogram (only "
                 "simulations actually run emit events; a warm "
                 "artifact cache serves results without simulating)",
        )
        parser.add_argument(
            "--watch", action="store_true",
            help="paint a live single-line progress display (units "
                 "done, ETA, worker liveness, latency percentiles) "
                 "on stderr while the command runs",
        )
        parser.add_argument(
            "--telemetry", metavar="FILE", default=None,
            help="append periodic JSONL progress snapshots "
                 "(progress, counters, percentile summaries, worker "
                 "health) to FILE while the command runs",
        )
        parser.add_argument(
            "--telemetry-interval", type=float, default=1.0,
            metavar="SEC",
            help="seconds between telemetry snapshots (default 1.0)",
        )
        parser.add_argument(
            "--prom", metavar="FILE", default=None,
            help="render each telemetry snapshot to FILE in "
                 "Prometheus text exposition format (atomically "
                 "replaced every interval)",
        )
        parser.add_argument(
            "--stall-timeout", type=float, default=30.0, metavar="SEC",
            help="flag a worker as stalled when its current unit has "
                 "run this long without finishing (default 30)",
        )
        parser.add_argument(
            "--log", metavar="FILE", default=None,
            help="append structured JSON log events (run_id-"
                 "correlated engine stages, retries, chaos passes) "
                 "to FILE",
        )
        parser.add_argument(
            "--profile-sample", metavar="FILE", default=None,
            help="sample the main thread's wall-clock stacks while "
                 "the command runs and write a collapsed-stack "
                 "profile (flamegraph.pl / speedscope input) to FILE",
        )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="casa",
        description="Cache-Aware Scratchpad Allocation (DATE 2004) "
                    "reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fig4 = sub.add_parser("fig4", help="CASA vs. Steinke (figure 4)")
    fig4.add_argument("--workload", default="mpeg",
                      choices=available_workloads())
    fig4.add_argument("--chart", action="store_true",
                      help="render as grouped bars")
    _add_per_point(fig4)
    _add_scale(fig4, jobs=True)

    fig5 = sub.add_parser("fig5",
                          help="scratchpad vs. loop cache (figure 5)")
    fig5.add_argument("--workload", default="mpeg",
                      choices=available_workloads())
    fig5.add_argument("--chart", action="store_true",
                      help="render as grouped bars")
    _add_per_point(fig5)
    _add_scale(fig5, jobs=True)

    table1 = sub.add_parser("table1", help="overall savings (table 1)")
    _add_per_point(table1)
    _add_scale(table1, jobs=True)

    sweep = sub.add_parser("sweep", help="free-form size sweep")
    sweep.add_argument("--workload", default="mpeg",
                       choices=available_workloads())
    sweep.add_argument("--sizes", type=int, nargs="+", default=None,
                       help="scratchpad sizes in bytes")
    sweep.add_argument(
        "--algorithms", nargs="+",
        default=["casa", "steinke", "ross"],
        choices=["casa", "steinke", "greedy", "ross"],
    )
    sweep.add_argument(
        "--explain", action="store_true",
        help="after the table, justify the CASA allocation at the "
             "largest swept size object by object",
    )
    _add_per_point(sweep)
    _add_scale(sweep, jobs=True)

    graph = sub.add_parser("graph", help="dump the conflict graph (DOT)")
    graph.add_argument("--workload", default="mpeg",
                       choices=available_workloads())
    _add_scale(graph)

    overlay = sub.add_parser(
        "overlay",
        help="static CASA vs. overlay (the paper's future work)",
    )
    overlay.add_argument("--workload", default="jpeg",
                         choices=available_workloads())
    overlay.add_argument("--spm-size", type=int, default=128)
    _add_scale(overlay)

    pressure = sub.add_parser(
        "pressure", help="show the most contended cache sets"
    )
    pressure.add_argument("--workload", default="adpcm",
                          choices=available_workloads())
    pressure.add_argument("--top", type=int, default=10)
    _add_scale(pressure)

    wcet = sub.add_parser(
        "wcet", help="WCET bound with and without the scratchpad"
    )
    wcet.add_argument("--workload", default="adpcm",
                      choices=available_workloads())
    wcet.add_argument("--spm-size", type=int, default=128)
    _add_scale(wcet)

    dse = sub.add_parser(
        "dse",
        help="best cache/scratchpad split under an area budget",
    )
    dse.add_argument("--workload", default="adpcm",
                     choices=available_workloads())
    dse.add_argument("--budget", type=float, default=30_000.0,
                     help="on-chip area budget (model units)")
    dse.add_argument("--top", type=int, default=8)
    dse.add_argument(
        "--policies", nargs="+", default=None,
        choices=available_policies(), metavar="POLICY",
        help="open the replacement-policy axis: cross these policies "
             f"({', '.join(available_policies())}) with the cache "
             "sizes and report each point against the Belady (opt) "
             "miss floor of its own layout — see docs/POLICIES.md",
    )
    dse.add_argument(
        "--assoc", type=int, default=1,
        help="associativity of every explored cache (default 1 = "
             "direct mapped, where all policies collapse; raise it "
             "to make --policies meaningful)",
    )
    _add_per_point(dse)
    _add_scale(dse, jobs=True)

    explain = sub.add_parser(
        "explain",
        help="justify a CASA allocation object by object",
    )
    explain.add_argument("--workload", default="adpcm",
                         choices=available_workloads())
    explain.add_argument("--spm-size", type=int, default=128)
    _add_scale(explain)

    report = sub.add_parser(
        "report",
        help="run every exhibit and print one document, or render a "
             "per-run report from a --trace file",
    )
    report.add_argument(
        "run", nargs="?", default=None, metavar="RUNFILE",
        help="a --trace run file; renders its stage timings, cache "
             "hit rates and slowest design points instead of "
             "re-running the exhibits",
    )
    report.add_argument("--output", default=None,
                        help="also write the report to this file")
    report.add_argument("--no-charts", action="store_true")
    report.add_argument("--json", action="store_true",
                        help="with RUNFILE: print the report as JSON")
    report.add_argument("--top", type=int, default=10,
                        help="with RUNFILE: how many slowest design "
                             "points to list (default 10)")
    _add_scale(report)

    audit = sub.add_parser(
        "audit",
        help="replay cache events against the conflict graph (the "
             "m_ij correctness oracle); non-zero exit on mismatch",
    )
    audit.add_argument("--workload", default="adpcm",
                       choices=available_workloads())
    audit.add_argument("--top", type=int, default=8,
                       help="hottest cache sets to list (default 8)")
    audit.add_argument(
        "--policy", default=None, choices=available_policies(),
        help="replace the workload's cache policy before auditing "
             "(the m_ij re-derivation is policy-agnostic, so the "
             "audit must pass under every policy)",
    )
    audit.add_argument(
        "--assoc", type=int, default=None,
        help="replace the workload's cache associativity before "
             "auditing (the paper's caches are mostly direct mapped, "
             "where every policy collapses)",
    )
    _add_scale(audit)

    verify = sub.add_parser(
        "verify-kernel",
        help="differentially verify the vector kernel against the "
             "reference simulator; non-zero exit on any difference",
    )
    verify.add_argument(
        "--workloads", nargs="+", default=None,
        choices=available_workloads(), metavar="WORKLOAD",
        help="workloads of the end-to-end and audit checks "
             "(default: tiny adpcm)",
    )
    verify.add_argument(
        "--trials", type=int, default=50,
        help="randomized probe-level trials (default 50)",
    )
    _add_scale(verify)

    verify_grid = sub.add_parser(
        "verify-grid",
        help="differentially verify the grid pipeline against the "
             "per-point path (bit-identical reports and allocations); "
             "non-zero exit on any divergence or zero-coverage grid",
    )
    verify_grid.add_argument(
        "--workloads", nargs="+", default=None,
        choices=available_workloads(), metavar="WORKLOAD",
        help="workloads of the sweep-level checks (default: tiny "
             "adpcm)",
    )
    _add_scale(verify_grid)

    bench = sub.add_parser(
        "bench",
        help="benchmark regression tracking: record a metric snapshot "
             "or compare against a baseline (non-zero exit on "
             "regression)",
    )
    bench.add_argument("action", choices=("record", "compare"))
    bench.add_argument(
        "--history", default=None, metavar="FILE",
        help="JSONL history file — record appends to it (default "
             "benchmarks/history.jsonl); compare reads its last "
             "snapshot instead of re-running the suite",
    )
    bench.add_argument(
        "--baseline", default="benchmarks/baselines/smoke.jsonl",
        metavar="FILE",
        help="baseline history whose last snapshot compare checks "
             "against (default benchmarks/baselines/smoke.jsonl)",
    )
    bench.add_argument("--name", default="smoke",
                       help="snapshot name (default smoke)")
    bench.add_argument("--note", default="",
                       help="free-form note stored with the snapshot")
    bench.add_argument(
        "--workloads", nargs="+", default=None,
        choices=available_workloads(), metavar="WORKLOAD",
        help="suite workloads (default: the smoke suite)",
    )
    bench.add_argument("--scale", type=float, default=None,
                       help="suite trip-count multiplier "
                            "(default: the smoke suite's)")
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument(
        "--timing-tolerance", type=float, default=None,
        help="relative tolerance for timing metrics (default 5.0 = "
             "within 5x either way; deterministic metrics always "
             "match exactly)",
    )

    chaos = sub.add_parser(
        "chaos",
        help="run a sweep under an injected fault plan and assert "
             "bit-identical results vs. the fault-free run; non-zero "
             "exit on divergence",
    )
    chaos.add_argument("--workload", default="tiny",
                       choices=available_workloads())
    chaos.add_argument("--sizes", type=int, nargs="+", default=None,
                       help="scratchpad sizes in bytes (default 64 128)")
    chaos.add_argument(
        "--algorithms", nargs="+",
        default=["casa", "steinke"],
        choices=["casa", "steinke", "greedy", "ross"],
    )
    chaos.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="fault plan, e.g. 'store.read:error@nth=1;"
             "worker.exec:crash@nth=2' (default: $CASA_FAULTS)",
    )
    chaos.add_argument(
        "--max-attempts", type=int, default=3,
        help="retry budget per design point (default 3)",
    )
    chaos.add_argument(
        "--timeout", type=float, default=None,
        help="per-point evaluation timeout in seconds (default none)",
    )
    chaos.add_argument(
        "--min-retries", type=int, default=0,
        help="fail unless the healing layer retried at least this "
             "many times (proves the plan actually bit; default 0)",
    )
    _add_scale(chaos, jobs=True)

    serve = sub.add_parser(
        "serve",
        help="run the allocation daemon (HTTP/JSON; see "
             "docs/SERVING.md)",
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="interface to bind (default loopback)")
    serve.add_argument("--port", type=int, default=8787,
                       help="TCP port; 0 picks an ephemeral port "
                            "(default 8787)")
    serve.add_argument("--jobs", type=int, default=1,
                       help="worker processes for multi-chunk "
                            "batches (default 1)")
    serve.add_argument("--max-batch", type=int, default=8,
                       help="micro-batch flush threshold (default 8)")
    serve.add_argument("--max-delay", type=float, default=0.02,
                       help="micro-batch flush deadline in seconds "
                            "(default 0.02)")
    serve.add_argument(
        "--store-backend", default="memory", metavar="SPEC",
        help="tenant-store backend spec: 'memory[:bytes]', "
             "'disk[:root]' or a registered backend name "
             "(default memory)",
    )
    serve.add_argument(
        "--stall-timeout", type=float, default=30.0,
        help="seconds before /healthz flags a stalled solve "
             "(default 30)",
    )
    serve.add_argument(
        "--max-attempts", type=int, default=3,
        help="retry budget per work unit (default 3)",
    )
    serve.add_argument(
        "--timeout", type=float, default=None,
        help="per-work-unit evaluation timeout in seconds "
             "(default none)",
    )
    serve.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="fault-injection plan for chaos testing the daemon",
    )
    serve.add_argument(
        "--log", default=None, metavar="FILE",
        help="append run_id-correlated structured JSON events to FILE",
    )
    serve.add_argument(
        "--max-inflight", type=int, default=64,
        help="admission bound on concurrently admitted requests; "
             "excess sheds with a structured 503 (default 64, "
             "<= 0 unbounded)",
    )
    serve.add_argument(
        "--tenant-quota", type=int, default=None,
        help="per-tenant concurrent-request bound (default none)",
    )
    serve.add_argument(
        "--breaker-threshold", type=int, default=5,
        help="rolling-window failures that open a verb's circuit "
             "breaker (default 5, <= 0 disables breakers)",
    )
    serve.add_argument(
        "--breaker-window", type=float, default=30.0,
        help="breaker rolling-window width in seconds (default 30)",
    )
    serve.add_argument(
        "--breaker-cooldown", type=float, default=5.0,
        help="seconds an open breaker waits before half-opening "
             "(default 5)",
    )
    serve.add_argument(
        "--retry-after", type=float, default=1.0,
        help="Retry-After hint on shed responses in seconds "
             "(default 1)",
    )
    serve.add_argument(
        "--max-body-bytes", type=int, default=1 << 20,
        help="refuse request bodies above this size with a "
             "structured 400 (default 1 MiB)",
    )
    serve.add_argument(
        "--client-timeout", type=float, default=30.0,
        help="bound on each read from a client; slower clients are "
             "disconnected (default 30, <= 0 unbounded)",
    )
    serve.add_argument(
        "--drain-timeout", type=float, default=10.0,
        help="seconds in-flight requests get to finish after "
             "SIGTERM/SIGINT (default 10)",
    )

    serve_chaos = sub.add_parser(
        "serve-chaos",
        help="chaos-test a real daemon subprocess: overload, "
             "adversarial clients and SIGTERM drain "
             "(see docs/SERVING.md)",
    )
    serve_chaos.add_argument(
        "--workload", default="tiny",
        help="workload every request names (default tiny)")
    serve_chaos.add_argument(
        "--scale", type=float, default=0.2,
        help="trip-count multiplier (default 0.2)")
    serve_chaos.add_argument(
        "--requests", type=int, default=48,
        help="overload-phase request count (default 48)")
    serve_chaos.add_argument(
        "--max-inflight", type=int, default=4,
        help="the gate daemon's admission limit; the overload phase "
             "runs twice as many workers (default 4)")
    serve_chaos.add_argument(
        "--p99-limit", type=float, default=2.0,
        help="bound on accepted-request p99 under overload, in "
             "seconds (default 2.0)")
    serve_chaos.add_argument(
        "--adversarial-count", type=int, default=3,
        help="connections per adversarial client mode (default 3)")
    serve_chaos.add_argument(
        "--show-output", action="store_true",
        help="print the daemon subprocess's combined output")

    cache = sub.add_parser(
        "cache", help="artifact-cache maintenance"
    )
    cache.add_argument("action", choices=("stats", "clear"))
    cache.add_argument(
        "--cache-dir", default=None,
        help="artifact-cache directory (default .casa_cache, or "
             f"${CACHE_DIR_ENV})",
    )

    sub.add_parser("workloads", help="list registered benchmarks")
    return parser


def _configure_store(args: argparse.Namespace) -> ArtifactStore:
    """Install the process-wide store the parsed flags ask for."""
    if getattr(args, "no_cache", False):
        store = ArtifactStore()
    else:
        cache_dir = getattr(args, "cache_dir", None) \
            or _default_cache_dir()
        store = ArtifactStore(cache_dir=cache_dir)
    set_default_store(store)
    return store


def _run_cache_command(args: argparse.Namespace) -> int:
    """``casa cache stats`` / ``casa cache clear``."""
    store = ArtifactStore(
        cache_dir=args.cache_dir or _default_cache_dir()
    )
    if args.action == "clear":
        removed = store.clear()
        print(f"removed {removed} cached artifacts from "
              f"{store.cache_dir}")
        return 0
    entries = store.disk_entries()
    count, total_bytes = store.disk_usage()
    print(f"cache dir : {store.cache_dir}")
    print(f"artifacts : {count}")
    print(f"bytes     : {total_bytes}")
    per_stage: dict[str, int] = {}
    for path in entries:
        stage = path.name.split("-", 1)[0]
        per_stage[stage] = per_stage.get(stage, 0) + 1
    for stage in sorted(per_stage):
        print(f"  {stage}: {per_stage[stage]}")
    return 0


def _run_observed(args: argparse.Namespace,
                  run: Callable[[RunRecord], int]) -> int:
    """Run a sweep-shaped command under the requested observability.

    Installs a trace collector (``--trace FILE``), a metrics registry
    (``--metrics``, implied by ``--trace`` so the run file is
    self-describing) and/or a cache event recorder (``--events``),
    invokes *run* with a fresh :class:`RunRecord`, restores the
    previous observability state, then prints the metric table /
    event summary and/or writes the run file.

    The live telemetry flags layer on the same scaffolding: ``--log``
    opens a run_id-correlated structured log; ``--watch`` /
    ``--telemetry`` / ``--prom`` install a
    :class:`~repro.obs.live.ProgressBus` (which implies a metrics
    registry, so percentiles have a source) and start the matching
    consumer threads; ``--profile-sample`` runs the sampling profiler
    around the whole command.  None of this changes the run's
    deterministic outputs — live consumers only *read* snapshots.
    """
    from repro.obs.live import ProgressBus, TelemetryWriter, \
        WatchRenderer, set_progress_sink
    from repro.obs.logging import RunLog, log_event, new_run_id, \
        set_run_log

    trace_path = getattr(args, "trace", None)
    want_metrics = getattr(args, "metrics", False)
    want_events = getattr(args, "events", False)
    want_watch = getattr(args, "watch", False)
    telemetry_path = getattr(args, "telemetry", None)
    prom_path = getattr(args, "prom", None)
    log_path = getattr(args, "log", None)
    profile_path = getattr(args, "profile_sample", None)
    live_on = bool(want_watch or telemetry_path or prom_path)

    collector = TraceCollector() if trace_path else None
    registry = MetricsRegistry() \
        if (want_metrics or collector is not None or live_on) else None
    recorder = EventRecorder() if want_events else None
    record = RunRecord()

    run_id = new_run_id() \
        if (live_on or log_path or profile_path or trace_path) else None
    run_log = RunLog(log_path, run_id=run_id) if log_path else None
    bus = ProgressBus(run_id=run_id,
                      stall_timeout=getattr(args, "stall_timeout",
                                            30.0)) if live_on else None
    watcher = WatchRenderer(bus, registry) if want_watch else None
    telemetry = TelemetryWriter(
        bus, telemetry_path, registry,
        interval=getattr(args, "telemetry_interval", 1.0),
        prom_path=prom_path,
    ) if bus is not None and (telemetry_path or prom_path) else None
    profiler = None
    if profile_path:
        from repro.obs.profiler import SamplingProfiler
        profiler = SamplingProfiler()

    previous_collector = set_collector(collector) \
        if collector is not None else None
    previous_registry = set_registry(registry) \
        if registry is not None else None
    previous_recorder = set_recorder(recorder) \
        if recorder is not None else None
    previous_log = set_run_log(run_log) if run_log is not None else None
    previous_sink = set_progress_sink(bus) if bus is not None else None
    log_event("run.start", command=args.command,
              argv=getattr(args, "_argv", None))
    if telemetry is not None:
        telemetry.start()
    if watcher is not None:
        watcher.start()
    if profiler is not None:
        profiler.start()
    try:
        code = run(record)
    finally:
        if profiler is not None:
            profiler.stop()
        if watcher is not None:
            watcher.stop()
        if telemetry is not None:
            telemetry.stop()
        log_event("run.done", command=args.command)
        if bus is not None:
            set_progress_sink(previous_sink)
        if run_log is not None:
            set_run_log(previous_log)
            run_log.close()
        if collector is not None:
            set_collector(previous_collector)
        if registry is not None:
            set_registry(previous_registry)
        if recorder is not None:
            set_recorder(previous_recorder)
    if recorder is not None:
        print(recorder.render())
    if registry is not None:
        # Fold the run's per-stage counters in, so ``--metrics`` and
        # the run file expose the engine.stage.* numbers too.
        registry.merge(record.metrics.snapshot())
    if want_metrics and registry is not None:
        print(registry.render())
    if profiler is not None and profile_path:
        profiler.write(profile_path)
        print(f"profile written to {profile_path} "
              f"({profiler.sample_count} samples, "
              f"{len(profiler.samples)} stacks)")
    if telemetry_path:
        print(f"telemetry written to {telemetry_path} "
              f"({telemetry.snapshots_written} snapshots)"
              if telemetry is not None else
              f"telemetry written to {telemetry_path}")
    if log_path:
        print(f"log written to {log_path} (run id {run_id})")
    if collector is not None and trace_path:
        payload = build_run_payload(
            command=args.command,
            collector=collector,
            record=record,
            registry=registry,
            argv=getattr(args, "_argv", None),
            run_id=run_id,
            profile=profiler.stats() if profiler is not None else None,
        )
        write_run_file(trace_path, payload)
        print(f"trace written to {trace_path} "
              f"({len(payload['traceEvents'])} spans); inspect with "
              f"'report {trace_path}' or chrome://tracing")
    return code


def _run_bench_command(args: argparse.Namespace) -> int:
    """``casa bench record`` / ``casa bench compare``.

    ``record`` runs the benchmark suite and appends the metric
    snapshot to ``--history``.  ``compare`` takes the latest snapshot
    (from ``--history`` if given, else by running the suite fresh) and
    checks it against the last snapshot of ``--baseline``:
    deterministic metrics must match exactly, timing metrics get a
    relative tolerance band, and any regression makes the exit code
    non-zero so ``make bench-smoke`` can gate on it.

    The suite always runs on a fresh in-memory artifact store, so the
    recorded numbers measure real simulations and solves, never cache
    hits.
    """
    from repro.obs.history import (
        ComparePolicy,
        DEFAULT_SUITE_SCALE,
        DEFAULT_SUITE_WORKLOADS,
        collect_suite_metrics,
        compare_snapshots,
        load_history,
        record_suite,
    )

    workloads = tuple(args.workloads) if args.workloads \
        else DEFAULT_SUITE_WORKLOADS
    scale = args.scale if args.scale is not None \
        else DEFAULT_SUITE_SCALE

    if args.action == "record":
        history = args.history or "benchmarks/history.jsonl"
        snapshot = record_suite(
            history, name=args.name, workloads=workloads,
            scale=scale, seed=args.seed, note=args.note,
        )
        print(f"recorded snapshot {snapshot.name!r} "
              f"({len(snapshot.metrics)} metrics) to {history}")
        for metric in sorted(snapshot.metrics):
            print(f"  {metric} = {snapshot.metrics[metric]}")
        return 0

    baseline = load_history(args.baseline)[-1]
    if args.history:
        latest = load_history(args.history)[-1]
    else:
        from repro.obs.history import Snapshot, machine_fingerprint
        latest = Snapshot(
            name=args.name,
            metrics=collect_suite_metrics(workloads, scale,
                                          seed=args.seed),
            fingerprint=machine_fingerprint(),
            config={"workloads": list(workloads), "scale": scale,
                    "seed": args.seed},
        )
    policy = ComparePolicy() if args.timing_tolerance is None \
        else ComparePolicy(timing_tolerance=args.timing_tolerance)
    result = compare_snapshots(baseline, latest, policy=policy)
    print(result.render())
    return 0 if result.ok else 1


def _run_serve_command(args: argparse.Namespace) -> int:
    """``casa serve`` — run the allocation daemon in the foreground.

    Prints ``serving on http://HOST:PORT`` once bound (the smoke
    harness parses that line to learn an ephemeral port) and serves
    until interrupted.
    """
    from repro.resilience.healing import RetryPolicy
    from repro.serve import AllocationService, ServiceConfig
    from repro.serve.daemon import run_daemon

    config = ServiceConfig(
        jobs=args.jobs,
        max_batch=args.max_batch,
        max_delay_s=args.max_delay,
        store_backend=args.store_backend,
        retry=RetryPolicy(max_attempts=args.max_attempts,
                          timeout_s=args.timeout),
        stall_timeout=args.stall_timeout,
        fault_spec=args.faults or os.environ.get("CASA_FAULTS"),
        log_path=args.log,
        max_inflight=args.max_inflight,
        tenant_quota=args.tenant_quota,
        breaker_threshold=args.breaker_threshold,
        breaker_window_s=args.breaker_window,
        breaker_cooldown_s=args.breaker_cooldown,
        retry_after_s=args.retry_after,
    )
    service = AllocationService(config)

    def announce(url: str) -> None:
        print(f"serving on {url}", flush=True)

    run_daemon(service, host=args.host, port=args.port,
               announce=announce,
               max_body_bytes=args.max_body_bytes,
               client_timeout_s=args.client_timeout,
               drain_timeout_s=args.drain_timeout)
    return 0


def _run_serve_chaos_command(args: argparse.Namespace) -> int:
    """``casa serve-chaos`` — the serve-layer chaos gate."""
    from repro.serve.chaos import run_serve_chaos

    result = run_serve_chaos(
        workload=args.workload,
        scale=args.scale,
        requests=args.requests,
        max_inflight=args.max_inflight,
        p99_limit_s=args.p99_limit,
        adversarial_count=args.adversarial_count,
    )
    print(result.render())
    if args.show_output or not result.ok:
        print("--- daemon output ---")
        print(result.daemon_output, end="")
    return 0 if result.ok else 1


def _run_trace_report(args: argparse.Namespace) -> int:
    """``casa report RUNFILE`` — render a recorded run."""
    run = load_run(args.run)
    if args.json:
        import json
        text = json.dumps(summarise_run(run, top=args.top), indent=2)
    else:
        text = render_run_report(run, top=args.top)
    print(text)
    if args.output:
        import pathlib
        pathlib.Path(args.output).write_text(text + "\n")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    args._argv = list(argv) if argv is not None else sys.argv[1:]

    if args.command == "workloads":
        for name in available_workloads():
            print(name)
        return 0

    if args.command == "cache":
        return _run_cache_command(args)

    if args.command == "bench":
        return _run_bench_command(args)

    if args.command == "serve":
        return _run_serve_command(args)

    if args.command == "serve-chaos":
        return _run_serve_chaos_command(args)

    if args.command == "report" and args.run:
        return _run_trace_report(args)

    _configure_store(args)

    if args.command == "fig4":
        def run_fig4_command(record: RunRecord) -> int:
            result = run_fig4(args.workload, scale=args.scale,
                              seed=args.seed, jobs=args.jobs,
                              record=record, backend=args.backend,
                              grid=not args.per_point)
            print(result.render_chart() if args.chart
                  else result.render())
            print(f"average energy improvement: "
                  f"{percent(result.average_energy_improvement)}%")
            return 0
        return _run_observed(args, run_fig4_command)

    if args.command == "fig5":
        def run_fig5_command(record: RunRecord) -> int:
            result = run_fig5(args.workload, scale=args.scale,
                              seed=args.seed, jobs=args.jobs,
                              record=record, backend=args.backend,
                              grid=not args.per_point)
            print(result.render_chart() if args.chart
                  else result.render())
            print(f"average energy improvement: "
                  f"{percent(result.average_energy_improvement)}%")
            return 0
        return _run_observed(args, run_fig5_command)

    if args.command == "table1":
        def run_table1_command(record: RunRecord) -> int:
            result = run_table1(scale=args.scale, seed=args.seed,
                                jobs=args.jobs, record=record,
                                backend=args.backend,
                                grid=not args.per_point)
            print(result.render())
            print(f"overall: {percent(result.overall_vs_steinke)}% "
                  f"vs. Steinke, "
                  f"{percent(result.overall_vs_loop_cache)}% vs. "
                  "loop cache (paper: 21.1% / 28.6%)")
            return 0
        return _run_observed(args, run_table1_command)

    if args.command == "sweep":
        def run_sweep_command(record: RunRecord) -> int:
            points = run_sweep(
                args.workload,
                tuple(args.sizes) if args.sizes else None,
                algorithms=tuple(args.algorithms),
                scale=args.scale,
                seed=args.seed,
                jobs=args.jobs,
                record=record,
                backend=args.backend,
                grid=not args.per_point,
            )
            headers = ["size (B)"] + [f"{a} (uJ)"
                                      for a in args.algorithms]
            rows = [
                [point.spm_size]
                + [microjoules(point.energy(a))
                   for a in args.algorithms]
                for point in points
            ]
            print(format_table(headers, rows,
                               title=f"sweep of {args.workload}"))
            print(record.render())
            if args.explain and "casa" in args.algorithms:
                from repro.evaluation.explain import (
                    explain_allocation,
                    render_explanation,
                    solver_summary,
                )
                session = _session(args)
                point = points[-1]
                allocation = point.result("casa").allocation
                model = session.energy_model(point.spm_size)
                print(f"\nCASA at {point.spm_size} B "
                      f"({allocation.used_bytes} B used); "
                      f"{solver_summary(allocation)}\n")
                print(render_explanation(explain_allocation(
                    session.conflict_graph(), allocation, model
                )))
            return 0
        return _run_observed(args, run_sweep_command)

    if args.command == "graph":
        print(_session(args).conflict_graph().to_dot())
        return 0

    if args.command == "overlay":
        session = _session(args)
        static = session.evaluate("casa", args.spm_size)
        overlay = session.evaluate("overlay", args.spm_size)
        gain = (1 - overlay.energy.total / static.energy.total) * 100
        print(f"static CASA : {microjoules(static.energy.total)} uJ")
        print(f"overlay     : {microjoules(overlay.energy.total)} uJ "
              f"({overlay.report.overlay_copy_words} copy words)")
        print(f"overlay gain: {percent(gain)}%")
        return 0

    if args.command == "wcet":
        from repro.analysis.wcet import compute_wcet
        from repro.traces.layout import LinkedImage

        session = _session(args)
        bench = session.workbench
        baseline_image = LinkedImage(bench.program,
                                     bench.memory_objects)
        baseline = compute_wcet(bench.program, baseline_image)
        result = session.evaluate("casa", args.spm_size)
        image = LinkedImage(
            bench.program, bench.memory_objects,
            spm_resident=result.allocation.spm_resident,
            spm_size=args.spm_size,
        )
        allocated = compute_wcet(bench.program, image)
        tightening = (1 - allocated.program_wcet
                      / baseline.program_wcet) * 100
        print(f"cache-only WCET bound : "
              f"{baseline.program_wcet:.0f} cycles")
        print(f"with {args.spm_size} B SPM    : "
              f"{allocated.program_wcet:.0f} cycles")
        print(f"tightening            : {percent(tightening)}%")
        return 0

    if args.command == "dse":
        from repro.evaluation.dse import explore, render_design_points

        def run_dse_command(record: RunRecord) -> int:
            points = explore(args.workload, args.budget,
                             scale=args.scale, seed=args.seed,
                             jobs=args.jobs, record=record,
                             backend=args.backend,
                             grid=not args.per_point,
                             policies=args.policies,
                             associativity=args.assoc)
            print(render_design_points(points, top=args.top))
            best = points[0]
            print(f"best: {best.cache_size}B cache + {best.spm_size}B "
                  f"scratchpad at {microjoules(best.energy)} uJ")
            return 0
        return _run_observed(args, run_dse_command)

    if args.command == "explain":
        from repro.evaluation.explain import (
            explain_allocation,
            render_explanation,
            solver_summary,
        )

        session = _session(args)
        model = session.energy_model(args.spm_size)
        allocation = session.allocate("casa", args.spm_size)
        explanations = explain_allocation(
            session.conflict_graph(), allocation, model
        )
        print(f"CASA on {args.workload}, {args.spm_size} B scratchpad "
              f"({allocation.used_bytes} B used)")
        print(solver_summary(allocation) + "\n")
        print(render_explanation(explanations))
        return 0

    if args.command == "chaos":
        from repro.resilience.chaos import run_chaos
        from repro.resilience.faults import FAULTS_ENV, FaultPlan
        from repro.resilience.healing import RetryPolicy

        def run_chaos_command(record: RunRecord) -> int:
            del record  # chaos runs its own instrumented passes
            spec = args.faults if args.faults is not None \
                else os.environ.get(FAULTS_ENV, "")
            plan = FaultPlan.from_spec(spec) if spec else FaultPlan()
            policy = RetryPolicy(max_attempts=args.max_attempts,
                                 timeout_s=args.timeout)
            result = run_chaos(
                args.workload,
                sizes=tuple(args.sizes) if args.sizes else None,
                algorithms=tuple(args.algorithms),
                plan=plan,
                scale=args.scale,
                seed=args.seed,
                jobs=args.jobs,
                policy=policy,
            )
            print(result.render())
            if not result.ok:
                return 1
            if plan.rules and result.injected == 0:
                print("chaos: FAIL — a fault plan was installed but "
                      "no fault ever fired")
                return 1
            if result.retries < args.min_retries:
                print(f"chaos: FAIL — expected >= {args.min_retries} "
                      f"retries, saw {result.retries}")
                return 1
            return 0
        return _run_observed(args, run_chaos_command)

    if args.command == "audit":
        from repro.obs.events import audit_workload

        result = audit_workload(args.workload, scale=args.scale,
                                seed=args.seed, backend=args.backend,
                                policy=args.policy,
                                associativity=args.assoc)
        print(result.render())
        print(result.recorder.render(top=args.top))
        return 0 if result.ok else 1

    if args.command == "verify-kernel":
        from repro.memory.kernel import verify_kernel

        report = verify_kernel(
            workloads=args.workloads, trials=args.trials,
            seed=args.seed, scale=args.scale,
        )
        print(report.render())
        return 0 if report.ok else 1

    if args.command == "verify-grid":
        from repro.evaluation.verify_grid import verify_grid

        report = verify_grid(
            workloads=args.workloads, seed=args.seed,
            scale=args.scale,
        )
        print(report.render())
        return 0 if report.ok else 1

    if args.command == "report":
        from repro.evaluation.reportgen import generate_report
        text = generate_report(scale=args.scale, seed=args.seed,
                               charts=not args.no_charts)
        print(text)
        if args.output:
            import pathlib
            pathlib.Path(args.output).write_text(text + "\n")
        return 0

    if args.command == "pressure":
        from repro.analysis import (
            cache_set_pressure,
            render_pressure_table,
        )
        from repro.traces.layout import LinkedImage

        session = _session(args)
        bench = session.workbench
        image = LinkedImage(bench.program, bench.memory_objects)
        pressures = cache_set_pressure(image, bench.config.cache,
                                       session.conflict_graph())
        print(render_pressure_table(pressures, top=args.top))
        return 0

    return 1


if __name__ == "__main__":
    sys.exit(main())
