"""Benchmark registry: name -> workload with its paper parameters.

Each entry bundles the program with the experimental parameters the
paper pairs it with ("Instruction cache of size 2kB, 1kB and 128 Bytes
was assumed for the mpeg, g721 and adpcm benchmarks, respectively",
section 6; scratchpad/loop-cache sizes from table 1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.memory.cache import CacheConfig
from repro.program.program import Program
from repro.workloads import mediabench
from repro.workloads.builder import Loop, ProgramBuilder, Seq, Straight


@dataclass(frozen=True)
class Workload:
    """A benchmark plus its experiment parameters.

    Attributes:
        name: benchmark name.
        program: the compiled program.
        cache: the I-cache the paper pairs with this benchmark.
        spm_sizes: the scratchpad/loop-cache sizes swept in table 1.
        description: one-line provenance note.
    """

    name: str
    program: Program
    cache: CacheConfig
    spm_sizes: tuple[int, ...]
    description: str


def _build_tiny(scale: float) -> Program:
    """A minimal two-loop workload for fast tests and the quickstart."""
    trip = max(1, round(60 * scale))
    builder = ProgramBuilder("tiny")
    builder.add_function("main", Seq([
        Straight(4),
        Loop(trip=trip, body=Seq([
            Straight(6),
            Loop(trip=4, body=Straight(8)),
            Straight(4),
        ])),
        Straight(4),
    ]))
    return builder.build(entry="main")


def get_workload(name: str, scale: float = 1.0) -> Workload:
    """Build a registered workload.

    Args:
        name: one of :func:`available_workloads`.
        scale: outer-loop trip-count multiplier (tests use < 1).

    Raises:
        WorkloadError: for an unknown name.
    """
    if name == "adpcm":
        return Workload(
            name="adpcm",
            program=mediabench.build_adpcm(scale),
            cache=CacheConfig(size=128, line_size=16, associativity=1),
            spm_sizes=(64, 128, 256),
            description="ADPCM codec model, ~1 kB code, 128 B I-cache",
        )
    if name == "g721":
        return Workload(
            name="g721",
            program=mediabench.build_g721(scale),
            cache=CacheConfig(size=1024, line_size=16, associativity=1),
            spm_sizes=(128, 256, 512, 1024),
            description="G.721 transcoder model, ~4.7 kB code, "
                        "1 kB I-cache",
        )
    if name == "mpeg":
        return Workload(
            name="mpeg",
            program=mediabench.build_mpeg(scale),
            cache=CacheConfig(size=2048, line_size=16, associativity=1),
            spm_sizes=(128, 256, 512, 1024),
            description="MPEG-2 encoder model, ~19.5 kB code, "
                        "2 kB I-cache",
        )
    if name == "epic":
        return Workload(
            name="epic",
            program=mediabench.build_epic(scale),
            cache=CacheConfig(size=1024, line_size=16, associativity=1),
            spm_sizes=(128, 256, 512),
            description="EPIC wavelet compression model, ~8 kB code, "
                        "1 kB I-cache",
        )
    if name == "jpeg":
        return Workload(
            name="jpeg",
            program=mediabench.build_jpeg(scale),
            cache=CacheConfig(size=512, line_size=16, associativity=1),
            spm_sizes=(128, 256, 512),
            description="phased JPEG encoder model for the overlay "
                        "extension",
        )
    if name == "tiny":
        return Workload(
            name="tiny",
            program=_build_tiny(scale),
            cache=CacheConfig(size=128, line_size=16, associativity=1),
            spm_sizes=(64, 128),
            description="minimal nested-loop smoke workload",
        )
    raise WorkloadError(
        f"unknown workload {name!r}; available: {available_workloads()}"
    )


def available_workloads() -> tuple[str, ...]:
    """Names accepted by :func:`get_workload`."""
    return ("adpcm", "g721", "mpeg", "jpeg", "epic", "tiny")
