"""A structured-code DSL compiled to basic blocks.

Hand-wiring basic blocks (fall-through edges, branch targets, behaviour
objects) is error-prone, so workloads are written as *statement trees*:

>>> builder = ProgramBuilder("demo")
>>> builder.add_function("main", Seq([
...     Straight(4),
...     Loop(trip=16, body=Seq([Straight(8), Call("leaf")])),
...     If(prob=0.25, then=Straight(6), els=Straight(2)),
... ]))
>>> builder.add_function("leaf", Straight(5))
>>> program = builder.build(entry="main")

The compiler emits one fall-through chain per function's main flow;
``then`` branches of ``If`` statements become separate chains ending in
explicit jumps back to the join point, exactly like compiler-generated
code laid out for the fall-through-biased case.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.errors import WorkloadError
from repro.isa import (
    Instruction,
    make_alu,
    make_branch,
    make_call,
    make_jump,
    make_load,
    make_return,
    make_store,
)
from repro.program.basicblock import BasicBlock
from repro.program.behavior import (
    BranchBehavior,
    FixedTrip,
    TakenProbability,
)
from repro.program.function import Function
from repro.program.program import Program

# ----------------------------------------------------------------------
# Statement tree
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Straight:
    """*count* straight-line instructions (a deterministic ALU/LOAD/STORE
    mix)."""

    count: int

    def __post_init__(self) -> None:
        if self.count < 0:
            raise WorkloadError(f"negative instruction count: {self.count}")


@dataclass(frozen=True)
class Loop:
    """A counted loop executing its body exactly *trip* times per entry."""

    trip: int
    body: "Stmt"

    def __post_init__(self) -> None:
        if self.trip < 1:
            raise WorkloadError(f"loop trip must be >= 1: {self.trip}")


@dataclass(frozen=True)
class WhileProb:
    """A do-while loop continuing with probability *prob* per iteration."""

    prob: float
    body: "Stmt"

    def __post_init__(self) -> None:
        if not 0.0 <= self.prob < 1.0:
            raise WorkloadError(
                f"continue probability must be in [0, 1): {self.prob}"
            )


@dataclass(frozen=True)
class If:
    """A two-way branch taken (to *then*) with probability *prob*."""

    prob: float
    then: "Stmt"
    els: Union["Stmt", None] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.prob <= 1.0:
            raise WorkloadError(f"probability out of range: {self.prob}")


@dataclass(frozen=True)
class Call:
    """A call to another function of the program."""

    target: str


@dataclass(frozen=True)
class Seq:
    """A sequence of statements."""

    items: tuple

    def __init__(self, items) -> None:
        object.__setattr__(self, "items", tuple(items))


Stmt = Union[Straight, Loop, WhileProb, If, Call, Seq]

# ----------------------------------------------------------------------
# Compilation
# ----------------------------------------------------------------------

#: Deterministic instruction mix for straight-line code (cycle of 20).
_MIX_PATTERN = (
    "a a l a a s a l a a a l a s a a l a a s".split()
)
_MAKERS = {"a": make_alu, "l": make_load, "s": make_store}


def _mix_instruction(index: int) -> Instruction:
    return _MAKERS[_MIX_PATTERN[index % len(_MIX_PATTERN)]]()


class _Proto:
    """A block under construction (terminator/fallthrough unresolved)."""

    __slots__ = ("instructions", "terminator", "behavior", "labels")

    def __init__(self) -> None:
        self.instructions: list[Instruction] = []
        # terminator: None | ("branch", label) | ("jump", label)
        #           | ("return",) | ("call", function)
        self.terminator: tuple | None = None
        self.behavior: BranchBehavior | None = None
        self.labels: list[str] = []


class _FunctionAssembler:
    """Compiles one function's statement tree into basic blocks."""

    def __init__(self, function_name: str, known_functions: set[str]
                 ) -> None:
        self._name = function_name
        self._known = known_functions
        self._protos: list[_Proto] = []
        self._current = _Proto()
        self._pending_labels: list[str] = []
        self._mix_index = 0
        self._label_counter = 0
        self._deferred: list[list[_Proto]] = []

    # -- emission helpers ---------------------------------------------------

    def _new_label(self, hint: str) -> str:
        self._label_counter += 1
        return f"{hint}{self._label_counter}"

    def _attach_pending(self) -> None:
        if self._pending_labels:
            self._current.labels.extend(self._pending_labels)
            self._pending_labels = []

    def _emit(self, instruction: Instruction) -> None:
        self._attach_pending()
        self._current.instructions.append(instruction)

    def _cut(self, terminator: tuple | None = None,
             behavior: BranchBehavior | None = None) -> None:
        """Close the current proto.

        A proto with neither instructions nor labels is dropped; one with
        only pending labels leaves the labels pending for the next proto.
        """
        self._attach_pending()
        proto = self._current
        if not proto.instructions and terminator is None:
            # Nothing emitted: keep labels pending for the next proto.
            self._pending_labels = proto.labels + self._pending_labels
            self._current = _Proto()
            return
        proto.terminator = terminator
        proto.behavior = behavior
        self._protos.append(proto)
        self._current = _Proto()

    def _place_label(self, label: str) -> None:
        if self._current.instructions:
            self._cut()
        self._pending_labels.append(label)

    # -- statement compilation ------------------------------------------------

    def compile(self, stmt: Stmt) -> None:
        """Compile one statement into the current flow."""
        if isinstance(stmt, Seq):
            for item in stmt.items:
                self.compile(item)
        elif isinstance(stmt, Straight):
            for _ in range(stmt.count):
                self._emit(_mix_instruction(self._mix_index))
                self._mix_index += 1
        elif isinstance(stmt, Call):
            if stmt.target not in self._known:
                raise WorkloadError(
                    f"{self._name}: call to unknown function "
                    f"{stmt.target!r}"
                )
            self._attach_pending()
            self._cut(terminator=("call", stmt.target))
        elif isinstance(stmt, Loop):
            self._compile_loop(stmt.body, FixedTrip(stmt.trip))
        elif isinstance(stmt, WhileProb):
            self._compile_loop(stmt.body, TakenProbability(stmt.prob))
        elif isinstance(stmt, If):
            self._compile_if(stmt)
        else:
            raise WorkloadError(f"unknown statement type: {stmt!r}")

    def _compile_loop(self, body: Stmt, behavior: BranchBehavior) -> None:
        head = self._new_label("loop")
        self._cut()  # fall into the loop head
        if self._pending_labels:
            # An enclosing loop header (or if-join) would otherwise
            # share this block; emit the loop's init code so every
            # natural loop keeps a distinct header (matters for loop-
            # bound analyses).
            self._emit(_mix_instruction(self._mix_index))
            self._mix_index += 1
            self._cut()
        self._place_label(head)
        self.compile(body)
        self._cut(terminator=("branch", head), behavior=behavior)

    def _compile_if(self, stmt: If) -> None:
        then_label = self._new_label("then")
        join_label = self._new_label("join")
        self._cut(terminator=("branch", then_label),
                  behavior=TakenProbability(stmt.prob))
        if stmt.els is not None:
            self.compile(stmt.els)
        self._cut()  # falls through to the join point
        # Compile the then-branch out of line, ending with a jump back.
        outer_protos = self._protos
        outer_current = self._current
        outer_pending = self._pending_labels
        self._protos = []
        self._current = _Proto()
        self._pending_labels = [then_label]
        self.compile(stmt.then)
        self._cut(terminator=("jump", join_label))
        then_protos = self._protos
        if not then_protos or then_label not in then_protos[0].labels:
            raise WorkloadError(
                f"{self._name}: empty then-branch could not be labelled"
            )
        self._deferred.append(then_protos)
        self._protos = outer_protos
        self._current = outer_current
        self._pending_labels = outer_pending
        self._place_label(join_label)

    # -- finalisation ---------------------------------------------------------

    def finish(self) -> Function:
        """Terminate the flow, resolve labels, and build the function."""
        self._cut(terminator=("return",))
        if self._pending_labels:
            # Labels waiting at the very end (e.g. an If as the last
            # statement): bind them to a dedicated return block.
            self._attach_pending()
            self._cut(terminator=("return",))
        protos = list(self._protos)
        for chain in self._deferred:
            protos.extend(chain)
        if not protos:
            only = _Proto()
            only.terminator = ("return",)
            protos = [only]

        names = [f"{self._name}.b{i}" for i in range(len(protos))]
        label_to_name: dict[str, str] = {}
        for proto, name in zip(protos, names):
            for label in proto.labels:
                if label in label_to_name:
                    raise WorkloadError(
                        f"{self._name}: duplicate label {label!r}"
                    )
                label_to_name[label] = name

        blocks: list[BasicBlock] = []
        for index, proto in enumerate(protos):
            instructions = list(proto.instructions)
            behavior = proto.behavior
            fallthrough: str | None = None
            terminator = proto.terminator
            if terminator is None:
                fallthrough = self._next_name(names, index, proto)
            elif terminator[0] == "branch":
                instructions.append(
                    make_branch(label_to_name[terminator[1]])
                )
                fallthrough = self._next_name(names, index, proto)
            elif terminator[0] == "jump":
                instructions.append(make_jump(label_to_name[terminator[1]]))
            elif terminator[0] == "call":
                instructions.append(make_call(terminator[1]))
                fallthrough = self._next_name(names, index, proto)
            elif terminator[0] == "return":
                instructions.append(make_return())
            else:
                raise WorkloadError(f"bad terminator {terminator!r}")
            blocks.append(
                BasicBlock(
                    name=names[index],
                    instructions=instructions,
                    fallthrough=fallthrough,
                    behavior=behavior,
                )
            )
        return Function(self._name, blocks)

    def _next_name(self, names: list[str], index: int,
                   proto: _Proto) -> str:
        if index + 1 >= len(names):
            raise WorkloadError(
                f"{self._name}: block {names[index]!r} falls off the "
                "end of the function"
            )
        return names[index + 1]


class ProgramBuilder:
    """Builds a :class:`Program` from per-function statement trees."""

    def __init__(self, name: str) -> None:
        self._name = name
        self._specs: dict[str, Stmt] = {}

    def add_function(self, name: str, body: Stmt) -> "ProgramBuilder":
        """Register a function (bodies may call functions registered
        later)."""
        if name in self._specs:
            raise WorkloadError(f"duplicate function {name!r}")
        self._specs[name] = body
        return self

    def build(self, entry: str = "main") -> Program:
        """Compile all functions and assemble the program."""
        if entry not in self._specs:
            raise WorkloadError(f"entry function {entry!r} not registered")
        known = set(self._specs)
        functions = []
        for name, body in self._specs.items():
            assembler = _FunctionAssembler(name, known)
            assembler.compile(body)
            functions.append(assembler.finish())
        return Program(functions=functions, entry=entry, name=self._name)
