"""Workload construction: a structured-code DSL and benchmark models.

:mod:`repro.workloads.builder` compiles a tree of structured statements
(straight-line code, counted loops, probabilistic branches, calls) into
a validated :class:`~repro.program.program.Program`.
:mod:`repro.workloads.mediabench` models the three MediaBench codecs of
the paper's evaluation (adpcm, g721, mpeg) at their published code
sizes; :mod:`repro.workloads.synthetic` generates seeded random programs
for property-based testing; :mod:`repro.workloads.registry` maps names
to workloads.
"""

from repro.workloads.builder import (
    Call,
    If,
    Loop,
    ProgramBuilder,
    Seq,
    Straight,
    WhileProb,
)
from repro.workloads.registry import available_workloads, get_workload
from repro.workloads.synthetic import random_program

__all__ = [
    "Call",
    "If",
    "Loop",
    "ProgramBuilder",
    "Seq",
    "Straight",
    "WhileProb",
    "available_workloads",
    "get_workload",
    "random_program",
]
