"""MediaBench-like benchmark models (adpcm, g721, mpeg).

The paper evaluates CASA on a subset of MediaBench with code sizes of
1 kB (adpcm), 4.7 kB (g721) and 19.5 kB (mpeg) — we cannot ship the
original binaries, so each benchmark is modelled structurally: the same
code size, the same kind of hot-loop structure (sample loops calling
codec kernels; macroblock loops alternating between DCT, quantisation,
motion estimation and VLC kernels) and realistic amounts of cold code
(initialisation, headers, error paths).

Two properties drive the paper's results and are reproduced here:

* the *hot working set* (the kernels the inner loop alternates through)
  exceeds — or heavily conflicts in — the benchmark's I-cache
  (128 B / 1 kB / 2 kB for adpcm / g721 / mpeg);
* hot kernels are interleaved with cold code in link order, as in real
  binaries, so their direct-mapped cache mappings collide.

The ``scale`` parameter multiplies the outer-loop trip counts so tests
can run the same structures quickly.
"""

from __future__ import annotations

from repro.program.program import Program
from repro.workloads.builder import (
    Call,
    If,
    Loop,
    ProgramBuilder,
    Seq,
    Straight,
    WhileProb,
)


def _scaled(trip: int, scale: float) -> int:
    """Scale an outer-loop trip count, keeping at least one iteration."""
    return max(1, round(trip * scale))


def _cold_function(instructions: int) -> Seq:
    """A function body that a given input never executes hot.

    Structure: a little straight code, one small loop, an error branch.
    These functions pad the image like real parsing/setup code does.
    """
    per_loop = max(4, instructions // 4)
    remainder = max(1, instructions - 2 * per_loop - 4)
    return Seq([
        Straight(remainder),
        Loop(trip=2, body=Straight(per_loop)),
        If(prob=0.0, then=Straight(per_loop), els=Straight(2)),
    ])


# ----------------------------------------------------------------------
# adpcm — 1 kB of code, one hot sample loop calling coder and decoder
# ----------------------------------------------------------------------


def build_adpcm(scale: float = 1.0) -> Program:
    """ADPCM speech codec model (~1 kB of code).

    The encoder and decoder kernels alternate once per sample; with the
    paper's tiny 128-byte I-cache they thrash each other's lines.
    """
    samples = _scaled(900, scale)
    builder = ProgramBuilder("adpcm")
    builder.add_function("main", Seq([
        Straight(12),
        Call("adpcm_init"),
        Loop(trip=samples, body=Seq([
            Straight(3),
            Call("adpcm_coder"),
            Straight(2),
            Call("adpcm_decoder"),
            Straight(2),
        ])),
        Straight(8),
    ]))
    builder.add_function("adpcm_init", _cold_function(56))
    builder.add_function("adpcm_coder", Seq([
        Straight(6),
        If(prob=0.5, then=Straight(5), els=Straight(3)),
        Straight(8),
        Call("quantize_sample"),
        Straight(7),
        If(prob=0.3, then=Straight(4), els=None),
        Straight(5),
    ]))
    builder.add_function("adpcm_decoder", Seq([
        Straight(7),
        Call("step_update"),
        Straight(9),
        If(prob=0.5, then=Straight(4), els=Straight(4)),
        Straight(6),
    ]))
    builder.add_function("quantize_sample", Seq([
        Straight(5),
        Loop(trip=4, body=Straight(6)),
        Straight(4),
    ]))
    builder.add_function("step_update", Seq([
        Straight(6),
        If(prob=0.4, then=Straight(5), els=Straight(3)),
        Straight(5),
    ]))
    # Cold I/O helpers (never called for this input) pad the image to
    # the published ~1 kB.
    builder.add_function("pack_output", _cold_function(36))
    builder.add_function("unpack_input", _cold_function(32))
    return builder.build(entry="main")


# ----------------------------------------------------------------------
# g721 — 4.7 kB of code, CCITT G.721 ADPCM transcoder structure
# ----------------------------------------------------------------------


def build_g721(scale: float = 1.0) -> Program:
    """G.721 transcoder model (~4.7 kB of code).

    The hot frame loop drives a pipeline of kernels (predictors,
    quantiser, reconstruction, adaptation) whose combined footprint is
    around 1.5 kB — conflicting in the paper's 1 kB I-cache — with cold
    setup/packing code interleaved between them in link order.
    """
    frames = _scaled(500, scale)
    builder = ProgramBuilder("g721")
    builder.add_function("main", Seq([
        Straight(16),
        Call("g721_init"),
        Loop(trip=frames, body=Seq([
            Straight(4),
            Call("g721_encoder"),
            Straight(3),
            Call("g721_decoder"),
            Straight(3),
        ])),
        Call("g721_flush"),
        Straight(10),
    ]))
    builder.add_function("g721_init", _cold_function(90))
    builder.add_function("g721_encoder", Seq([
        Straight(10),
        Call("predictor_zero"),
        Straight(5),
        Call("predictor_pole"),
        Straight(7),
        Call("quan"),
        Straight(6),
        Call("update"),
        Straight(8),
    ]))
    builder.add_function("tone_detector", _cold_function(150))
    builder.add_function("predictor_zero", Seq([
        Straight(6),
        Loop(trip=6, body=Seq([Straight(8), Call("fmult")])),
        Straight(6),
    ]))
    builder.add_function("io_pack_unpack", _cold_function(140))
    builder.add_function("fmult", Seq([
        Straight(8),
        If(prob=0.5, then=Straight(6), els=Straight(4)),
        Straight(7),
    ]))
    builder.add_function("predictor_pole", Seq([
        Straight(4),
        Loop(trip=2, body=Seq([Straight(7), Call("fmult")])),
        Straight(4),
    ]))
    builder.add_function("transition_detect", _cold_function(110))
    builder.add_function("quan", Seq([
        Straight(4),
        WhileProb(prob=0.55, body=Straight(6)),
        Straight(5),
    ]))
    builder.add_function("law_conversion", _cold_function(160))
    builder.add_function("update", Seq([
        Straight(12),
        Loop(trip=6, body=Straight(9)),
        If(prob=0.2, then=Straight(10), els=Straight(5)),
        Loop(trip=2, body=Straight(8)),
        Straight(9),
    ]))
    builder.add_function("adaptive_predictor_reset", _cold_function(130))
    builder.add_function("g721_decoder", Seq([
        Straight(9),
        Call("reconstruct"),
        Straight(6),
        Call("update"),
        Straight(6),
    ]))
    builder.add_function("reconstruct", Seq([
        Straight(8),
        If(prob=0.5, then=Straight(6), els=Straight(5)),
        Straight(7),
    ]))
    builder.add_function("g721_flush", _cold_function(70))
    return builder.build(entry="main")


# ----------------------------------------------------------------------
# epic — wavelet image compression (additional MediaBench member)
# ----------------------------------------------------------------------


def build_epic(scale: float = 1.0) -> Program:
    """EPIC wavelet image-compression model (~8 kB of code).

    Not in the paper's table 1, but a MediaBench member with a
    different hot structure: a pyramid of filter passes (the same
    convolution kernels re-entered per level with shrinking extents),
    then run-length/huffman output — deep reuse of two medium kernels
    instead of many alternating ones.
    """
    levels = 4
    base_rows = _scaled(40, scale)
    builder = ProgramBuilder("epic")
    level_body = []
    for level in range(levels):
        rows = max(1, base_rows >> level)
        level_body.extend([
            Straight(4),
            Loop(trip=rows, body=Seq([
                Straight(3),
                Call("filter_horizontal"),
                Call("filter_vertical"),
            ])),
        ])
    builder.add_function("main", Seq([
        Straight(16),
        Call("epic_init"),
        Seq(level_body),
        Straight(5),
        Loop(trip=_scaled(60, scale), body=Seq([
            Straight(3),
            Call("quantize_band"),
            Call("rle_encode"),
        ])),
        Call("write_stream"),
        Straight(10),
    ]))
    builder.add_function("epic_init", _cold_function(180))
    builder.add_function("filter_horizontal", Seq([
        Straight(10),
        Loop(trip=6, body=Straight(14)),
        Straight(8),
    ]))
    builder.add_function("reflect_boundaries", _cold_function(160))
    builder.add_function("filter_vertical", Seq([
        Straight(10),
        Loop(trip=6, body=Straight(13)),
        Straight(8),
    ]))
    builder.add_function("build_pyramid_tables", _cold_function(200))
    builder.add_function("quantize_band", Seq([
        Straight(8),
        Loop(trip=8, body=Seq([
            Straight(6),
            If(prob=0.35, then=Straight(5), els=Straight(3)),
        ])),
        Straight(7),
    ]))
    builder.add_function("bit_io", _cold_function(150))
    builder.add_function("rle_encode", Seq([
        Straight(8),
        WhileProb(prob=0.7, body=Seq([
            Straight(6),
            If(prob=0.25, then=Straight(7), els=Straight(3)),
        ])),
        Straight(8),
    ]))
    builder.add_function("write_stream", _cold_function(140))
    cold = {
        "unepic_support": 260,
        "parse_args_epic": 220,
        "fileio_epic": 240,
        "error_paths_epic": 190,
    }
    for name, size in cold.items():
        builder.add_function(name, _cold_function(size))
    return builder.build(entry="main")


# ----------------------------------------------------------------------
# jpeg — a phased encoder for the overlay extension
# ----------------------------------------------------------------------


def build_jpeg(scale: float = 1.0) -> Program:
    """JPEG-encoder model with three sequential top-level phases.

    Unlike the single-hot-loop codecs above, a JPEG encoder runs three
    *consecutive* passes over the image — colour conversion, forward
    DCT + quantisation, entropy coding — each with its own working set.
    This is the workload shape where the overlay extension (dynamic
    copying, the paper's announced future work) pays: a static
    allocation must split the scratchpad across all three working sets,
    an overlay allocation re-loads it at each phase boundary.
    """
    rows = _scaled(260, scale)
    builder = ProgramBuilder("jpeg")
    builder.add_function("main", Seq([
        Straight(14),
        Call("jpeg_init"),
        # phase 1: colour conversion
        Loop(trip=rows, body=Seq([
            Straight(3),
            Call("rgb_to_ycc"),
            Straight(2),
        ])),
        Straight(6),
        # phase 2: forward DCT + quantisation
        Loop(trip=rows, body=Seq([
            Straight(3),
            Call("forward_dct"),
            Call("quantize"),
            Straight(2),
        ])),
        Straight(6),
        # phase 3: entropy coding
        Loop(trip=rows, body=Seq([
            Straight(3),
            Call("huffman_encode"),
            Straight(2),
        ])),
        Call("write_jfif"),
        Straight(8),
    ]))
    builder.add_function("jpeg_init", _cold_function(120))
    builder.add_function("rgb_to_ycc", Seq([
        Straight(16),
        Loop(trip=4, body=Straight(22)),
        Straight(12),
    ]))
    builder.add_function("downsample_tables", _cold_function(130))
    builder.add_function("forward_dct", Seq([
        Straight(12),
        Loop(trip=4, body=Straight(24)),
        Straight(10),
    ]))
    builder.add_function("quantize", Seq([
        Straight(10),
        Loop(trip=8, body=Seq([
            Straight(6),
            If(prob=0.4, then=Straight(4), els=Straight(2)),
        ])),
        Straight(8),
    ]))
    builder.add_function("marker_tables", _cold_function(140))
    builder.add_function("huffman_encode", Seq([
        Straight(12),
        WhileProb(prob=0.75, body=Seq([
            Straight(7),
            If(prob=0.3, then=Straight(6), els=Straight(3)),
        ])),
        Straight(10),
    ]))
    builder.add_function("write_jfif", _cold_function(110))
    return builder.build(entry="main")


# ----------------------------------------------------------------------
# mpeg — 19.5 kB of code, MPEG-2 encoder inner structure
# ----------------------------------------------------------------------


def build_mpeg(scale: float = 1.0) -> Program:
    """MPEG-2 encoder model (~19.5 kB of code).

    The macroblock loop alternates between motion estimation, forward
    DCT, quantisation, VLC and the reconstruction path (inverse
    quantisation + IDCT).  The hot kernels total ≈ 3.5 kB — well above
    the paper's 2 kB I-cache — and are interleaved with cold header/
    table/setup code, so consecutive phases of one macroblock evict each
    other: the thrashing scenario CASA targets.
    """
    macroblocks = _scaled(70, scale)
    builder = ProgramBuilder("mpeg")
    builder.add_function("main", Seq([
        Straight(20),
        Call("mpeg_init"),
        Call("read_parameters"),
        Loop(trip=macroblocks, body=Seq([
            Straight(5),
            Call("motion_estimation"),
            Straight(4),
            Call("predict_block"),
            Call("fdct_block"),
            Straight(3),
            Call("quantize_block"),
            Call("vlc_encode_block"),
            Straight(3),
            Call("iquantize_block"),
            Call("idct_block"),
            Call("add_prediction"),
            Straight(4),
            If(prob=0.12, then=Seq([Call("rate_control"), Straight(6)]),
               els=Straight(3)),
        ])),
        Call("write_trailer"),
        Straight(12),
    ]))

    # Hot kernels interleaved with cold code, as link order would have it.
    builder.add_function("mpeg_init", _cold_function(220))
    builder.add_function("motion_estimation", Seq([
        Straight(18),
        Loop(trip=9, body=Seq([
            Straight(10),
            Call("sad_16x16"),
            If(prob=0.35, then=Straight(9), els=Straight(4)),
        ])),
        Straight(14),
    ]))
    builder.add_function("sequence_header", _cold_function(260))
    builder.add_function("sad_16x16", Seq([
        Straight(6),
        Loop(trip=4, body=Straight(26)),
        Straight(6),
    ]))
    builder.add_function("gop_header", _cold_function(180))
    builder.add_function("predict_block", Seq([
        Straight(8),
        Loop(trip=4, body=Straight(16)),
        Straight(7),
    ]))
    builder.add_function("picture_header", _cold_function(240))
    builder.add_function("fdct_block", Seq([
        Straight(8),
        Loop(trip=8, body=Seq([Straight(5), Call("dct_1d")])),
        Straight(7),
    ]))
    builder.add_function("slice_header", _cold_function(160))
    builder.add_function("dct_1d", Seq([
        Straight(64),
        If(prob=0.5, then=Straight(10), els=Straight(8)),
        Straight(40),
    ]))
    builder.add_function("macroblock_header", _cold_function(220))
    builder.add_function("quantize_block", Seq([
        Straight(8),
        Loop(trip=16, body=Seq([
            Straight(9),
            If(prob=0.4, then=Straight(5), els=Straight(3)),
        ])),
        Straight(8),
    ]))
    builder.add_function("init_quant_tables", _cold_function(200))
    builder.add_function("vlc_encode_block", Seq([
        Straight(9),
        WhileProb(prob=0.82, body=Seq([
            Straight(8),
            If(prob=0.3, then=Straight(10), els=Straight(5)),
        ])),
        Straight(9),
    ]))
    builder.add_function("init_vlc_tables", _cold_function(300))
    builder.add_function("iquantize_block", Seq([
        Straight(6),
        Loop(trip=16, body=Straight(11)),
        Straight(6),
    ]))
    builder.add_function("init_idct_tables", _cold_function(220))
    builder.add_function("idct_block", Seq([
        Straight(8),
        Loop(trip=8, body=Seq([Straight(5), Call("idct_1d")])),
        Straight(7),
    ]))
    builder.add_function("alloc_buffers", _cold_function(180))
    builder.add_function("idct_1d", Seq([
        Straight(58),
        If(prob=0.5, then=Straight(9), els=Straight(8)),
        Straight(36),
    ]))
    builder.add_function("motion_vector_bounds", _cold_function(190))
    builder.add_function("add_prediction", Seq([
        Straight(6),
        Loop(trip=4, body=Straight(14)),
        Straight(6),
    ]))
    builder.add_function("field_frame_decide", _cold_function(210))
    builder.add_function("rate_control", Seq([
        Straight(16),
        If(prob=0.5, then=Straight(9), els=Straight(7)),
        Straight(12),
    ]))

    # Remaining cold bulk: headers, tables, option/error paths.
    cold_sizes = {
        "read_parameters": 200,
        "write_trailer": 160,
        "aspect_ratio_tables": 170,
        "error_concealment": 260,
        "bitstream_align": 150,
        "putbits_flush": 140,
        "statistics_report": 230,
        "option_parsing": 280,
        "conformance_checks": 240,
    }
    for name, size in cold_sizes.items():
        builder.add_function(name, _cold_function(size))
    return builder.build(entry="main")
