"""Data-object specifications for the bundled workloads.

Mirrors the globals of the real codecs: sample buffers, quantiser
tables, predictor state.  Sizes follow the original sources (ADPCM's
89-entry step-size table, 16-entry index table, 6-tap predictors).
"""

from __future__ import annotations

from repro.data.objects import (
    DataAccessPattern,
    DataObject,
    DataSpec,
    DataUse,
)
from repro.errors import WorkloadError


def adpcm_data_spec() -> DataSpec:
    """Data objects of the adpcm codec model.

    The step-size and index tables are reused every sample (hot), the
    sample buffers stream (cold per element), the codec states are tiny
    and hammered — the classic mix where selecting tables + state for
    the scratchpad wins and streaming buffers lose.
    """
    objects = [
        DataObject("pcm_in", size=2048, element_size=2),
        DataObject("adpcm_out", size=1024, element_size=1),
        DataObject("pcm_out", size=2048, element_size=2),
        DataObject("step_table", size=356, element_size=4),
        DataObject("index_table", size=64, element_size=4),
        DataObject("coder_state", size=32, element_size=4),
        DataObject("decoder_state", size=32, element_size=4),
    ]
    uses = {
        "adpcm_coder": [
            DataUse("pcm_in", reads=1),
            DataUse("adpcm_out", writes=1),
            DataUse("step_table", reads=2,
                    pattern=DataAccessPattern.HOT_FIELDS),
            DataUse("index_table", reads=1,
                    pattern=DataAccessPattern.HOT_FIELDS),
            DataUse("coder_state", reads=2, writes=2,
                    pattern=DataAccessPattern.HOT_FIELDS),
        ],
        "adpcm_decoder": [
            DataUse("adpcm_out", reads=1),
            DataUse("pcm_out", writes=1),
            DataUse("step_table", reads=2,
                    pattern=DataAccessPattern.HOT_FIELDS),
            DataUse("index_table", reads=1,
                    pattern=DataAccessPattern.HOT_FIELDS),
            DataUse("decoder_state", reads=2, writes=2,
                    pattern=DataAccessPattern.HOT_FIELDS),
        ],
        "quantize_sample": [
            DataUse("step_table", reads=4,
                    pattern=DataAccessPattern.SEQUENTIAL),
        ],
        "step_update": [
            DataUse("step_table", reads=1,
                    pattern=DataAccessPattern.HOT_FIELDS),
            DataUse("decoder_state", reads=1, writes=1,
                    pattern=DataAccessPattern.HOT_FIELDS),
        ],
    }
    return DataSpec(objects=objects, uses=uses)


def g721_data_spec() -> DataSpec:
    """Data objects of the g721 transcoder model."""
    objects = [
        DataObject("frame_in", size=4096, element_size=2),
        DataObject("frame_out", size=4096, element_size=2),
        DataObject("quan_table", size=128, element_size=4),
        DataObject("fmult_table", size=256, element_size=4),
        DataObject("predictor_state", size=96, element_size=4),
        DataObject("reconstruct_table", size=192, element_size=4),
    ]
    uses = {
        "g721_encoder": [
            DataUse("frame_in", reads=1),
            DataUse("predictor_state", reads=2, writes=1,
                    pattern=DataAccessPattern.HOT_FIELDS),
        ],
        "g721_decoder": [
            DataUse("frame_out", writes=1),
            DataUse("predictor_state", reads=2, writes=1,
                    pattern=DataAccessPattern.HOT_FIELDS),
        ],
        "quan": [
            DataUse("quan_table", reads=3,
                    pattern=DataAccessPattern.SEQUENTIAL),
        ],
        "fmult": [
            DataUse("fmult_table", reads=2,
                    pattern=DataAccessPattern.HOT_FIELDS),
            DataUse("predictor_state", reads=1,
                    pattern=DataAccessPattern.HOT_FIELDS),
        ],
        "reconstruct": [
            DataUse("reconstruct_table", reads=2,
                    pattern=DataAccessPattern.HOT_FIELDS),
        ],
        "update": [
            DataUse("predictor_state", reads=3, writes=2,
                    pattern=DataAccessPattern.HOT_FIELDS),
        ],
    }
    return DataSpec(objects=objects, uses=uses)


def get_data_spec(workload_name: str) -> DataSpec:
    """Data spec of a named workload."""
    if workload_name == "adpcm":
        return adpcm_data_spec()
    if workload_name == "g721":
        return g721_data_spec()
    raise WorkloadError(
        f"no data spec for workload {workload_name!r} "
        "(available: adpcm, g721)"
    )
