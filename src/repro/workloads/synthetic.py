"""Seeded random program generation for property-based testing.

Generates arbitrary (but always valid and terminating) programs: a DAG
of functions whose bodies are random statement trees of bounded depth.
Termination is guaranteed because loops are counted (``Loop``) or have
continue probability < 1 (``WhileProb``) and the call graph is acyclic.
"""

from __future__ import annotations

from repro.program.program import Program
from repro.utils.rng import DeterministicRng
from repro.workloads.builder import (
    Call,
    If,
    Loop,
    ProgramBuilder,
    Seq,
    Stmt,
    Straight,
    WhileProb,
)


def _random_stmt(rng: DeterministicRng, depth: int,
                 callees: list[str],
                 deterministic: bool = False) -> Stmt:
    """One random statement; *depth* bounds nesting.

    With *deterministic* set, only fixed-trip loops and always/never
    branches are generated, so the worst-case path is statically known
    (used by the WCET property tests).
    """
    choices = ["straight", "straight", "if"]
    if depth > 0:
        choices += ["loop", "seq"]
        if not deterministic:
            choices.append("while")
    if callees:
        choices.append("call")
    kind = rng.choice(choices)
    if kind == "straight":
        return Straight(rng.uniform_int(1, 18))
    if kind == "call":
        return Call(rng.choice(callees))
    if kind == "loop":
        return Loop(
            trip=rng.uniform_int(1, 12),
            body=_random_stmt(rng, depth - 1, callees, deterministic),
        )
    if kind == "while":
        return WhileProb(
            prob=rng.uniform_int(0, 80) / 100.0,
            body=_random_stmt(rng, depth - 1, callees, deterministic),
        )
    if kind == "if":
        els = (
            _random_stmt(rng, depth - 1, callees, deterministic)
            if depth > 0 and rng.coin(0.6)
            else None
        )
        probability = (
            float(rng.coin(0.5)) if deterministic
            else rng.uniform_int(0, 100) / 100.0
        )
        return If(
            prob=probability,
            then=_random_stmt(rng, max(0, depth - 1), callees,
                              deterministic),
            els=els,
        )
    items = [
        _random_stmt(rng, depth - 1, callees, deterministic)
        for _ in range(rng.uniform_int(2, 4))
    ]
    return Seq(items)


def random_program(
    seed: int,
    num_functions: int = 4,
    max_depth: int = 3,
    deterministic: bool = False,
) -> Program:
    """Generate a random, valid, terminating program.

    Args:
        seed: determines the program completely.
        num_functions: functions to generate (>= 1); function ``f0`` is
            the entry and may call ``f1..fn``, ``f1`` may call
            ``f2..fn`` and so on (acyclic call graph).
        max_depth: statement-tree nesting bound.
        deterministic: restrict to fixed-trip loops and always/never
            branches so the execution path is input-independent.

    Returns:
        The generated program (entry function ``f0``).
    """
    rng = DeterministicRng(seed)
    names = [f"f{i}" for i in range(max(1, num_functions))]
    builder = ProgramBuilder(f"random-{seed}")
    for index, name in enumerate(names):
        callees = names[index + 1:]
        body = Seq([
            _random_stmt(rng, max_depth, callees, deterministic)
            for _ in range(rng.uniform_int(1, 3))
        ])
        builder.add_function(name, body)
    return builder.build(entry=names[0])
