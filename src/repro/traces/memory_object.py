"""Memory objects (traces) and their fragments.

A :class:`MemoryObject` holds an ordered list of :class:`Fragment`\\ s.
Each fragment covers a contiguous instruction range of one basic block
(usually the whole block; large blocks may be split across fragments).
When control must continue at code that is no longer physically adjacent
after trace formation, an unconditional jump is *appended* to a fragment:

* ``JumpKind.ALWAYS`` — a continuation jump to the rest of the same
  block or to the fall-through successor on a path that is always taken
  when the fragment finishes; fetched on every execution.
* ``JumpKind.ON_FALLTHROUGH`` — replaces the fall-through exit of the
  trace's final block; fetched only when the branch at the end of the
  block is not taken.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import TraceError
from repro.isa import INSTRUCTION_SIZE
from repro.utils.bitops import align_up


class JumpKind(enum.Enum):
    """When an appended jump is fetched."""

    NONE = "none"
    ALWAYS = "always"
    ON_FALLTHROUGH = "on_fallthrough"


@dataclass(frozen=True)
class Fragment:
    """A contiguous instruction range ``[start, end)`` of one basic block.

    Attributes:
        block: name of the source basic block.
        start: index of the first instruction covered.
        end: one past the last instruction covered.
        appended_jump: whether a relocation jump follows the fragment,
            and when it is fetched.
        jump_target: symbolic target of the appended jump (a block name),
            recorded for listings; ``None`` when there is no jump.
    """

    block: str
    start: int
    end: int
    appended_jump: JumpKind = JumpKind.NONE
    jump_target: str | None = None

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise TraceError(
                f"fragment of {self.block!r} has empty range "
                f"[{self.start}, {self.end})"
            )
        if (self.appended_jump is JumpKind.NONE) != (self.jump_target is None):
            raise TraceError(
                f"fragment of {self.block!r}: appended jump and target "
                "must be set together"
            )

    @property
    def num_instructions(self) -> int:
        """Instructions covered, excluding any appended jump."""
        return self.end - self.start

    @property
    def num_words_with_jump(self) -> int:
        """Instructions covered plus the appended jump (if any)."""
        extra = 0 if self.appended_jump is JumpKind.NONE else 1
        return self.num_instructions + extra

    @property
    def size(self) -> int:
        """Fragment size in bytes including the appended jump."""
        return self.num_words_with_jump * INSTRUCTION_SIZE


@dataclass
class MemoryObject:
    """A trace: the unit of scratchpad allocation.

    Attributes:
        name: unique identifier (``T0``, ``T1`` ... in creation order).
        fragments: the fragments in physical order.
        line_size: cache-line size the object is padded to.
    """

    name: str
    fragments: list[Fragment]
    line_size: int

    def __post_init__(self) -> None:
        if not self.fragments:
            raise TraceError(f"memory object {self.name!r} has no fragments")
        if self.line_size < INSTRUCTION_SIZE:
            raise TraceError(
                f"line size {self.line_size} smaller than one instruction"
            )

    @property
    def unpadded_size(self) -> int:
        """Size in bytes of the real instructions (incl. appended jumps).

        This is the size that counts against the scratchpad capacity —
        the NOP padding is stripped before copying to the scratchpad
        (paper, section 4, discussion of eq. 17).
        """
        return sum(fragment.size for fragment in self.fragments)

    @property
    def padded_size(self) -> int:
        """Size in bytes after NOP padding to the next line boundary.

        This is the main-memory footprint; it makes every trace start
        and end on a cache-line boundary so there is a one-to-one
        relationship between cache misses and traces (section 3.2).
        """
        return align_up(self.unpadded_size, self.line_size)

    @property
    def num_lines(self) -> int:
        """Cache lines occupied in main memory."""
        return self.padded_size // self.line_size

    @property
    def block_names(self) -> list[str]:
        """Names of the blocks contributing fragments, in order."""
        seen: list[str] = []
        for fragment in self.fragments:
            if not seen or seen[-1] != fragment.block:
                seen.append(fragment.block)
        return seen

    def describe(self) -> str:
        """One-line human-readable summary."""
        blocks = ",".join(self.block_names)
        return (
            f"{self.name}: {self.unpadded_size}B "
            f"(padded {self.padded_size}B) blocks=[{blocks}]"
        )
