"""Linking: assigning addresses to memory objects and building fetch plans.

The :class:`LinkedImage` is the reproduction's linker.  Given the memory
objects, the set allocated to the scratchpad and a placement policy, it
assigns every fragment an address and precomputes, for every basic block,
the :class:`BlockFetchPlan` — the exact words the core fetches when the
block executes.  The memory-hierarchy simulator replays an executed block
sequence through these plans.

Two placement policies model the paper's key distinction (section 2):

* :attr:`Placement.COPY` — scratchpad-resident objects are *copied*; the
  main-memory image keeps its layout, so the cache mapping of the
  remaining code is unchanged (CASA's assumption).
* :attr:`Placement.COMPACT` — scratchpad-resident objects are *moved*
  and the remaining objects are compacted, shifting their addresses and
  hence their cache mapping (Steinke et al.'s behaviour, the source of
  the imprecision the paper criticises).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import AllocationError, LayoutError
from repro.isa import INSTRUCTION_SIZE
from repro.program.program import Program
from repro.traces.memory_object import Fragment, JumpKind, MemoryObject

#: Default base address of the cacheable main-memory code region.
MAIN_BASE = 0x0000_0000
#: Default base address of the (non-cacheable) scratchpad region.
SPM_BASE = 0x0040_0000


@dataclass(frozen=True)
class FetchSegment:
    """A run of consecutively fetched words.

    Attributes:
        mo_name: memory object the words belong to.
        address: byte address of the first word.
        num_words: number of instruction words fetched.
        on_spm: whether the segment resides in the scratchpad region.
    """

    mo_name: str
    address: int
    num_words: int
    on_spm: bool

    @property
    def end_address(self) -> int:
        """One past the last fetched byte."""
        return self.address + self.num_words * INSTRUCTION_SIZE


@dataclass(frozen=True)
class BlockFetchPlan:
    """Everything fetched when one basic block executes.

    Attributes:
        block: block name.
        segments: segments fetched on every execution, in order.
        tail_jump: trace-exit jump fetched only when control leaves via
            the block's fall-through edge (``None`` if the block has no
            appended exit jump).
        fallthrough: the fall-through successor the tail jump guards.
        ends_with_call: the tail jump (if any) is fetched on *return*
            from the callee rather than immediately.
        ends_with_return: executing this block pops the simulator's
            pending-call-tail stack.
    """

    block: str
    segments: tuple[FetchSegment, ...]
    tail_jump: FetchSegment | None
    fallthrough: str | None
    ends_with_call: bool
    ends_with_return: bool

    @property
    def always_fetched_words(self) -> int:
        """Words fetched on every execution of the block."""
        return sum(segment.num_words for segment in self.segments)


class Placement(enum.Enum):
    """How scratchpad-resident objects affect the main-memory image."""

    COPY = "copy"
    COMPACT = "compact"


class LinkedImage:
    """Addresses and fetch plans for one allocation decision.

    Args:
        program: the program the memory objects were derived from.
        memory_objects: all memory objects, in layout order.
        spm_resident: names of the objects allocated to the scratchpad.
        spm_size: scratchpad capacity in bytes (checked against the sum
            of unpadded sizes, eq. 17).
        placement: copy (CASA) or compact (Steinke) semantics.
        main_base: base address of the main-memory code image.
        spm_base: base address of the scratchpad region.

    Raises:
        AllocationError: if the resident set exceeds the scratchpad.
        LayoutError: if the two regions would overlap.
    """

    def __init__(
        self,
        program: Program,
        memory_objects: list[MemoryObject],
        spm_resident: set[str] | frozenset[str] = frozenset(),
        spm_size: int = 0,
        placement: Placement = Placement.COPY,
        main_base: int = MAIN_BASE,
        spm_base: int = SPM_BASE,
    ) -> None:
        self._program = program
        self._memory_objects = list(memory_objects)
        self._mo_by_name = {mo.name: mo for mo in memory_objects}
        if len(self._mo_by_name) != len(memory_objects):
            raise LayoutError("duplicate memory-object names")
        unknown = set(spm_resident) - set(self._mo_by_name)
        if unknown:
            raise AllocationError(
                f"allocated objects do not exist: {sorted(unknown)}"
            )
        self._spm_resident = frozenset(spm_resident)
        self._placement = placement

        resident_bytes = sum(
            self._mo_by_name[name].unpadded_size for name in spm_resident
        )
        if resident_bytes > spm_size:
            raise AllocationError(
                f"allocation needs {resident_bytes} bytes but the "
                f"scratchpad holds only {spm_size}"
            )
        self._spm_size = spm_size
        self._spm_used = resident_bytes

        # -- main-memory layout ----------------------------------------
        self._mo_base: dict[str, int] = {}
        self._mo_on_spm: dict[str, bool] = {}
        cursor = main_base
        for mo in memory_objects:
            on_spm = mo.name in self._spm_resident
            if placement is Placement.COPY or not on_spm:
                self._mo_base[mo.name] = cursor
                cursor += mo.padded_size
        main_end = cursor

        # -- scratchpad layout -------------------------------------------
        spm_cursor = spm_base
        for mo in memory_objects:
            if mo.name in self._spm_resident:
                self._mo_base[mo.name] = spm_cursor
                spm_cursor += mo.unpadded_size
            self._mo_on_spm[mo.name] = mo.name in self._spm_resident
        if main_end > spm_base and spm_cursor > main_base:
            if main_base < spm_cursor and spm_base < main_end:
                raise LayoutError(
                    f"main image [{main_base:#x},{main_end:#x}) overlaps "
                    f"scratchpad [{spm_base:#x},{spm_cursor:#x})"
                )

        self._main_image_size = main_end - main_base
        self._plans = self._build_plans()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def program(self) -> Program:
        """The linked program."""
        return self._program

    @property
    def memory_objects(self) -> list[MemoryObject]:
        """All memory objects in layout order."""
        return list(self._memory_objects)

    @property
    def spm_resident(self) -> frozenset[str]:
        """Names of the scratchpad-resident memory objects."""
        return self._spm_resident

    @property
    def spm_used(self) -> int:
        """Scratchpad bytes consumed by the allocation."""
        return self._spm_used

    @property
    def placement(self) -> Placement:
        """The placement policy used."""
        return self._placement

    @property
    def main_image_size(self) -> int:
        """Size of the main-memory code image, in bytes."""
        return self._main_image_size

    def memory_object(self, name: str) -> MemoryObject:
        """Look up a memory object by name."""
        return self._mo_by_name[name]

    def base_address(self, mo_name: str) -> int:
        """Base address of a memory object (SPM or main memory)."""
        return self._mo_base[mo_name]

    def on_spm(self, mo_name: str) -> bool:
        """Whether the object resides in the scratchpad."""
        return self._mo_on_spm[mo_name]

    def plan_for(self, block_name: str) -> BlockFetchPlan:
        """The fetch plan of a basic block."""
        return self._plans[block_name]

    def all_plans(self) -> dict[str, BlockFetchPlan]:
        """Fetch plans of every block (keyed by block name)."""
        return dict(self._plans)

    # ------------------------------------------------------------------
    # Plan construction
    # ------------------------------------------------------------------

    def _fragment_offsets(self) -> dict[int, int]:
        """Byte offset of every fragment (by id) inside its object."""
        offsets: dict[int, int] = {}
        for mo in self._memory_objects:
            offset = 0
            for fragment in mo.fragments:
                offsets[id(fragment)] = offset
                offset += fragment.size
        return offsets

    def _build_plans(self) -> dict[str, BlockFetchPlan]:
        offsets = self._fragment_offsets()
        fragment_home: dict[int, MemoryObject] = {}
        block_fragments: dict[str, list[Fragment]] = {}
        for mo in self._memory_objects:
            for fragment in mo.fragments:
                fragment_home[id(fragment)] = mo
                block_fragments.setdefault(fragment.block, []).append(fragment)

        plans: dict[str, BlockFetchPlan] = {}
        for block in self._program.all_blocks():
            fragments = block_fragments.get(block.name)
            if not fragments:
                raise LayoutError(
                    f"block {block.name!r} is not covered by any trace"
                )
            fragments = sorted(fragments, key=lambda f: f.start)
            self._check_block_coverage(block.name, fragments,
                                       block.num_instructions)
            segments: list[FetchSegment] = []
            tail: FetchSegment | None = None
            for fragment in fragments:
                mo = fragment_home[id(fragment)]
                base = self._mo_base[mo.name] + offsets[id(fragment)]
                on_spm = self._mo_on_spm[mo.name]
                if fragment.appended_jump is JumpKind.ON_FALLTHROUGH:
                    body_words = fragment.num_instructions
                    if body_words:
                        segments.append(
                            FetchSegment(mo.name, base, body_words, on_spm)
                        )
                    tail = FetchSegment(
                        mo.name,
                        base + body_words * INSTRUCTION_SIZE,
                        1,
                        on_spm,
                    )
                else:
                    segments.append(
                        FetchSegment(
                            mo.name, base, fragment.num_words_with_jump,
                            on_spm,
                        )
                    )
            plans[block.name] = BlockFetchPlan(
                block=block.name,
                segments=tuple(segments),
                tail_jump=tail,
                fallthrough=block.fallthrough,
                ends_with_call=block.ends_with_call,
                ends_with_return=block.ends_with_return,
            )
        return plans

    @staticmethod
    def _check_block_coverage(
        name: str, fragments: list[Fragment], num_instructions: int
    ) -> None:
        expected = 0
        for fragment in fragments:
            if fragment.start != expected:
                raise LayoutError(
                    f"block {name!r}: fragment gap at instruction "
                    f"{expected} (fragment starts at {fragment.start})"
                )
            expected = fragment.end
        if expected != num_instructions:
            raise LayoutError(
                f"block {name!r}: fragments cover {expected} of "
                f"{num_instructions} instructions"
            )
