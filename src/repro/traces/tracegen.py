"""Trace formation (profile-guided, Tomiyama/Yasuura-style).

The program's blocks fall into *fall-through chains*: maximal sequences
``b1 -> b2 -> ...`` linked by fall-through edges (the physical adjacency a
compiler would emit).  Trace generation walks each chain and cuts it into
traces:

* at **cold edges** — fall-through edges executed fewer than
  ``min_fallthrough_count`` times, so rarely-taken paths do not inflate
  the memory objects competing for scratchpad space;
* at the **size cap** — a trace must fit the scratchpad
  ("*they are smaller than the scratchpad size*", section 3.2), so a
  chain is split once adding another block would exceed
  ``max_trace_size``; a single over-sized block is split into fragments
  connected by unconditional continuation jumps.

Every cut point gets an appended unconditional jump so the resulting
trace is an atomic, relocatable unit ("*traces always end with an
unconditional jump*").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TraceError
from repro.isa import INSTRUCTION_SIZE, Opcode
from repro.obs import metrics
from repro.obs.trace import span
from repro.program.basicblock import BasicBlock
from repro.program.profile import ProfileData
from repro.program.program import Program
from repro.traces.memory_object import Fragment, JumpKind, MemoryObject

#: Size of an appended unconditional jump in bytes.
_JUMP_SIZE = INSTRUCTION_SIZE


@dataclass(frozen=True)
class TraceGenConfig:
    """Parameters of trace formation.

    Attributes:
        line_size: I-cache line size in bytes; traces are NOP-padded to
            this boundary.
        max_trace_size: upper bound on a trace's unpadded size in bytes
            (normally the smallest scratchpad size of the experiment).
        min_fallthrough_count: chains are cut at fall-through edges
            executed fewer times than this (1 cuts only never-taken
            edges; 0 disables cold cutting).
    """

    line_size: int = 16
    max_trace_size: int = 1 << 30
    min_fallthrough_count: int = 1

    def __post_init__(self) -> None:
        if self.line_size < INSTRUCTION_SIZE:
            raise TraceError(
                f"line size {self.line_size} smaller than an instruction"
            )
        if self.max_trace_size < self.line_size:
            raise TraceError(
                f"max trace size {self.max_trace_size} smaller than a "
                f"cache line ({self.line_size})"
            )
        if self.min_fallthrough_count < 0:
            raise TraceError("min_fallthrough_count must be >= 0")


def fallthrough_chains(program: Program) -> list[list[BasicBlock]]:
    """Partition the program's blocks into maximal fall-through chains.

    Every block has at most one fall-through successor by construction;
    this function additionally checks that no block is the fall-through
    target of two blocks (which would be physically impossible in a
    linked binary).

    Returns:
        Chains in program order; each chain is a list of blocks.
    """
    blocks = program.all_blocks()
    fallthrough_pred: dict[str, str] = {}
    for block in blocks:
        if block.fallthrough is None:
            continue
        if block.fallthrough in fallthrough_pred:
            raise TraceError(
                f"block {block.fallthrough!r} is the fall-through target "
                f"of both {fallthrough_pred[block.fallthrough]!r} and "
                f"{block.name!r}"
            )
        fallthrough_pred[block.fallthrough] = block.name

    block_map = {block.name: block for block in blocks}
    chains: list[list[BasicBlock]] = []
    assigned: set[str] = set()
    for block in blocks:
        if block.name in assigned or block.name in fallthrough_pred:
            continue  # not a chain head
        chain: list[BasicBlock] = []
        current: BasicBlock | None = block
        while current is not None:
            chain.append(current)
            assigned.add(current.name)
            nxt = current.fallthrough
            current = block_map.get(nxt) if nxt is not None else None
        chains.append(chain)
    if len(assigned) != len(blocks):
        missing = sorted(b.name for b in blocks if b.name not in assigned)
        raise TraceError(f"fall-through cycle through blocks: {missing}")
    return chains


def generate_traces(
    program: Program,
    profile: ProfileData,
    config: TraceGenConfig,
) -> list[MemoryObject]:
    """Partition *program* into traces (memory objects).

    Args:
        program: the profiled program.
        profile: execution profile used for cold-edge cutting.
        config: trace-formation parameters.

    Returns:
        Memory objects in program order, named ``T0``, ``T1`` ...
    """
    with span("trace.generate") as generate_span:
        builder = _TraceBuilder(config)
        for chain in fallthrough_chains(program):
            for index, block in enumerate(chain):
                if index > 0:
                    edge_count = profile.edge_count(
                        chain[index - 1].name, block.name
                    )
                    if edge_count < config.min_fallthrough_count:
                        builder.cut()
                builder.add_block(block)
            builder.cut()
        objects = builder.finish()
        generate_span.add(objects=len(objects))
        metrics.inc("trace.generated_objects", len(objects))
        return objects


class _TraceBuilder:
    """Accumulates fragments and emits finished memory objects."""

    def __init__(self, config: TraceGenConfig) -> None:
        self._config = config
        self._traces: list[MemoryObject] = []
        self._fragments: list[Fragment] = []
        self._size = 0  # bytes of instructions in the open trace
        self._open_block: BasicBlock | None = None  # block of last fragment

    # -- public interface ------------------------------------------------

    def add_block(self, block: BasicBlock) -> None:
        """Append *block* to the open trace, splitting as necessary."""
        remaining_start = 0
        total = block.num_instructions
        while remaining_start < total:
            capacity = self._remaining_capacity()
            remaining_bytes = (total - remaining_start) * INSTRUCTION_SIZE
            if remaining_bytes + _JUMP_SIZE <= capacity:
                # The rest of the block fits (even if a tail jump is
                # appended later).
                self._push_fragment(block, remaining_start, total)
                remaining_start = total
            else:
                # Take as many instructions as leave room for the
                # mandatory continuation jump.
                take = (capacity - _JUMP_SIZE) // INSTRUCTION_SIZE
                take = min(take, total - remaining_start)
                if take <= 0:
                    self.cut()
                    continue
                end = remaining_start + take
                fragment = Fragment(
                    block=block.name,
                    start=remaining_start,
                    end=end,
                    appended_jump=JumpKind.ALWAYS,
                    jump_target=f"{block.name}+{end}",
                )
                self._fragments.append(fragment)
                self._size += fragment.size
                self._open_block = None  # continuation jump already added
                self.cut()
                remaining_start = end
        self._open_block = block

    def cut(self) -> None:
        """Close the open trace (if any), appending a tail jump if the
        final block can fall through."""
        if not self._fragments:
            return
        if self._open_block is not None:
            self._append_tail_jump(self._open_block)
        name = f"T{len(self._traces)}"
        self._traces.append(
            MemoryObject(
                name=name,
                fragments=self._fragments,
                line_size=self._config.line_size,
            )
        )
        self._fragments = []
        self._size = 0
        self._open_block = None

    def finish(self) -> list[MemoryObject]:
        """Close any open trace and return all memory objects."""
        self.cut()
        return self._traces

    # -- internals ---------------------------------------------------------

    def _remaining_capacity(self) -> int:
        return self._config.max_trace_size - self._size

    def _push_fragment(self, block: BasicBlock, start: int, end: int) -> None:
        fragment = Fragment(block=block.name, start=start, end=end)
        self._fragments.append(fragment)
        self._size += fragment.size
        self._open_block = block

    def _append_tail_jump(self, block: BasicBlock) -> None:
        """Replace the trace-final fall-through exit with a jump."""
        last = self._fragments[-1]
        if last.block != block.name or last.end != block.num_instructions:
            return  # trace ended on an ALWAYS continuation jump already
        terminator = block.terminator
        if terminator.opcode in (Opcode.JUMP, Opcode.RETURN):
            return  # already ends unconditionally
        assert block.fallthrough is not None
        self._fragments[-1] = Fragment(
            block=last.block,
            start=last.start,
            end=last.end,
            appended_jump=JumpKind.ON_FALLTHROUGH,
            jump_target=block.fallthrough,
        )
        self._size += _JUMP_SIZE
