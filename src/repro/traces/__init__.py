"""Trace generation and program linking.

Following the paper (section 3.2) and its reference [14] (Tomiyama &
Yasuura), the program is partitioned into **traces**: straight-line
sequences of basic blocks connected by fall-through edges, each ending in
an unconditional jump so it can be placed anywhere in memory, padded with
NOPs to the next cache-line boundary.  Traces are the *memory objects*
the allocators reason about.

:mod:`repro.traces.tracegen` builds the traces from a profile;
:mod:`repro.traces.layout` assigns addresses (main memory vs. scratchpad)
and produces per-block *fetch plans* that the memory-hierarchy simulator
expands into the instruction-fetch address stream.
"""

from repro.traces.memory_object import Fragment, MemoryObject
from repro.traces.tracegen import TraceGenConfig, generate_traces
from repro.traces.layout import (
    BlockFetchPlan,
    FetchSegment,
    LinkedImage,
    Placement,
)

__all__ = [
    "Fragment",
    "MemoryObject",
    "TraceGenConfig",
    "generate_traces",
    "BlockFetchPlan",
    "FetchSegment",
    "LinkedImage",
    "Placement",
]
