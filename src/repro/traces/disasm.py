"""Objdump-style listings of linked images.

Renders a :class:`~repro.traces.layout.LinkedImage` the way a
disassembler would show the binary: addresses, instructions, memory-
object boundaries, NOP padding, and scratchpad residency — the view a
user needs to sanity-check what trace generation and allocation
actually did to their program.
"""

from __future__ import annotations

from repro.isa import INSTRUCTION_SIZE, make_jump, make_nop
from repro.traces.layout import LinkedImage
from repro.traces.memory_object import JumpKind, MemoryObject


def _fragment_instructions(image: LinkedImage, mo: MemoryObject):
    """Yield (instruction, note) pairs for an object's real words."""
    program = image.program
    for fragment in mo.fragments:
        block = program.block(fragment.block)
        for index in range(fragment.start, fragment.end):
            note = ""
            if index == fragment.start:
                note = f"{fragment.block}[{fragment.start}:{fragment.end}]"
            yield block.instructions[index], note
        if fragment.appended_jump is not JumpKind.NONE:
            kind = ("always" if fragment.appended_jump is JumpKind.ALWAYS
                    else "on fall-through")
            yield (
                make_jump(fragment.jump_target or "?"),
                f"appended ({kind})",
            )


def disassemble(image: LinkedImage, include_padding: bool = True) -> str:
    """Render the full image as an address-annotated listing.

    Args:
        image: the linked image.
        include_padding: show the NOP padding words of main-memory
            objects (scratchpad copies are stripped, as in the paper).

    Returns:
        The listing as one string.
    """
    lines: list[str] = []
    for mo in image.memory_objects:
        base = image.base_address(mo.name)
        on_spm = image.on_spm(mo.name)
        region = "scratchpad" if on_spm else "main memory"
        lines.append(
            f"; ===== {mo.name} @ {base:#010x} ({region}, "
            f"{mo.unpadded_size}B"
            + ("" if on_spm else f", padded {mo.padded_size}B")
            + ") ====="
        )
        address = base
        for instruction, note in _fragment_instructions(image, mo):
            suffix = f"    ; {note}" if note else ""
            lines.append(f"{address:#010x}:  {instruction!s:<24}{suffix}")
            address += INSTRUCTION_SIZE
        if include_padding and not on_spm:
            padding_words = (mo.padded_size - mo.unpadded_size) \
                // INSTRUCTION_SIZE
            for _ in range(padding_words):
                lines.append(
                    f"{address:#010x}:  {make_nop()!s:<24}    ; padding"
                )
                address += INSTRUCTION_SIZE
    return "\n".join(lines)
