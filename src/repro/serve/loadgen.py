"""Closed-loop load generator for the ``repro serve`` daemon.

:func:`run_load` drives a running daemon with a configurable mix of
verbs from closed-loop worker threads (each worker issues its next
request only after the previous one returns — the classic closed
system, so offered load adapts to service capacity instead of piling
up).  Latencies feed the mergeable log-bucket
:class:`~repro.obs.metrics.Histogram` sketch, so the resulting
:class:`LoadReport` carries streaming p50/p90/p99 percentiles; a
request counts as failed when HTTP status is not 200 or the response
envelope's ``status`` is ``failed``.

``scripts/loadgen.py`` wraps this module behind an argparse CLI; the
smoke gate (``make serve-smoke``) and the bench suite's serve row both
route through :func:`run_load`.
"""

from __future__ import annotations

import http.client
import itertools
import json
import threading
import time
import urllib.parse
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ConfigurationError
from repro.obs.metrics import Histogram
from repro.serve.schema import (
    AllocateRequest,
    EvaluateRequest,
    SimulateRequest,
    SweepRequest,
)

#: Default verb mix: mostly single-point work, some whole-axis sweeps.
DEFAULT_MIX = "simulate=1,allocate=1,evaluate=2,sweep=1"

#: The verbs a mix may name.
MIX_VERBS = ("simulate", "allocate", "evaluate", "sweep")


@dataclass
class LoadReport:
    """Outcome of one load-generation run.

    Attributes:
        requests: requests issued.
        failures: requests that failed (HTTP != 200 or response
            ``status`` == ``failed``).
        wall_s: wall time of the whole run in seconds.
        statuses: response-status histogram (``ok`` / ``retried`` /
            ``degraded`` / ``failed`` / ``http:<code>``).
        latency: latency summary of all requests
            (count/mean/min/max/p50/p90/p99, seconds).
    """

    requests: int = 0
    failures: int = 0
    wall_s: float = 0.0
    statuses: dict[str, int] = field(default_factory=dict)
    latency: dict[str, float] = field(default_factory=dict)

    @property
    def rps(self) -> float:
        """Sustained throughput in requests per second."""
        return self.requests / self.wall_s if self.wall_s > 0 else 0.0

    def to_json(self) -> dict[str, Any]:
        """Plain-dict form for reports and the smoke gate."""
        return {
            "requests": self.requests,
            "failures": self.failures,
            "wall_s": round(self.wall_s, 6),
            "rps": round(self.rps, 3),
            "statuses": dict(sorted(self.statuses.items())),
            "latency": self.latency,
        }


def parse_mix(text: str) -> list[str]:
    """Expand a ``verb=weight,...`` mix into a round-robin verb list.

    ``"simulate=1,evaluate=2"`` becomes
    ``["simulate", "evaluate", "evaluate"]``; workers walk this list
    round-robin by global request index, so the realised mix is
    deterministic for a given request count.
    """
    expanded: list[str] = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        verb, separator, weight_text = part.partition("=")
        verb = verb.strip()
        if verb not in MIX_VERBS:
            raise ConfigurationError(
                f"unknown mix verb {verb!r}; choose from {MIX_VERBS}"
            )
        try:
            weight = int(weight_text) if separator else 1
        except ValueError:
            raise ConfigurationError(
                f"bad mix weight in {part!r}"
            )
        expanded.extend([verb] * weight)
    if not expanded:
        raise ConfigurationError(f"empty verb mix {text!r}")
    return expanded


def _build_payload(verb: str, index: int, workload: str, scale: float,
                   seed: int, axis: tuple[int, ...]) -> dict[str, Any]:
    """The request payload of global request *index* (deterministic)."""
    if verb == "simulate":
        return SimulateRequest(workload, scale=scale,
                               seed=seed).to_json()
    if verb == "allocate":
        return AllocateRequest(
            workload, scale=scale, seed=seed,
            spm_size=axis[index % len(axis)]).to_json()
    if verb == "evaluate":
        return EvaluateRequest(
            workload, scale=scale, seed=seed,
            spm_size=axis[index % len(axis)]).to_json()
    assert verb == "sweep"
    return SweepRequest(workload, scale=scale, seed=seed,
                        spm_sizes=axis).to_json()


def run_load(url: str, requests: int = 100, workers: int = 4,
             mix: str = DEFAULT_MIX, workload: str = "tiny",
             scale: float = 0.2, seed: int = 0,
             spm_sizes: tuple[int, ...] | None = None,
             timeout_s: float = 60.0) -> LoadReport:
    """Drive the daemon at *url* with closed-loop workers.

    Args:
        url: daemon base URL (``http://host:port``).
        requests: total requests across all workers.
        workers: closed-loop worker threads.
        mix: verb mix spec (see :func:`parse_mix`).
        workload: workload every request names.
        scale: trip-count multiplier of every request.
        seed: executor seed of every request.
        spm_sizes: capacity axis cycled by allocate/evaluate and swept
            whole (``None`` = the workload's table-1 axis).
        timeout_s: per-request socket timeout.

    Returns:
        The aggregated :class:`LoadReport`.
    """
    parsed = urllib.parse.urlsplit(url)
    host = parsed.hostname or "127.0.0.1"
    port = parsed.port or 80
    verbs = parse_mix(mix)
    if spm_sizes is None:
        from repro.workloads.registry import get_workload

        spm_sizes = get_workload(workload, scale=scale).spm_sizes
    axis = tuple(spm_sizes)

    counter = itertools.count()
    lock = threading.Lock()
    histogram = Histogram()
    statuses: dict[str, int] = {}
    failures = [0]

    def worker() -> None:
        connection = http.client.HTTPConnection(host, port,
                                                timeout=timeout_s)
        try:
            while True:
                index = next(counter)
                if index >= requests:
                    return
                verb = verbs[index % len(verbs)]
                payload = _build_payload(verb, index, workload, scale,
                                         seed, axis)
                body = json.dumps(payload)
                started = time.perf_counter()
                try:
                    connection.request(
                        "POST", f"/v1/{verb}", body=body,
                        headers={"Content-Type": "application/json"})
                    reply = connection.getresponse()
                    raw = reply.read()
                    elapsed = time.perf_counter() - started
                    if reply.status != 200:
                        label = f"http:{reply.status}"
                        failed = True
                    else:
                        data = json.loads(raw.decode("utf-8"))
                        label = data.get("status", "ok")
                        failed = label == "failed"
                except (OSError, ValueError) as error:
                    elapsed = time.perf_counter() - started
                    label = f"error:{type(error).__name__}"
                    failed = True
                    connection.close()
                    connection = http.client.HTTPConnection(
                        host, port, timeout=timeout_s)
                with lock:
                    histogram.observe(elapsed)
                    statuses[label] = statuses.get(label, 0) + 1
                    if failed:
                        failures[0] += 1
        finally:
            connection.close()

    threads = [threading.Thread(target=worker, name=f"loadgen-{i}")
               for i in range(max(1, workers))]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started

    summary = {key: round(value, 6)
               for key, value in histogram.summary().items()}
    return LoadReport(requests=histogram.count, failures=failures[0],
                      wall_s=wall, statuses=statuses, latency=summary)
