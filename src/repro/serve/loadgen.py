"""Closed-loop load generator for the ``repro serve`` daemon.

:func:`run_load` drives a running daemon with a configurable mix of
verbs from closed-loop worker threads (each worker issues its next
request only after the previous one returns — the classic closed
system, so offered load adapts to service capacity instead of piling
up).  Latencies feed the mergeable log-bucket
:class:`~repro.obs.metrics.Histogram` sketch, so the resulting
:class:`LoadReport` carries streaming p50/p90/p99 percentiles; a
request counts as failed when HTTP status is not 200 or the response
envelope's ``status`` is ``failed``.

Shed (HTTP 503 + ``Retry-After``) and ``deadline_exceeded`` answers
are the service *working as designed* under pressure, so they are
accounted separately from failures, and a second histogram tracks the
latency of accepted requests only — the number the overload baseline
bounds (an overloaded daemon's virtue is precisely that accepted work
stays fast while the rest sheds).

:func:`run_adversarial` is the hostile half: slow-loris header drip,
mid-request disconnects, malformed / oversized payloads, unknown
verbs and deadline storms — the client behaviors the hardening layer
must absorb without crashing or leaking work.  The ``repro
serve-chaos`` gate drives both against a real daemon subprocess.

``scripts/loadgen.py`` wraps this module behind an argparse CLI; the
smoke gates (``make serve-smoke`` / ``make serve-chaos-smoke``) and
the bench suite's serve rows route through here.
"""

from __future__ import annotations

import http.client
import itertools
import json
import socket
import threading
import time
import urllib.parse
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ConfigurationError
from repro.obs.metrics import Histogram
from repro.serve.schema import (
    AllocateRequest,
    EvaluateRequest,
    SimulateRequest,
    SweepRequest,
)

#: Default verb mix: mostly single-point work, some whole-axis sweeps.
DEFAULT_MIX = "simulate=1,allocate=1,evaluate=2,sweep=1"

#: The verbs a mix may name.
MIX_VERBS = ("simulate", "allocate", "evaluate", "sweep")

#: The adversarial client modes :func:`run_adversarial` speaks.
ADVERSARIAL_MODES = ("slowloris", "disconnect", "malformed",
                     "oversized", "unknown_verb", "deadline_storm")


@dataclass
class LoadReport:
    """Outcome of one load-generation run.

    Attributes:
        requests: requests issued.
        failures: requests that failed (HTTP not in {200, 503},
            connection error, or response ``status`` == ``failed``).
            Sheds and deadline misses are deliberate service answers,
            not failures.
        sheds: requests the daemon shed (503 + ``shed`` envelope).
        deadline_exceeded: requests answered ``deadline_exceeded``.
        resets: requests that died to a connection reset / broken
            socket (a subset of ``failures`` — the drain gate asserts
            this stays zero through SIGTERM).
        wall_s: wall time of the whole run in seconds.
        statuses: response-status histogram (``ok`` / ``retried`` /
            ``degraded`` / ``failed`` / ``shed`` /
            ``deadline_exceeded`` / ``http:<code>`` /
            ``error:<type>``).
        latency: latency summary of all requests
            (count/mean/min/max/p50/p90/p99, seconds).
        accepted_latency: latency summary of accepted (HTTP 200)
            requests only — what the overload baseline bounds.
    """

    requests: int = 0
    failures: int = 0
    sheds: int = 0
    deadline_exceeded: int = 0
    resets: int = 0
    wall_s: float = 0.0
    statuses: dict[str, int] = field(default_factory=dict)
    latency: dict[str, float] = field(default_factory=dict)
    accepted_latency: dict[str, float] = field(default_factory=dict)

    @property
    def rps(self) -> float:
        """Sustained throughput in requests per second."""
        return self.requests / self.wall_s if self.wall_s > 0 else 0.0

    def to_json(self) -> dict[str, Any]:
        """Plain-dict form for reports and the smoke gates."""
        return {
            "requests": self.requests,
            "failures": self.failures,
            "sheds": self.sheds,
            "deadline_exceeded": self.deadline_exceeded,
            "resets": self.resets,
            "wall_s": round(self.wall_s, 6),
            "rps": round(self.rps, 3),
            "statuses": dict(sorted(self.statuses.items())),
            "latency": self.latency,
            "accepted_latency": self.accepted_latency,
        }


def parse_mix(text: str) -> list[str]:
    """Expand a ``verb=weight,...`` mix into a round-robin verb list.

    ``"simulate=1,evaluate=2"`` becomes
    ``["simulate", "evaluate", "evaluate"]``; workers walk this list
    round-robin by global request index, so the realised mix is
    deterministic for a given request count.
    """
    expanded: list[str] = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        verb, separator, weight_text = part.partition("=")
        verb = verb.strip()
        if verb not in MIX_VERBS:
            raise ConfigurationError(
                f"unknown mix verb {verb!r}; choose from {MIX_VERBS}"
            )
        try:
            weight = int(weight_text) if separator else 1
        except ValueError:
            raise ConfigurationError(
                f"bad mix weight in {part!r}"
            )
        expanded.extend([verb] * weight)
    if not expanded:
        raise ConfigurationError(f"empty verb mix {text!r}")
    return expanded


def _build_payload(verb: str, index: int, workload: str, scale: float,
                   seed: int, axis: tuple[int, ...],
                   deadline_ms: int | None = None) -> dict[str, Any]:
    """The request payload of global request *index* (deterministic)."""
    if verb == "simulate":
        return SimulateRequest(workload, scale=scale, seed=seed,
                               deadline_ms=deadline_ms).to_json()
    if verb == "allocate":
        return AllocateRequest(
            workload, scale=scale, seed=seed,
            spm_size=axis[index % len(axis)],
            deadline_ms=deadline_ms).to_json()
    if verb == "evaluate":
        return EvaluateRequest(
            workload, scale=scale, seed=seed,
            spm_size=axis[index % len(axis)],
            deadline_ms=deadline_ms).to_json()
    assert verb == "sweep"
    return SweepRequest(workload, scale=scale, seed=seed,
                        spm_sizes=axis,
                        deadline_ms=deadline_ms).to_json()


def run_load(url: str, requests: int = 100, workers: int = 4,
             mix: str = DEFAULT_MIX, workload: str = "tiny",
             scale: float = 0.2, seed: int = 0,
             spm_sizes: tuple[int, ...] | None = None,
             timeout_s: float = 60.0,
             deadline_ms: int | None = None) -> LoadReport:
    """Drive the daemon at *url* with closed-loop workers.

    Args:
        url: daemon base URL (``http://host:port``).
        requests: total requests across all workers.
        workers: closed-loop worker threads.
        mix: verb mix spec (see :func:`parse_mix`).
        workload: workload every request names.
        scale: trip-count multiplier of every request.
        seed: executor seed of every request.
        spm_sizes: capacity axis cycled by allocate/evaluate and swept
            whole (``None`` = the workload's table-1 axis).
        timeout_s: per-request socket timeout.
        deadline_ms: optional ``deadline_ms`` stamped on every
            request (deadline storms / deadline e2e tests).

    Returns:
        The aggregated :class:`LoadReport`.
    """
    parsed = urllib.parse.urlsplit(url)
    host = parsed.hostname or "127.0.0.1"
    port = parsed.port or 80
    verbs = parse_mix(mix)
    if spm_sizes is None:
        from repro.workloads.registry import get_workload

        spm_sizes = get_workload(workload, scale=scale).spm_sizes
    axis = tuple(spm_sizes)

    counter = itertools.count()
    lock = threading.Lock()
    histogram = Histogram()
    accepted = Histogram()
    statuses: dict[str, int] = {}
    tallies = {"failures": 0, "sheds": 0, "deadline_exceeded": 0,
               "resets": 0}

    def worker() -> None:
        connection = http.client.HTTPConnection(host, port,
                                                timeout=timeout_s)
        try:
            while True:
                index = next(counter)
                if index >= requests:
                    return
                verb = verbs[index % len(verbs)]
                payload = _build_payload(verb, index, workload, scale,
                                         seed, axis, deadline_ms)
                body = json.dumps(payload)
                started = time.perf_counter()
                failed = shed = missed = reset = was_accepted = False
                try:
                    connection.request(
                        "POST", f"/v1/{verb}", body=body,
                        headers={"Content-Type": "application/json"})
                    reply = connection.getresponse()
                    raw = reply.read()
                    elapsed = time.perf_counter() - started
                    if reply.status == 200:
                        data = json.loads(raw.decode("utf-8"))
                        label = data.get("status", "ok")
                        failed = label == "failed"
                        missed = label == "deadline_exceeded"
                        was_accepted = True
                    elif reply.status == 503:
                        data = json.loads(raw.decode("utf-8"))
                        label = data.get("status", "shed")
                        shed = label == "shed"
                        failed = not shed
                    else:
                        label = f"http:{reply.status}"
                        failed = True
                except (OSError, ValueError) as error:
                    elapsed = time.perf_counter() - started
                    label = f"error:{type(error).__name__}"
                    failed = True
                    reset = isinstance(
                        error, (ConnectionResetError,
                                BrokenPipeError,
                                ConnectionAbortedError,
                                http.client.RemoteDisconnected))
                    connection.close()
                    connection = http.client.HTTPConnection(
                        host, port, timeout=timeout_s)
                with lock:
                    histogram.observe(elapsed)
                    if was_accepted:
                        accepted.observe(elapsed)
                    statuses[label] = statuses.get(label, 0) + 1
                    tallies["failures"] += failed
                    tallies["sheds"] += shed
                    tallies["deadline_exceeded"] += missed
                    tallies["resets"] += reset
        finally:
            connection.close()

    threads = [threading.Thread(target=worker, name=f"loadgen-{i}")
               for i in range(max(1, workers))]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started

    def _summarise(sketch: Histogram) -> dict[str, float]:
        return {key: round(value, 6)
                for key, value in sketch.summary().items()}

    return LoadReport(requests=histogram.count,
                      failures=tallies["failures"],
                      sheds=tallies["sheds"],
                      deadline_exceeded=tallies["deadline_exceeded"],
                      resets=tallies["resets"],
                      wall_s=wall, statuses=statuses,
                      latency=_summarise(histogram),
                      accepted_latency=_summarise(accepted))


# ----------------------------------------------------------------------
# Adversarial clients
# ----------------------------------------------------------------------


def _connect(host: str, port: int, timeout_s: float) -> socket.socket:
    sock = socket.create_connection((host, port), timeout=timeout_s)
    sock.settimeout(timeout_s)
    return sock


def _recv_status(sock: socket.socket) -> int | None:
    """The HTTP status of the next response on *sock* (or ``None``)."""
    try:
        data = b""
        while b"\r\n" not in data:
            chunk = sock.recv(4096)
            if not chunk:
                return None
            data += chunk
        parts = data.split(b"\r\n", 1)[0].split(b" ")
        return int(parts[1]) if len(parts) > 1 else None
    except (OSError, ValueError):
        return None


def _await_close(sock: socket.socket, timeout_s: float) -> bool:
    """Whether the server closes *sock* within *timeout_s*."""
    sock.settimeout(timeout_s)
    try:
        while True:
            if not sock.recv(4096):
                return True
    except socket.timeout:
        return False
    except OSError:
        return True


def run_adversarial(url: str, mode: str, count: int = 5,
                    workload: str = "tiny", scale: float = 0.2,
                    timeout_s: float = 10.0,
                    body_bytes: int = 2 << 20,
                    deadline_ms: int = 1) -> dict[str, Any]:
    """Attack the daemon at *url* with one hostile client *mode*.

    Modes (:data:`ADVERSARIAL_MODES`):

    * ``slowloris`` — drip a request one byte at a time; the daemon's
      ``client_timeout_s`` must eventually close the connection.
    * ``disconnect`` — send a full valid request, then close without
      reading the response; the daemon must cancel the orphaned work
      (``serve.client_disconnects``).
    * ``malformed`` — invalid JSON bodies; expects structured 400s.
    * ``oversized`` — declare a ``Content-Length`` of *body_bytes*;
      expects a structured 400 before the body is ever sent.
    * ``unknown_verb`` — post to ``/v1/<nonsense>``; expects
      structured 400s.
    * ``deadline_storm`` — valid requests with ``deadline_ms`` so
      small most must answer ``deadline_exceeded``.

    Returns a per-mode tally dict (``attempts`` plus mode-specific
    counts such as ``closed_by_server`` / ``structured_400`` /
    ``deadline_exceeded``); the serve-chaos gate combines it with a
    ``/metrics`` scrape and a liveness probe.
    """
    if mode not in ADVERSARIAL_MODES:
        raise ConfigurationError(
            f"unknown adversarial mode {mode!r}; choose from "
            f"{ADVERSARIAL_MODES}"
        )
    parsed = urllib.parse.urlsplit(url)
    host = parsed.hostname or "127.0.0.1"
    port = parsed.port or 80
    tally: dict[str, Any] = {"mode": mode, "attempts": count}

    if mode == "slowloris":
        closed = 0
        request = (f"POST /v1/evaluate HTTP/1.1\r\n"
                   f"Host: {host}\r\nContent-Length: 64\r\n\r\n")
        for _ in range(count):
            sock = _connect(host, port, timeout_s)
            try:
                for byte in request.encode("latin-1")[:24]:
                    try:
                        sock.sendall(bytes([byte]))
                    except OSError:
                        break
                    time.sleep(0.05)
                closed += _await_close(sock, timeout_s)
            finally:
                sock.close()
        tally["closed_by_server"] = closed
        return tally

    if mode == "disconnect":
        sent = 0
        payload = json.dumps(EvaluateRequest(
            workload, scale=scale).to_json())
        for _ in range(count):
            sock = _connect(host, port, timeout_s)
            try:
                request = (
                    f"POST /v1/evaluate HTTP/1.1\r\nHost: {host}\r\n"
                    f"Content-Type: application/json\r\n"
                    f"Content-Length: {len(payload)}\r\n\r\n"
                    f"{payload}")
                sock.sendall(request.encode("utf-8"))
                sent += 1
            except OSError:
                pass
            finally:
                # Vanish without reading the response.
                sock.close()
        tally["sent"] = sent
        return tally

    if mode == "oversized":
        refused = 0
        for _ in range(count):
            sock = _connect(host, port, timeout_s)
            try:
                head = (f"POST /v1/evaluate HTTP/1.1\r\n"
                        f"Host: {host}\r\n"
                        f"Content-Length: {body_bytes}\r\n\r\n")
                sock.sendall(head.encode("latin-1"))
                refused += _recv_status(sock) == 400
            except OSError:
                pass
            finally:
                sock.close()
        tally["structured_400"] = refused
        return tally

    # The remaining modes speak well-formed HTTP.
    connection = http.client.HTTPConnection(host, port,
                                            timeout=timeout_s)
    try:
        if mode in ("malformed", "unknown_verb"):
            refused = 0
            path = "/v1/evaluate" if mode == "malformed" \
                else "/v1/defragment"
            body = "{not json" if mode == "malformed" \
                else json.dumps({"workload": workload,
                                 "schema_version": 2})
            for _ in range(count):
                try:
                    connection.request(
                        "POST", path, body=body,
                        headers={"Content-Type": "application/json"})
                    reply = connection.getresponse()
                    raw = reply.read()
                    data = json.loads(raw.decode("utf-8"))
                    refused += (reply.status == 400
                                and data.get("kind") == "error.response"
                                and data.get("status") == "failed")
                except (OSError, ValueError):
                    connection.close()
                    connection = http.client.HTTPConnection(
                        host, port, timeout=timeout_s)
            tally["structured_400"] = refused
            return tally

        assert mode == "deadline_storm"
        # Let any batch window opened by earlier traffic flush first:
        # a storm request that piggybacks on an already-ticking group
        # flushes with near-zero queue wait and beats its deadline,
        # which is exactly the leniency the storm must not measure.
        time.sleep(0.15)
        report = run_load(url, requests=count, workers=2,
                          mix="evaluate=1", workload=workload,
                          scale=scale, timeout_s=timeout_s,
                          deadline_ms=deadline_ms)
        tally["deadline_exceeded"] = report.deadline_exceeded
        tally["failures"] = report.failures
        tally["resets"] = report.resets
        return tally
    finally:
        connection.close()

