"""Typed wire schemas of the ``repro serve`` daemon.

Each of the :class:`~repro.api.Session` verbs — ``simulate``,
``conflict_graph``, ``allocate``, ``evaluate`` — plus ``sweep`` has a
frozen request dataclass and a matching response dataclass here.  All
payloads are version-tagged plain dicts (``schema_version`` +
``kind``) that round-trip through ``to_json``/``from_json``; result
objects travel as the canonical :mod:`repro.io.serde` payloads, so a
response body decodes back into the same domain objects a local
session returns (:meth:`repro.api.Session.from_response`).

Version policy: :data:`SCHEMA_VERSION` is what this build *emits*;
:data:`SUPPORTED_SCHEMA_VERSIONS` is what it *accepts*.  Purely
additive changes (version 2 added the optional ``deadline_ms`` request
field and the ``shed`` / ``deadline_exceeded`` statuses) keep older
versions in the supported set, so a v1 client keeps working against a
v2 daemon; a truly incompatible change drops them, and version skew
then fails loudly at the edge instead of deep in a solve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.engine.grid import CHUNK_ALGORITHMS
from repro.errors import ConfigurationError
from repro.memory.cache import CacheConfig
from repro.traces.tracegen import TraceGenConfig

#: Wire format version this build emits.  v2 added the optional
#: ``deadline_ms`` request field plus the ``shed`` and
#: ``deadline_exceeded`` response statuses.
SCHEMA_VERSION = 2

#: Versions this build accepts (v1 payloads simply lack the
#: additive v2 fields, so they decode with the defaults).
SUPPORTED_SCHEMA_VERSIONS = (1, 2)

#: Tenant used when a request does not name one.
DEFAULT_TENANT = "default"

#: The statuses a response may carry: the healed-evaluation outcomes
#: (mirroring :data:`repro.resilience.healing.OUTCOME_STATUSES`) plus
#: the two service-level refusals — ``deadline_exceeded`` (the
#: request's ``deadline_ms`` budget ran out) and ``shed`` (admission
#: control refused it; retry later).
RESPONSE_STATUSES = ("ok", "retried", "degraded", "failed",
                     "deadline_exceeded", "shed")


def _require_version(data: dict[str, Any]) -> None:
    """Reject payloads from an unsupported schema version."""
    version = data.get("schema_version")
    if version not in SUPPORTED_SCHEMA_VERSIONS:
        raise ConfigurationError(
            f"unsupported schema_version {version!r} "
            f"(this build speaks {SUPPORTED_SCHEMA_VERSIONS})"
        )


def _cache_to_dict(cache: CacheConfig | None) -> dict[str, Any] | None:
    if cache is None:
        return None
    return {
        "size": cache.size,
        "line_size": cache.line_size,
        "associativity": cache.associativity,
        "policy": cache.policy,
    }


def _cache_from_dict(data: dict[str, Any] | None) -> CacheConfig | None:
    if data is None:
        return None
    return CacheConfig(
        size=data["size"],
        line_size=data["line_size"],
        associativity=data.get("associativity", 1),
        policy=data.get("policy", "lru"),
    )


def _tracegen_to_dict(tracegen: TraceGenConfig | None
                      ) -> dict[str, Any] | None:
    if tracegen is None:
        return None
    return {
        "line_size": tracegen.line_size,
        "max_trace_size": tracegen.max_trace_size,
        "min_fallthrough_count": tracegen.min_fallthrough_count,
    }


def _tracegen_from_dict(data: dict[str, Any] | None
                        ) -> TraceGenConfig | None:
    if data is None:
        return None
    return TraceGenConfig(
        line_size=data["line_size"],
        max_trace_size=data["max_trace_size"],
        min_fallthrough_count=data.get("min_fallthrough_count", 1),
    )


# ----------------------------------------------------------------------
# Requests
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class _RequestBase:
    """Fields shared by every request: the session configuration.

    Attributes:
        workload: registered workload name (the wire API serves named
            workloads only; raw programs cannot travel as JSON).
        scale: outer-loop trip-count multiplier.
        seed: executor seed.
        cache: I-cache override (``None`` = the workload's default).
        tracegen: trace-formation override.
        backend: simulation backend (``reference`` | ``vector`` |
            ``auto`` | ``None``).
        tenant: artifact-store shard this request's caching lands in.
        deadline_ms: optional end-to-end budget in milliseconds,
            measured from the moment the daemon admits the request.
            A request that cannot finish inside the budget is answered
            with status ``deadline_exceeded`` instead of occupying a
            worker (``None`` = no deadline, the v1 behavior).
    """

    workload: str
    scale: float = 1.0
    seed: int = 0
    cache: CacheConfig | None = None
    tracegen: TraceGenConfig | None = None
    backend: str | None = None
    tenant: str = DEFAULT_TENANT
    deadline_ms: int | None = None

    #: Wire discriminator; overridden per subclass.
    kind = ""

    def _common_json(self) -> dict[str, Any]:
        """The shared fields as a JSON-able dict."""
        return {
            "schema_version": SCHEMA_VERSION,
            "kind": self.kind,
            "workload": self.workload,
            "scale": self.scale,
            "seed": self.seed,
            "cache": _cache_to_dict(self.cache),
            "tracegen": _tracegen_to_dict(self.tracegen),
            "backend": self.backend,
            "tenant": self.tenant,
            "deadline_ms": self.deadline_ms,
        }

    def to_json(self) -> dict[str, Any]:
        """The full request as a JSON-able dict."""
        return self._common_json()


def _common_kwargs(data: dict[str, Any]) -> dict[str, Any]:
    """Decode the shared request fields from a payload dict."""
    if not data.get("workload"):
        raise ConfigurationError("request payload names no workload")
    deadline_ms = data.get("deadline_ms")
    if deadline_ms is not None:
        if not isinstance(deadline_ms, int) or deadline_ms <= 0:
            raise ConfigurationError(
                f"deadline_ms must be a positive integer, "
                f"got {deadline_ms!r}"
            )
    return {
        "workload": data["workload"],
        "scale": data.get("scale", 1.0),
        "seed": data.get("seed", 0),
        "cache": _cache_from_dict(data.get("cache")),
        "tracegen": _tracegen_from_dict(data.get("tracegen")),
        "backend": data.get("backend"),
        "tenant": data.get("tenant", DEFAULT_TENANT),
        "deadline_ms": deadline_ms,
    }


def _check_algorithm(algorithm: str) -> str:
    """Validate an allocator name against the grid-chunk set."""
    if algorithm not in CHUNK_ALGORITHMS:
        raise ConfigurationError(
            f"unknown serve algorithm {algorithm!r}; choose from "
            f"{CHUNK_ALGORITHMS}"
        )
    return algorithm


@dataclass(frozen=True)
class SimulateRequest(_RequestBase):
    """Baseline (cache-only) simulation of one workload."""

    kind = "simulate"

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "SimulateRequest":
        """Decode a :meth:`to_json` payload (version-checked)."""
        _require_version(data)
        return cls(**_common_kwargs(data))


@dataclass(frozen=True)
class ConflictGraphRequest(_RequestBase):
    """The profiled conflict graph G = (X, E) of one workload."""

    kind = "conflict_graph"

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "ConflictGraphRequest":
        """Decode a :meth:`to_json` payload (version-checked)."""
        _require_version(data)
        return cls(**_common_kwargs(data))


@dataclass(frozen=True)
class AllocateRequest(_RequestBase):
    """One allocator decision at one capacity (no result simulation).

    Attributes:
        algorithm: one of
            :data:`~repro.engine.grid.CHUNK_ALGORITHMS`.
        spm_size: capacity in bytes (``None`` = the workload's
            smallest table-1 size).
        max_regions: region budget for the ``ross`` allocator.
    """

    algorithm: str = "casa"
    spm_size: int | None = None
    max_regions: int = 4

    kind = "allocate"

    def to_json(self) -> dict[str, Any]:
        """The full request as a JSON-able dict."""
        data = self._common_json()
        data["algorithm"] = self.algorithm
        data["spm_size"] = self.spm_size
        data["max_regions"] = self.max_regions
        return data

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "AllocateRequest":
        """Decode a :meth:`to_json` payload (version-checked)."""
        _require_version(data)
        return cls(
            algorithm=_check_algorithm(data.get("algorithm", "casa")),
            spm_size=data.get("spm_size"),
            max_regions=data.get("max_regions", 4),
            **_common_kwargs(data),
        )


@dataclass(frozen=True)
class EvaluateRequest(_RequestBase):
    """Allocate and simulate one (algorithm, capacity) design point.

    Attributes:
        algorithm: one of
            :data:`~repro.engine.grid.CHUNK_ALGORITHMS`.
        spm_size: capacity in bytes (``None`` = the workload's
            smallest table-1 size).
        max_regions: region budget for the ``ross`` allocator.
    """

    algorithm: str = "casa"
    spm_size: int | None = None
    max_regions: int = 4

    kind = "evaluate"

    def to_json(self) -> dict[str, Any]:
        """The full request as a JSON-able dict."""
        data = self._common_json()
        data["algorithm"] = self.algorithm
        data["spm_size"] = self.spm_size
        data["max_regions"] = self.max_regions
        return data

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "EvaluateRequest":
        """Decode a :meth:`to_json` payload (version-checked)."""
        _require_version(data)
        return cls(
            algorithm=_check_algorithm(data.get("algorithm", "casa")),
            spm_size=data.get("spm_size"),
            max_regions=data.get("max_regions", 4),
            **_common_kwargs(data),
        )


@dataclass(frozen=True)
class SweepRequest(_RequestBase):
    """Evaluate one allocator across a whole capacity axis.

    Attributes:
        algorithm: one of
            :data:`~repro.engine.grid.CHUNK_ALGORITHMS`.
        spm_sizes: the capacity axis in bytes (``None`` = the
            workload's table-1 axis).
        max_regions: region budget for the ``ross`` allocator.
    """

    algorithm: str = "casa"
    spm_sizes: tuple[int, ...] | None = None
    max_regions: int = 4

    kind = "sweep"

    def to_json(self) -> dict[str, Any]:
        """The full request as a JSON-able dict."""
        data = self._common_json()
        data["algorithm"] = self.algorithm
        data["spm_sizes"] = list(self.spm_sizes) \
            if self.spm_sizes is not None else None
        data["max_regions"] = self.max_regions
        return data

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "SweepRequest":
        """Decode a :meth:`to_json` payload (version-checked)."""
        _require_version(data)
        sizes = data.get("spm_sizes")
        return cls(
            algorithm=_check_algorithm(data.get("algorithm", "casa")),
            spm_sizes=tuple(sizes) if sizes is not None else None,
            max_regions=data.get("max_regions", 4),
            **_common_kwargs(data),
        )


#: Wire ``kind`` → request class, the daemon's routing table.
REQUEST_KINDS: dict[str, type] = {
    cls.kind: cls
    for cls in (SimulateRequest, ConflictGraphRequest, AllocateRequest,
                EvaluateRequest, SweepRequest)
}


def request_from_json(data: dict[str, Any]):
    """Decode any request payload by its ``kind`` discriminator."""
    kind = data.get("kind")
    cls = REQUEST_KINDS.get(kind)
    if cls is None:
        raise ConfigurationError(
            f"unknown request kind {kind!r}; choose from "
            f"{', '.join(sorted(REQUEST_KINDS))}"
        )
    return cls.from_json(data)


# ----------------------------------------------------------------------
# Responses
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class _ResponseBase:
    """Fields shared by every response: the outcome envelope.

    Attributes:
        status: one of :data:`RESPONSE_STATUSES` — how the healed
            evaluation of the backing work unit went.
        attempts: evaluation attempts consumed.
        error: structured record of the last failure
            (``{"type", "message", "site"}``) or ``None``.
        run_id: correlation id of the daemon's structured run log.
    """

    status: str = "ok"
    attempts: int = 1
    error: dict[str, str] | None = None
    run_id: str | None = None

    #: Wire discriminator; overridden per subclass.
    kind = ""

    def _common_json(self) -> dict[str, Any]:
        """The shared fields as a JSON-able dict."""
        return {
            "schema_version": SCHEMA_VERSION,
            "kind": self.kind,
            "status": self.status,
            "attempts": self.attempts,
            "error": self.error,
            "run_id": self.run_id,
        }

    def to_json(self) -> dict[str, Any]:
        """The full response as a JSON-able dict."""
        return self._common_json()


def _outcome_kwargs(data: dict[str, Any]) -> dict[str, Any]:
    """Decode the shared response fields from a payload dict."""
    status = data.get("status", "ok")
    if status not in RESPONSE_STATUSES:
        raise ConfigurationError(
            f"unknown response status {status!r}; choose from "
            f"{RESPONSE_STATUSES}"
        )
    return {
        "status": status,
        "attempts": data.get("attempts", 1),
        "error": data.get("error"),
        "run_id": data.get("run_id"),
    }


@dataclass(frozen=True)
class SimulateResponse(_ResponseBase):
    """Baseline simulation statistics (a ``simulation_report`` payload)."""

    report: dict[str, Any] | None = None

    kind = "simulate.response"

    def to_json(self) -> dict[str, Any]:
        """The full response as a JSON-able dict."""
        data = self._common_json()
        data["report"] = self.report
        return data

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "SimulateResponse":
        """Decode a :meth:`to_json` payload (version-checked)."""
        _require_version(data)
        return cls(report=data.get("report"), **_outcome_kwargs(data))


@dataclass(frozen=True)
class ConflictGraphResponse(_ResponseBase):
    """A profiled conflict graph (a ``conflict_graph`` payload)."""

    graph: dict[str, Any] | None = None

    kind = "conflict_graph.response"

    def to_json(self) -> dict[str, Any]:
        """The full response as a JSON-able dict."""
        data = self._common_json()
        data["graph"] = self.graph
        return data

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "ConflictGraphResponse":
        """Decode a :meth:`to_json` payload (version-checked)."""
        _require_version(data)
        return cls(graph=data.get("graph"), **_outcome_kwargs(data))


@dataclass(frozen=True)
class AllocateResponse(_ResponseBase):
    """One allocator decision (an ``allocation`` payload)."""

    allocation: dict[str, Any] | None = None

    kind = "allocate.response"

    def to_json(self) -> dict[str, Any]:
        """The full response as a JSON-able dict."""
        data = self._common_json()
        data["allocation"] = self.allocation
        return data

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "AllocateResponse":
        """Decode a :meth:`to_json` payload (version-checked)."""
        _require_version(data)
        return cls(allocation=data.get("allocation"),
                   **_outcome_kwargs(data))


@dataclass(frozen=True)
class EvaluateResponse(_ResponseBase):
    """One evaluated design point (an ``experiment_result`` payload)."""

    result: dict[str, Any] | None = None

    kind = "evaluate.response"

    def to_json(self) -> dict[str, Any]:
        """The full response as a JSON-able dict."""
        data = self._common_json()
        data["result"] = self.result
        return data

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "EvaluateResponse":
        """Decode a :meth:`to_json` payload (version-checked)."""
        _require_version(data)
        return cls(result=data.get("result"), **_outcome_kwargs(data))


@dataclass(frozen=True)
class SweepResponse(_ResponseBase):
    """A whole capacity axis (``experiment_result`` payloads in order).

    Attributes:
        spm_sizes: the capacities evaluated, aligned with ``results``.
        results: one ``experiment_result`` payload per capacity.
    """

    spm_sizes: tuple[int, ...] = ()
    results: tuple[dict[str, Any], ...] = ()

    kind = "sweep.response"

    def to_json(self) -> dict[str, Any]:
        """The full response as a JSON-able dict."""
        data = self._common_json()
        data["spm_sizes"] = list(self.spm_sizes)
        data["results"] = list(self.results)
        return data

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "SweepResponse":
        """Decode a :meth:`to_json` payload (version-checked)."""
        _require_version(data)
        return cls(
            spm_sizes=tuple(data.get("spm_sizes", ())),
            results=tuple(data.get("results", ())),
            **_outcome_kwargs(data),
        )


@dataclass(frozen=True)
class ErrorResponse(_ResponseBase):
    """A request that produced no result (``status`` = ``failed``)."""

    status: str = "failed"

    kind = "error.response"

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "ErrorResponse":
        """Decode a :meth:`to_json` payload (version-checked)."""
        _require_version(data)
        return cls(**_outcome_kwargs(data))


@dataclass(frozen=True)
class ShedResponse(_ResponseBase):
    """A request admission control refused (``status`` = ``shed``).

    Travels with HTTP 503 + a ``Retry-After`` header; the body mirrors
    the header so non-HTTP transports see the same hint.

    Attributes:
        reason: why admission refused — one of
            :data:`repro.serve.admission.SHED_REASONS`.
        retry_after_s: how long the client should back off.
    """

    status: str = "shed"
    reason: str = "overload"
    retry_after_s: float = 1.0

    kind = "shed.response"

    def to_json(self) -> dict[str, Any]:
        """The full response as a JSON-able dict."""
        data = self._common_json()
        data["reason"] = self.reason
        data["retry_after_s"] = self.retry_after_s
        return data

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "ShedResponse":
        """Decode a :meth:`to_json` payload (version-checked)."""
        _require_version(data)
        return cls(
            reason=data.get("reason", "overload"),
            retry_after_s=data.get("retry_after_s", 1.0),
            **_outcome_kwargs(data),
        )


#: Wire ``kind`` → response class, the client's decoding table.
RESPONSE_KINDS: dict[str, type] = {
    cls.kind: cls
    for cls in (SimulateResponse, ConflictGraphResponse,
                AllocateResponse, EvaluateResponse, SweepResponse,
                ErrorResponse, ShedResponse)
}


def response_from_json(data: dict[str, Any]):
    """Decode any response payload by its ``kind`` discriminator."""
    kind = data.get("kind")
    cls = RESPONSE_KINDS.get(kind)
    if cls is None:
        raise ConfigurationError(
            f"unknown response kind {kind!r}; choose from "
            f"{', '.join(sorted(RESPONSE_KINDS))}"
        )
    return cls.from_json(data)
