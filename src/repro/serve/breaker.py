"""Per-verb circuit breakers for the allocation service.

A circuit breaker protects callers from a verb whose work path has
started failing persistently: instead of queueing every doomed request
into the executor (occupying batch slots and worker time), the breaker
*opens* after a threshold of failures inside a rolling window and the
service answers with a fast structured 503 until the path proves
healthy again.  The classic three states:

* **closed** — requests flow; failures are tracked in the rolling
  window.  When the window holds ``threshold`` failures the breaker
  opens (``serve.breaker.opens`` counts every transition).
* **open** — requests shed immediately (``serve.shed.breaker``).
  After ``cooldown_s`` the next request is admitted as a *probe* and
  the breaker moves to half-open.
* **half-open** — up to ``probes`` concurrent probe requests run; one
  success closes the breaker (window cleared), one failure re-opens
  it and restarts the cooldown.

What counts as a failure is the *service's* notion — a response whose
``status`` is ``failed``.  Shed requests never reach
:meth:`CircuitBreaker.record` (a breaker fed by its own sheds would
latch open forever), and ``deadline_exceeded`` responses are the
client's budget choice, not a health signal.

State is exported as the ``serve.breaker.state.<verb>`` gauge
(:data:`STATE_VALUES`: 0 closed, 1 half-open, 2 open) and every
transition is logged to the structured run log as a
``serve.breaker`` event.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable

#: Breaker states in increasing order of distress.
CLOSED, HALF_OPEN, OPEN = "closed", "half_open", "open"

#: Gauge encoding of the states (``serve.breaker.state.<verb>``).
STATE_VALUES = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}

#: Default consecutive-window failure count that opens the breaker.
DEFAULT_THRESHOLD = 5

#: Default rolling-window width in seconds.
DEFAULT_WINDOW_S = 30.0

#: Default seconds an open breaker waits before probing.
DEFAULT_COOLDOWN_S = 5.0


class CircuitBreaker:
    """Rolling-window failure breaker for one verb.

    Args:
        threshold: failures inside the window that open the breaker
            (``<= 0`` disables the breaker entirely — it never opens).
        window_s: rolling-window width in seconds.
        cooldown_s: seconds an open breaker waits before letting a
            probe request through (half-open).
        probes: concurrent probe requests admitted while half-open.
        clock: monotonic time source (overridable for tests).
    """

    def __init__(self, threshold: int = DEFAULT_THRESHOLD,
                 window_s: float = DEFAULT_WINDOW_S,
                 cooldown_s: float = DEFAULT_COOLDOWN_S,
                 probes: int = 1,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.threshold = threshold
        self.window_s = window_s
        self.cooldown_s = cooldown_s
        self.probes = probes
        self._clock = clock
        self.state = CLOSED
        self.opens = 0
        self._failures: deque[float] = deque()
        self._opened_at = 0.0
        self._inflight_probes = 0

    def _trim(self, now: float) -> None:
        """Drop window entries older than ``window_s``."""
        horizon = now - self.window_s
        while self._failures and self._failures[0] < horizon:
            self._failures.popleft()

    def allow(self) -> bool:
        """Whether a new request may pass (advances open → half-open).

        Returns ``False`` exactly when the request should be shed; a
        ``True`` from a non-closed breaker admits a probe whose
        :meth:`record` outcome decides the next state.
        """
        if self.threshold <= 0 or self.state == CLOSED:
            return True
        now = self._clock()
        if self.state == OPEN:
            if now - self._opened_at < self.cooldown_s:
                return False
            self.state = HALF_OPEN
            self._inflight_probes = 0
        if self._inflight_probes >= self.probes:
            return False
        self._inflight_probes += 1
        return True

    def record(self, ok: bool) -> None:
        """Feed the outcome of one admitted request into the breaker."""
        if self.threshold <= 0:
            return
        now = self._clock()
        if self.state == HALF_OPEN:
            self._inflight_probes = max(0, self._inflight_probes - 1)
            if ok:
                self.state = CLOSED
                self._failures.clear()
            else:
                self.state = OPEN
                self.opens += 1
                self._opened_at = now
            return
        if self.state == OPEN:
            # A request admitted before the flip resolved late; its
            # outcome is stale — the open window already decided.
            return
        if ok:
            return
        self._failures.append(now)
        self._trim(now)
        if len(self._failures) >= self.threshold:
            self.state = OPEN
            self.opens += 1
            self._opened_at = now
            self._failures.clear()

    @property
    def state_value(self) -> int:
        """The gauge encoding of the current state."""
        return STATE_VALUES[self.state]
