"""The allocation service: batched solves over tenant-sharded stores.

:class:`AllocationService` is the daemon's engine-facing half, usable
without any HTTP in front of it (the benches and tests drive it
directly).  It owns:

* a :class:`~repro.serve.batching.MicroBatcher` that coalesces
  compatible requests into :class:`~repro.engine.grid.GridChunk` work
  units;
* a single-threaded executor on which batches run through
  :func:`~repro.resilience.healing.map_points_healed` — the resilience
  layer's retry/timeout/degradation ladders apply to every request,
  and its per-outcome status/attempts/error records flow back into
  the response envelopes;
* one :class:`~repro.engine.store.ArtifactStore` per ``tenant`` —
  built from a backend spec string (see
  :func:`~repro.engine.store.make_backend`) and swapped in as the
  process default around each tenant's batch, so tenants never share
  cache entries;
* a :class:`~repro.obs.live.ProgressBus` and a private
  :class:`~repro.obs.metrics.MetricsRegistry` feeding the daemon's
  ``/healthz`` and ``/metrics`` endpoints, correlated by one
  ``run_id`` in the structured run log.

The hardening layer sits in front of all of that: every request first
passes the :class:`~repro.serve.admission.AdmissionController` (drain
→ per-verb circuit breaker → max-in-flight → tenant quota; refusals
become :class:`~repro.serve.schema.ShedResponse`), and an admitted
request's optional ``deadline_ms`` budget is tracked from admission —
requests that expire while queued in the micro-batcher are answered
``deadline_exceeded`` without ever touching a worker, and when every
live member of a batch carries a deadline the batch's
:class:`~repro.resilience.healing.RetryPolicy` timeout is tightened
to the nearest one.

Service metrics: ``serve.requests.<verb>``, ``serve.requests.total``,
``serve.requests.failed``, ``serve.request.seconds``,
``serve.batch.*`` (see :mod:`repro.serve.batching`),
``serve.shed.*``/``serve.inflight``/``serve.breaker.*`` (see
:mod:`repro.serve.admission`) and ``serve.deadline.*`` (below).
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Hashable

from repro.api import Session
from repro.engine.grid import GridChunk
from repro.engine.store import ArtifactStore, set_default_store
from repro.io.serde import (
    allocation_to_dict,
    conflict_graph_to_dict,
    experiment_result_to_dict,
    report_to_dict,
)
from repro.obs.live import (
    DEFAULT_STALL_TIMEOUT,
    ProgressBus,
    ProgressSnapshot,
    render_prometheus,
    set_progress_sink,
)
from repro.obs.logging import RunLog, log_event, new_run_id, set_run_log
from repro.obs.metrics import MetricsRegistry, set_registry
from repro.resilience.faults import FaultPlan, set_fault_plan
from repro.resilience.healing import (
    HealedRun,
    PointOutcome,
    RetryPolicy,
    map_points_healed,
)
from repro.serve.admission import (
    DEFAULT_MAX_INFLIGHT,
    DEFAULT_RETRY_AFTER_S,
    AdmissionController,
    AdmissionTicket,
)
from repro.serve.batching import (
    DEFAULT_MAX_BATCH,
    DEFAULT_MAX_DELAY_S,
    Group,
    MicroBatcher,
)
from repro.serve.breaker import (
    DEFAULT_COOLDOWN_S,
    DEFAULT_WINDOW_S,
)
from repro.serve.schema import (
    AllocateRequest,
    AllocateResponse,
    ConflictGraphRequest,
    ConflictGraphResponse,
    ErrorResponse,
    EvaluateRequest,
    EvaluateResponse,
    ShedResponse,
    SimulateRequest,
    SimulateResponse,
    SweepRequest,
    SweepResponse,
)

#: Placeholder capacity carried by pure-simulate chunks (the baseline
#: algorithm returns one result per axis entry and ignores the value).
BASELINE_SIZE = 0


@dataclass
class _Pending:
    """One admitted request travelling through the micro-batcher.

    Attributes:
        request: the wire request.
        deadline: absolute :func:`time.monotonic` expiry derived from
            the request's ``deadline_ms`` at admission (``None`` = no
            deadline).
    """

    request: Any
    deadline: float | None = None

    def expired(self, now: float | None = None) -> bool:
        """Whether the deadline has passed."""
        if self.deadline is None:
            return False
        return (time.monotonic() if now is None else now) \
            >= self.deadline

    def remaining(self, now: float) -> float:
        """Seconds of budget left (``inf`` without a deadline)."""
        if self.deadline is None:
            return float("inf")
        return self.deadline - now


@dataclass
class ServiceConfig:
    """Tunables of one :class:`AllocationService`.

    Attributes:
        jobs: worker processes for multi-chunk batches (``<= 1`` runs
            solves serially on the executor thread).
        max_batch: micro-batching flush threshold (requests per
            group).
        max_delay_s: micro-batching flush deadline in seconds.
        store_backend: backend spec for tenant stores —
            ``"memory[:bytes]"``, ``"disk[:root]"`` or a registered
            backend name (default in-memory).  A ``disk`` spec's path
            is the *root*; each tenant gets ``root/<tenant>/``.
        store_root: root directory for ``disk`` tenant stores when
            the spec names none.
        retry: per-work-unit retry/timeout policy.
        stall_timeout: seconds a solve may run before ``/healthz``
            reports the worker as stalled.
        fault_spec: optional fault-injection plan installed for the
            service's lifetime (chaos tests).
        log_path: optional structured-log (JSONL) path; events carry
            the service's ``run_id``.
        max_inflight: admission bound on concurrently admitted
            requests (``<= 0`` = unbounded).
        tenant_quota: per-tenant concurrent-request bound (``None``
            or ``<= 0`` = unbounded).
        breaker_threshold: rolling-window failures that open a verb's
            circuit breaker (``<= 0`` disables breakers, the
            default).
        breaker_window_s: breaker rolling-window width in seconds.
        breaker_cooldown_s: seconds an open breaker waits before
            half-opening.
        retry_after_s: ``Retry-After`` hint attached to shed
            responses.
    """

    jobs: int = 1
    max_batch: int = DEFAULT_MAX_BATCH
    max_delay_s: float = DEFAULT_MAX_DELAY_S
    store_backend: str | None = None
    store_root: str | os.PathLike | None = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    stall_timeout: float = DEFAULT_STALL_TIMEOUT
    fault_spec: str | None = None
    log_path: str | None = None
    max_inflight: int = DEFAULT_MAX_INFLIGHT
    tenant_quota: int | None = None
    breaker_threshold: int = 0
    breaker_window_s: float = DEFAULT_WINDOW_S
    breaker_cooldown_s: float = DEFAULT_COOLDOWN_S
    retry_after_s: float = DEFAULT_RETRY_AFTER_S


class AllocationService:
    """Session verbs as a long-running, batching, multi-tenant service.

    Lifecycle: :meth:`start` installs the service's registry, progress
    bus, optional fault plan and optional run log as the process-wide
    active instruments (returning the previous ones to :meth:`stop`);
    the HTTP daemon (:mod:`repro.serve.daemon`) then feeds
    :meth:`handle` from its event loop.
    """

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = config if config is not None else ServiceConfig()
        self.run_id = new_run_id()
        self.registry = MetricsRegistry()
        self.bus = ProgressBus(self.run_id,
                               stall_timeout=self.config.stall_timeout)
        self.batcher = MicroBatcher(
            self._execute_groups_async,
            max_batch=self.config.max_batch,
            max_delay_s=self.config.max_delay_s,
            registry=self.registry,
        )
        self.admission = AdmissionController(
            self.registry,
            max_inflight=self.config.max_inflight,
            tenant_quota=self.config.tenant_quota,
            breaker_threshold=self.config.breaker_threshold,
            breaker_window_s=self.config.breaker_window_s,
            breaker_cooldown_s=self.config.breaker_cooldown_s,
            retry_after_s=self.config.retry_after_s,
        )
        self._stores: dict[str, ArtifactStore] = {}
        self._store_lock = threading.Lock()
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="serve-exec")
        self._started = False
        self._previous: dict[str, Any] = {}

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        """Install the service's instruments process-wide (idempotent)."""
        if self._started:
            return
        self._previous["registry"] = set_registry(self.registry)
        self._previous["sink"] = set_progress_sink(self.bus)
        if self.config.fault_spec:
            self._previous["plan"] = set_fault_plan(
                FaultPlan.from_spec(self.config.fault_spec))
        if self.config.log_path:
            self._previous["log"] = set_run_log(
                RunLog(self.config.log_path, run_id=self.run_id,
                       source="serve"))
        self._started = True
        log_event("serve.start", jobs=self.config.jobs,
                  max_batch=self.config.max_batch,
                  backend=self.config.store_backend or "memory")

    def stop(self) -> None:
        """Restore the previous instruments and drain the executor."""
        if not self._started:
            return
        log_event("serve.stop")
        self._executor.shutdown(wait=True)
        set_registry(self._previous.get("registry"))
        set_progress_sink(self._previous.get("sink"))
        if "plan" in self._previous:
            set_fault_plan(self._previous["plan"])
        if "log" in self._previous:
            set_run_log(self._previous["log"])
        self._previous = {}
        self._started = False

    # -- tenant stores --------------------------------------------------------

    def tenant_store(self, tenant: str) -> ArtifactStore:
        """The artifact store shard of *tenant* (created on first use)."""
        with self._store_lock:
            store = self._stores.get(tenant)
            if store is None:
                store = self._make_tenant_store(tenant)
                self._stores[tenant] = store
            return store

    def _make_tenant_store(self, tenant: str) -> ArtifactStore:
        spec = self.config.store_backend or "memory"
        name, _, arg = spec.partition(":")
        if name == "disk":
            root = Path(arg or self.config.store_root or ".casa_cache")
            return ArtifactStore(backend=f"disk:{root / tenant}")
        return ArtifactStore(backend=spec)

    @contextmanager
    def _using_store(self, tenant: str):
        """Swap the process default store to *tenant*'s for a batch."""
        previous = set_default_store(self.tenant_store(tenant))
        try:
            yield
        finally:
            set_default_store(previous)

    # -- request handling -----------------------------------------------------

    async def handle(self, request) -> Any:
        """Answer one request; never raises (failures become responses).

        The request first passes admission control — a refusal is
        answered with a :class:`ShedResponse` (the daemon maps it to
        503 + ``Retry-After``) without entering the batcher.  Admitted
        requests hold their :class:`AdmissionTicket` until the
        response is ready; the ticket's release feeds the verb's
        circuit breaker (``ok`` unless the response status is
        ``failed`` — sheds and deadline misses are not health
        signals).
        """
        verb = type(request).kind
        self.registry.counter(f"serve.requests.{verb}").inc()
        self.registry.counter("serve.requests.total").inc()
        started = time.perf_counter()
        admitted = self.admission.try_admit(verb, request.tenant)
        if isinstance(admitted, str):
            self.registry.histogram("serve.request.seconds").observe(
                time.perf_counter() - started)
            return ShedResponse(
                reason=admitted,
                retry_after_s=self.admission.retry_after_s,
                run_id=self.run_id,
            )
        ticket: AdmissionTicket = admitted
        response = None
        try:
            response = await self._dispatch(request)
        except asyncio.CancelledError:
            # The client vanished (daemon cancelled the orphaned
            # work); not a health signal for the breaker.
            ticket.release(ok=True)
            raise
        except Exception as error:  # contained: reported per request
            self.registry.counter("serve.errors").inc()
            response = ErrorResponse(
                error={"type": type(error).__name__,
                       "message": str(error),
                       "site": str(getattr(error, "site", ""))},
                attempts=1, run_id=self.run_id,
            )
        finally:
            ticket.release(
                ok=response is not None
                and response.status != "failed")
        if response.status == "failed":
            self.registry.counter("serve.requests.failed").inc()
        elif response.status == "deadline_exceeded":
            self.registry.counter("serve.deadline.exceeded").inc()
        self.registry.histogram("serve.request.seconds").observe(
            time.perf_counter() - started)
        return response

    async def _dispatch(self, request) -> Any:
        """Route one admitted request to its execution path."""
        pending = _Pending(request, self._deadline_of(request))
        if isinstance(request, ConflictGraphRequest):
            loop = asyncio.get_running_loop()
            return await loop.run_in_executor(
                self._executor, self._run_conflict_graph, pending)
        return await self.batcher.submit(
            self._compat_key(request), pending)

    @staticmethod
    def _deadline_of(request) -> float | None:
        """Absolute monotonic expiry of a request's ``deadline_ms``."""
        deadline_ms = getattr(request, "deadline_ms", None)
        if deadline_ms is None:
            return None
        return time.monotonic() + deadline_ms / 1000.0

    def _deadline_response(self, pending: _Pending,
                           queued: bool) -> ErrorResponse:
        """The ``deadline_exceeded`` answer for one expired request."""
        if queued:
            self.registry.counter(
                "serve.deadline.expired_in_queue").inc()
        site = "serve.queue" if queued else "serve.execute"
        return ErrorResponse(
            status="deadline_exceeded",
            error={"type": "DeadlineExceeded",
                   "message": "request deadline_ms budget exhausted",
                   "site": site},
            run_id=self.run_id,
        )

    @staticmethod
    def _compat_key(request) -> Hashable:
        """The batching key: requests sharing it solve as one chunk."""
        algorithm = getattr(request, "algorithm", "baseline")
        if isinstance(request, SimulateRequest):
            algorithm = "baseline"
        return (
            request.tenant, request.workload, request.scale,
            request.seed, request.cache, request.tracegen,
            request.backend, algorithm,
            getattr(request, "max_regions", 4),
        )

    # -- batch execution (executor thread) ------------------------------------

    async def _execute_groups_async(
            self, groups: list[Group]) -> list[list[Any]]:
        """Run the drained groups on the service executor."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._executor, self._execute_groups, groups)

    def _execute_groups(self, groups: list[Group]) -> list[list[Any]]:
        """Solve every group, one tenant at a time, one chunk per group.

        Groups of the same tenant share one
        :func:`~repro.resilience.healing.map_points_healed` call (and
        its process pool when ``jobs > 1``); each group becomes one
        grid chunk whose capacity axis merges every member request's
        sizes.

        Deadline handling happens here, at the queue/execute seam:
        members whose budget already ran out while queued are answered
        ``deadline_exceeded`` without contributing to the chunk, and
        when *every* surviving member of a tenant's batch carries a
        deadline the batch's retry policy timeout is tightened to the
        nearest remaining budget (``serve.deadline.applied``) — a
        mixed batch keeps the configured timeout so deadline-free
        members' work is never killed early.
        """
        now = time.monotonic()
        by_tenant: dict[str, list[int]] = {}
        for index, (key, _) in enumerate(groups):
            by_tenant.setdefault(key[0], []).append(index)
        responses: list[list[Any] | None] = [None] * len(groups)
        for tenant, indexes in by_tenant.items():
            chunks = []
            axes = []
            live_indexes = []
            live_members: list[_Pending] = []
            for index in indexes:
                key, members = groups[index]
                live = [m for m in members if not m.expired(now)]
                if not live:
                    responses[index] = [
                        self._deadline_response(m, queued=True)
                        for m in members
                    ]
                    continue
                chunk, axis = self._build_chunk(
                    key, [m.request for m in live])
                chunks.append(chunk)
                axes.append(axis)
                live_indexes.append(index)
                live_members.extend(live)
            if not chunks:
                continue
            policy = self._policy_for(live_members, now)
            with self._using_store(tenant):
                run: HealedRun = map_points_healed(
                    chunks, jobs=self.config.jobs,
                    policy=policy,
                )
            for outcome, index, axis in zip(run.outcomes,
                                            live_indexes, axes):
                _, members = groups[index]
                responses[index] = [
                    self._member_response(member, outcome, axis, now)
                    for member in members
                ]
        return [entries if entries is not None else []
                for entries in responses]

    def _policy_for(self, members: list[_Pending],
                    now: float) -> RetryPolicy:
        """The retry policy of one tenant batch, deadline-tightened.

        Only when every member carries a deadline: the batch timeout
        becomes the smallest remaining budget (floored at 1 ms so an
        about-to-expire member still fails through the normal timeout
        path rather than a zero timeout).
        """
        policy = self.config.retry
        if any(member.deadline is None for member in members):
            return policy
        budget = max(0.001,
                     min(member.remaining(now) for member in members))
        if policy.timeout_s is not None \
                and policy.timeout_s <= budget:
            return policy
        self.registry.counter("serve.deadline.applied").inc()
        return replace(policy, timeout_s=budget)

    def _member_response(self, member: _Pending,
                         outcome: PointOutcome,
                         axis: tuple[int, ...], queued_at: float):
        """Map one healed chunk outcome back onto one batch member."""
        if member.expired(queued_at):
            return self._deadline_response(member, queued=True)
        if (outcome.status == "failed" or outcome.result is None) \
                and member.expired():
            return self._deadline_response(member, queued=False)
        return self._respond(member.request, outcome, axis)

    def _build_chunk(self, key: Hashable,
                     requests: list[Any]
                     ) -> tuple[GridChunk, tuple[int, ...]]:
        """One grid chunk covering every size the group's requests want."""
        (_, workload, scale, seed, cache, tracegen, backend,
         algorithm, max_regions) = key
        sizes: set[int] = set()
        for request in requests:
            sizes.update(self._request_sizes(request))
        axis = tuple(sorted(sizes))
        return GridChunk(
            workload=workload, spm_sizes=axis, algorithm=algorithm,
            scale=scale, seed=seed, cache=cache, tracegen=tracegen,
            max_regions=max_regions, backend=backend,
        ), axis

    def _request_sizes(self, request) -> tuple[int, ...]:
        """The capacities one request needs out of its group's chunk."""
        if isinstance(request, SimulateRequest):
            return (BASELINE_SIZE,)
        if isinstance(request, SweepRequest):
            if request.spm_sizes is not None:
                return tuple(request.spm_sizes)
            return self._default_axis(request)
        size = request.spm_size
        if size is None:
            size = min(self._default_axis(request))
        return (size,)

    @staticmethod
    def _default_axis(request) -> tuple[int, ...]:
        """A request's workload-default capacity axis (table 1)."""
        from repro.workloads.registry import get_workload

        return get_workload(request.workload,
                            scale=request.scale).spm_sizes

    def _respond(self, request, outcome: PointOutcome,
                 axis: tuple[int, ...]):
        """Map one healed chunk outcome back onto one member request."""
        if outcome.status == "failed" or outcome.result is None:
            return ErrorResponse(error=outcome.error,
                                 attempts=outcome.attempts,
                                 run_id=outcome.run_id or self.run_id)
        results = outcome.result
        run_id = outcome.run_id or self.run_id
        steps = [results[axis.index(size)]
                 for size in self._request_sizes(request)]
        degraded = any(
            getattr(getattr(step, "allocation", None),
                    "solver_status", "") == "degraded"
            for step in steps
        )
        status = "degraded" if degraded else (
            "retried" if outcome.attempts > 1 else "ok")
        envelope = {"status": status, "attempts": outcome.attempts,
                    "error": outcome.error, "run_id": run_id}
        if isinstance(request, SimulateRequest):
            return SimulateResponse(
                report=report_to_dict(steps[0].report), **envelope)
        if isinstance(request, AllocateRequest):
            return AllocateResponse(
                allocation=allocation_to_dict(steps[0].allocation),
                **envelope)
        if isinstance(request, EvaluateRequest):
            return EvaluateResponse(
                result=experiment_result_to_dict(steps[0]), **envelope)
        assert isinstance(request, SweepRequest)
        return SweepResponse(
            spm_sizes=self._request_sizes(request),
            results=tuple(experiment_result_to_dict(step)
                          for step in steps),
            **envelope)

    def _run_conflict_graph(self, pending: _Pending):
        """Profile one conflict graph directly (unbatched verb)."""
        if pending.expired():
            return self._deadline_response(pending, queued=True)
        request: ConflictGraphRequest = pending.request
        with self._using_store(request.tenant):
            session = Session(
                request.workload, cache=request.cache,
                scale=request.scale, seed=request.seed,
                backend=request.backend, tracegen=request.tracegen,
            )
            graph = session.conflict_graph()
        return ConflictGraphResponse(
            graph=conflict_graph_to_dict(graph), run_id=self.run_id)

    # -- drain ----------------------------------------------------------------

    @property
    def draining(self) -> bool:
        """Whether the service has begun its shutdown drain."""
        return self.admission.draining

    def begin_drain(self) -> None:
        """Refuse new work; in-flight requests keep running.

        From this moment :meth:`healthz` and :meth:`readyz` report
        unhealthy/unready and every new verb request sheds with reason
        ``draining``; the daemon then flushes the batcher, waits for
        in-flight work and exits 0.  Idempotent.
        """
        if not self.admission.draining:
            log_event("serve.drain.begin",
                      inflight=self.admission.inflight)
            self.registry.counter("serve.drain.begins").inc()
        self.admission.begin_drain()

    async def drain(self, timeout_s: float) -> bool:
        """Flush the batcher and wait for in-flight work to finish.

        Returns ``True`` when everything completed inside
        *timeout_s*, ``False`` when the deadline cut the wait short
        (in-flight requests may still be running).
        """
        self.begin_drain()
        await self.batcher.flush()
        deadline = time.monotonic() + max(0.0, timeout_s)
        while self.admission.inflight > 0:
            if time.monotonic() >= deadline:
                log_event("serve.drain.timeout",
                          inflight=self.admission.inflight)
                return False
            await asyncio.sleep(0.01)
        log_event("serve.drain.complete")
        return True

    # -- health and metrics ---------------------------------------------------

    def snapshot(self) -> ProgressSnapshot:
        """Progress/health snapshot over the service registry."""
        return self.bus.snapshot(self.registry)

    def healthz(self) -> tuple[bool, ProgressSnapshot]:
        """``(healthy, snapshot)`` — stalled workers or drain = 503."""
        snapshot = self.snapshot()
        return not snapshot.stalled and not self.draining, snapshot

    def readyz(self) -> bool:
        """Readiness: whether new requests would be admitted at all.

        Liveness (:meth:`healthz`) says *the process works*; readiness
        says *send traffic here*.  A draining service is still live
        enough to finish in-flight work but must not receive new
        requests, so readiness flips first — load balancers watch
        ``/readyz``, process supervisors ``/healthz``.
        """
        return not self.draining

    def metrics_text(self) -> str:
        """The ``/metrics`` body (Prometheus text exposition format).

        :func:`~repro.obs.live.render_prometheus` covers counters and
        histogram percentiles; the service appends its gauges
        (``serve.inflight``, ``serve.breaker.state.<verb>``) which
        have no place in the progress snapshot.
        """
        text = render_prometheus(self.snapshot())
        lines = [text.rstrip("\n")] if text.strip() else []
        for name, data in self.registry.snapshot().items():
            if data.get("type") != "gauge":
                continue
            metric = f"repro_{name.replace('.', '_')}"
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {data['value']:g}")
        return "\n".join(lines) + "\n"
