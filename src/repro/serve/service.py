"""The allocation service: batched solves over tenant-sharded stores.

:class:`AllocationService` is the daemon's engine-facing half, usable
without any HTTP in front of it (the benches and tests drive it
directly).  It owns:

* a :class:`~repro.serve.batching.MicroBatcher` that coalesces
  compatible requests into :class:`~repro.engine.grid.GridChunk` work
  units;
* a single-threaded executor on which batches run through
  :func:`~repro.resilience.healing.map_points_healed` — the resilience
  layer's retry/timeout/degradation ladders apply to every request,
  and its per-outcome status/attempts/error records flow back into
  the response envelopes;
* one :class:`~repro.engine.store.ArtifactStore` per ``tenant`` —
  built from a backend spec string (see
  :func:`~repro.engine.store.make_backend`) and swapped in as the
  process default around each tenant's batch, so tenants never share
  cache entries;
* a :class:`~repro.obs.live.ProgressBus` and a private
  :class:`~repro.obs.metrics.MetricsRegistry` feeding the daemon's
  ``/healthz`` and ``/metrics`` endpoints, correlated by one
  ``run_id`` in the structured run log.

Service metrics: ``serve.requests.<verb>``, ``serve.requests.total``,
``serve.requests.failed``, ``serve.request.seconds``,
``serve.batch.*`` (see :mod:`repro.serve.batching`).
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Hashable

from repro.api import Session
from repro.engine.grid import GridChunk
from repro.engine.store import ArtifactStore, set_default_store
from repro.io.serde import (
    allocation_to_dict,
    conflict_graph_to_dict,
    experiment_result_to_dict,
    report_to_dict,
)
from repro.obs.live import (
    DEFAULT_STALL_TIMEOUT,
    ProgressBus,
    ProgressSnapshot,
    render_prometheus,
    set_progress_sink,
)
from repro.obs.logging import RunLog, log_event, new_run_id, set_run_log
from repro.obs.metrics import MetricsRegistry, set_registry
from repro.resilience.faults import FaultPlan, set_fault_plan
from repro.resilience.healing import (
    HealedRun,
    PointOutcome,
    RetryPolicy,
    map_points_healed,
)
from repro.serve.batching import (
    DEFAULT_MAX_BATCH,
    DEFAULT_MAX_DELAY_S,
    Group,
    MicroBatcher,
)
from repro.serve.schema import (
    AllocateRequest,
    AllocateResponse,
    ConflictGraphRequest,
    ConflictGraphResponse,
    ErrorResponse,
    EvaluateRequest,
    EvaluateResponse,
    SimulateRequest,
    SimulateResponse,
    SweepRequest,
    SweepResponse,
)

#: Placeholder capacity carried by pure-simulate chunks (the baseline
#: algorithm returns one result per axis entry and ignores the value).
BASELINE_SIZE = 0


@dataclass
class ServiceConfig:
    """Tunables of one :class:`AllocationService`.

    Attributes:
        jobs: worker processes for multi-chunk batches (``<= 1`` runs
            solves serially on the executor thread).
        max_batch: micro-batching flush threshold (requests per
            group).
        max_delay_s: micro-batching flush deadline in seconds.
        store_backend: backend spec for tenant stores —
            ``"memory[:bytes]"``, ``"disk[:root]"`` or a registered
            backend name (default in-memory).  A ``disk`` spec's path
            is the *root*; each tenant gets ``root/<tenant>/``.
        store_root: root directory for ``disk`` tenant stores when
            the spec names none.
        retry: per-work-unit retry/timeout policy.
        stall_timeout: seconds a solve may run before ``/healthz``
            reports the worker as stalled.
        fault_spec: optional fault-injection plan installed for the
            service's lifetime (chaos tests).
        log_path: optional structured-log (JSONL) path; events carry
            the service's ``run_id``.
    """

    jobs: int = 1
    max_batch: int = DEFAULT_MAX_BATCH
    max_delay_s: float = DEFAULT_MAX_DELAY_S
    store_backend: str | None = None
    store_root: str | os.PathLike | None = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    stall_timeout: float = DEFAULT_STALL_TIMEOUT
    fault_spec: str | None = None
    log_path: str | None = None


class AllocationService:
    """Session verbs as a long-running, batching, multi-tenant service.

    Lifecycle: :meth:`start` installs the service's registry, progress
    bus, optional fault plan and optional run log as the process-wide
    active instruments (returning the previous ones to :meth:`stop`);
    the HTTP daemon (:mod:`repro.serve.daemon`) then feeds
    :meth:`handle` from its event loop.
    """

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = config if config is not None else ServiceConfig()
        self.run_id = new_run_id()
        self.registry = MetricsRegistry()
        self.bus = ProgressBus(self.run_id,
                               stall_timeout=self.config.stall_timeout)
        self.batcher = MicroBatcher(
            self._execute_groups_async,
            max_batch=self.config.max_batch,
            max_delay_s=self.config.max_delay_s,
            registry=self.registry,
        )
        self._stores: dict[str, ArtifactStore] = {}
        self._store_lock = threading.Lock()
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="serve-exec")
        self._started = False
        self._previous: dict[str, Any] = {}

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        """Install the service's instruments process-wide (idempotent)."""
        if self._started:
            return
        self._previous["registry"] = set_registry(self.registry)
        self._previous["sink"] = set_progress_sink(self.bus)
        if self.config.fault_spec:
            self._previous["plan"] = set_fault_plan(
                FaultPlan.from_spec(self.config.fault_spec))
        if self.config.log_path:
            self._previous["log"] = set_run_log(
                RunLog(self.config.log_path, run_id=self.run_id,
                       source="serve"))
        self._started = True
        log_event("serve.start", jobs=self.config.jobs,
                  max_batch=self.config.max_batch,
                  backend=self.config.store_backend or "memory")

    def stop(self) -> None:
        """Restore the previous instruments and drain the executor."""
        if not self._started:
            return
        log_event("serve.stop")
        self._executor.shutdown(wait=True)
        set_registry(self._previous.get("registry"))
        set_progress_sink(self._previous.get("sink"))
        if "plan" in self._previous:
            set_fault_plan(self._previous["plan"])
        if "log" in self._previous:
            set_run_log(self._previous["log"])
        self._previous = {}
        self._started = False

    # -- tenant stores --------------------------------------------------------

    def tenant_store(self, tenant: str) -> ArtifactStore:
        """The artifact store shard of *tenant* (created on first use)."""
        with self._store_lock:
            store = self._stores.get(tenant)
            if store is None:
                store = self._make_tenant_store(tenant)
                self._stores[tenant] = store
            return store

    def _make_tenant_store(self, tenant: str) -> ArtifactStore:
        spec = self.config.store_backend or "memory"
        name, _, arg = spec.partition(":")
        if name == "disk":
            root = Path(arg or self.config.store_root or ".casa_cache")
            return ArtifactStore(backend=f"disk:{root / tenant}")
        return ArtifactStore(backend=spec)

    @contextmanager
    def _using_store(self, tenant: str):
        """Swap the process default store to *tenant*'s for a batch."""
        previous = set_default_store(self.tenant_store(tenant))
        try:
            yield
        finally:
            set_default_store(previous)

    # -- request handling -----------------------------------------------------

    async def handle(self, request) -> Any:
        """Answer one request; never raises (failures become responses)."""
        verb = type(request).kind
        self.registry.counter(f"serve.requests.{verb}").inc()
        self.registry.counter("serve.requests.total").inc()
        started = time.perf_counter()
        try:
            if isinstance(request, ConflictGraphRequest):
                loop = asyncio.get_running_loop()
                response = await loop.run_in_executor(
                    self._executor, self._run_conflict_graph, request)
            else:
                response = await self.batcher.submit(
                    self._compat_key(request), request)
        except Exception as error:  # contained: reported per request
            self.registry.counter("serve.errors").inc()
            response = ErrorResponse(
                error={"type": type(error).__name__,
                       "message": str(error),
                       "site": str(getattr(error, "site", ""))},
                attempts=1, run_id=self.run_id,
            )
        if response.status == "failed":
            self.registry.counter("serve.requests.failed").inc()
        self.registry.histogram("serve.request.seconds").observe(
            time.perf_counter() - started)
        return response

    @staticmethod
    def _compat_key(request) -> Hashable:
        """The batching key: requests sharing it solve as one chunk."""
        algorithm = getattr(request, "algorithm", "baseline")
        if isinstance(request, SimulateRequest):
            algorithm = "baseline"
        return (
            request.tenant, request.workload, request.scale,
            request.seed, request.cache, request.tracegen,
            request.backend, algorithm,
            getattr(request, "max_regions", 4),
        )

    # -- batch execution (executor thread) ------------------------------------

    async def _execute_groups_async(
            self, groups: list[Group]) -> list[list[Any]]:
        """Run the drained groups on the service executor."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._executor, self._execute_groups, groups)

    def _execute_groups(self, groups: list[Group]) -> list[list[Any]]:
        """Solve every group, one tenant at a time, one chunk per group.

        Groups of the same tenant share one
        :func:`~repro.resilience.healing.map_points_healed` call (and
        its process pool when ``jobs > 1``); each group becomes one
        grid chunk whose capacity axis merges every member request's
        sizes.
        """
        by_tenant: dict[str, list[int]] = {}
        for index, (key, _) in enumerate(groups):
            by_tenant.setdefault(key[0], []).append(index)
        responses: list[list[Any] | None] = [None] * len(groups)
        for tenant, indexes in by_tenant.items():
            chunks = []
            axes = []
            for index in indexes:
                key, requests = groups[index]
                chunk, axis = self._build_chunk(key, requests)
                chunks.append(chunk)
                axes.append(axis)
            with self._using_store(tenant):
                run: HealedRun = map_points_healed(
                    chunks, jobs=self.config.jobs,
                    policy=self.config.retry,
                )
            for outcome, index, axis in zip(run.outcomes, indexes,
                                            axes):
                _, requests = groups[index]
                responses[index] = [
                    self._respond(request, outcome, axis)
                    for request in requests
                ]
        return [entries if entries is not None else []
                for entries in responses]

    def _build_chunk(self, key: Hashable,
                     requests: list[Any]
                     ) -> tuple[GridChunk, tuple[int, ...]]:
        """One grid chunk covering every size the group's requests want."""
        (_, workload, scale, seed, cache, tracegen, backend,
         algorithm, max_regions) = key
        sizes: set[int] = set()
        for request in requests:
            sizes.update(self._request_sizes(request))
        axis = tuple(sorted(sizes))
        return GridChunk(
            workload=workload, spm_sizes=axis, algorithm=algorithm,
            scale=scale, seed=seed, cache=cache, tracegen=tracegen,
            max_regions=max_regions, backend=backend,
        ), axis

    def _request_sizes(self, request) -> tuple[int, ...]:
        """The capacities one request needs out of its group's chunk."""
        if isinstance(request, SimulateRequest):
            return (BASELINE_SIZE,)
        if isinstance(request, SweepRequest):
            if request.spm_sizes is not None:
                return tuple(request.spm_sizes)
            return self._default_axis(request)
        size = request.spm_size
        if size is None:
            size = min(self._default_axis(request))
        return (size,)

    @staticmethod
    def _default_axis(request) -> tuple[int, ...]:
        """A request's workload-default capacity axis (table 1)."""
        from repro.workloads.registry import get_workload

        return get_workload(request.workload,
                            scale=request.scale).spm_sizes

    def _respond(self, request, outcome: PointOutcome,
                 axis: tuple[int, ...]):
        """Map one healed chunk outcome back onto one member request."""
        if outcome.status == "failed" or outcome.result is None:
            return ErrorResponse(error=outcome.error,
                                 attempts=outcome.attempts,
                                 run_id=outcome.run_id or self.run_id)
        results = outcome.result
        run_id = outcome.run_id or self.run_id
        steps = [results[axis.index(size)]
                 for size in self._request_sizes(request)]
        degraded = any(
            getattr(getattr(step, "allocation", None),
                    "solver_status", "") == "degraded"
            for step in steps
        )
        status = "degraded" if degraded else (
            "retried" if outcome.attempts > 1 else "ok")
        envelope = {"status": status, "attempts": outcome.attempts,
                    "error": outcome.error, "run_id": run_id}
        if isinstance(request, SimulateRequest):
            return SimulateResponse(
                report=report_to_dict(steps[0].report), **envelope)
        if isinstance(request, AllocateRequest):
            return AllocateResponse(
                allocation=allocation_to_dict(steps[0].allocation),
                **envelope)
        if isinstance(request, EvaluateRequest):
            return EvaluateResponse(
                result=experiment_result_to_dict(steps[0]), **envelope)
        assert isinstance(request, SweepRequest)
        return SweepResponse(
            spm_sizes=self._request_sizes(request),
            results=tuple(experiment_result_to_dict(step)
                          for step in steps),
            **envelope)

    def _run_conflict_graph(self, request: ConflictGraphRequest
                            ) -> ConflictGraphResponse:
        """Profile one conflict graph directly (unbatched verb)."""
        with self._using_store(request.tenant):
            session = Session(
                request.workload, cache=request.cache,
                scale=request.scale, seed=request.seed,
                backend=request.backend, tracegen=request.tracegen,
            )
            graph = session.conflict_graph()
        return ConflictGraphResponse(
            graph=conflict_graph_to_dict(graph), run_id=self.run_id)

    # -- health and metrics ---------------------------------------------------

    def snapshot(self) -> ProgressSnapshot:
        """Progress/health snapshot over the service registry."""
        return self.bus.snapshot(self.registry)

    def healthz(self) -> tuple[bool, ProgressSnapshot]:
        """``(healthy, snapshot)`` — unhealthy when any worker stalls."""
        snapshot = self.snapshot()
        return not snapshot.stalled, snapshot

    def metrics_text(self) -> str:
        """The ``/metrics`` body (Prometheus text exposition format)."""
        return render_prometheus(self.snapshot())
