"""Allocation-as-a-service: the ``repro serve`` daemon stack.

Layers, bottom up:

* :mod:`repro.serve.schema` — versioned wire request/response
  dataclasses (the canonical public API of the Session verbs);
* :mod:`repro.serve.batching` — the micro-batching queue coalescing
  compatible requests into shared grid chunks;
* :mod:`repro.serve.service` — :class:`AllocationService`, which runs
  batches through the resilience layer over tenant-sharded artifact
  stores;
* :mod:`repro.serve.daemon` — the asyncio HTTP/JSON listener with
  ``/healthz`` and ``/metrics``;
* :mod:`repro.serve.loadgen` — the closed-loop load generator behind
  ``scripts/loadgen.py`` and the smoke gate.
"""

from repro.serve.batching import MicroBatcher
from repro.serve.daemon import (
    DaemonHandle,
    ServeDaemon,
    run_daemon,
    start_in_thread,
)
from repro.serve.loadgen import LoadReport, parse_mix, run_load
from repro.serve.schema import (
    SCHEMA_VERSION,
    AllocateRequest,
    AllocateResponse,
    ConflictGraphRequest,
    ConflictGraphResponse,
    ErrorResponse,
    EvaluateRequest,
    EvaluateResponse,
    SimulateRequest,
    SimulateResponse,
    SweepRequest,
    SweepResponse,
    request_from_json,
    response_from_json,
)
from repro.serve.service import AllocationService, ServiceConfig

__all__ = [
    "MicroBatcher",
    "DaemonHandle",
    "ServeDaemon",
    "run_daemon",
    "start_in_thread",
    "LoadReport",
    "parse_mix",
    "run_load",
    "SCHEMA_VERSION",
    "AllocateRequest",
    "AllocateResponse",
    "ConflictGraphRequest",
    "ConflictGraphResponse",
    "ErrorResponse",
    "EvaluateRequest",
    "EvaluateResponse",
    "SimulateRequest",
    "SimulateResponse",
    "SweepRequest",
    "SweepResponse",
    "request_from_json",
    "response_from_json",
    "AllocationService",
    "ServiceConfig",
]
