"""Allocation-as-a-service: the ``repro serve`` daemon stack.

Layers, bottom up:

* :mod:`repro.serve.schema` — versioned wire request/response
  dataclasses (the canonical public API of the Session verbs);
* :mod:`repro.serve.batching` — the micro-batching queue coalescing
  compatible requests into shared grid chunks;
* :mod:`repro.serve.breaker` / :mod:`repro.serve.admission` — the
  hardening layer: per-verb circuit breakers behind an admission
  controller enforcing max-in-flight, per-tenant quotas and drain;
* :mod:`repro.serve.service` — :class:`AllocationService`, which runs
  admitted batches through the resilience layer over tenant-sharded
  artifact stores, propagating per-request deadlines;
* :mod:`repro.serve.daemon` — the asyncio HTTP/JSON listener with
  ``/healthz``, ``/readyz`` and ``/metrics``, graceful drain and
  adversarial-client defenses;
* :mod:`repro.serve.loadgen` — the closed-loop load generator (and
  adversarial client modes) behind ``scripts/loadgen.py`` and the
  smoke gates;
* :mod:`repro.serve.chaos` — the ``repro serve-chaos`` differential
  gate: overload, adversarial clients and drain against a real
  daemon subprocess.
"""

from repro.serve.admission import (
    SHED_REASONS,
    AdmissionController,
    AdmissionTicket,
)
from repro.serve.batching import MicroBatcher
from repro.serve.breaker import CircuitBreaker
from repro.serve.daemon import (
    DaemonHandle,
    ServeDaemon,
    run_daemon,
    start_in_thread,
)
from repro.serve.loadgen import (
    LoadReport,
    parse_mix,
    run_adversarial,
    run_load,
)
from repro.serve.schema import (
    SCHEMA_VERSION,
    SUPPORTED_SCHEMA_VERSIONS,
    AllocateRequest,
    AllocateResponse,
    ConflictGraphRequest,
    ConflictGraphResponse,
    ErrorResponse,
    EvaluateRequest,
    EvaluateResponse,
    ShedResponse,
    SimulateRequest,
    SimulateResponse,
    SweepRequest,
    SweepResponse,
    request_from_json,
    response_from_json,
)
from repro.serve.service import AllocationService, ServiceConfig

__all__ = [
    "SHED_REASONS",
    "AdmissionController",
    "AdmissionTicket",
    "MicroBatcher",
    "CircuitBreaker",
    "DaemonHandle",
    "ServeDaemon",
    "run_daemon",
    "start_in_thread",
    "LoadReport",
    "parse_mix",
    "run_adversarial",
    "run_load",
    "SCHEMA_VERSION",
    "SUPPORTED_SCHEMA_VERSIONS",
    "AllocateRequest",
    "AllocateResponse",
    "ConflictGraphRequest",
    "ConflictGraphResponse",
    "ErrorResponse",
    "EvaluateRequest",
    "EvaluateResponse",
    "ShedResponse",
    "SimulateRequest",
    "SimulateResponse",
    "SweepRequest",
    "SweepResponse",
    "request_from_json",
    "response_from_json",
    "AllocationService",
    "ServiceConfig",
]
