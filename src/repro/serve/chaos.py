"""Serve-layer chaos gate: a hostile world against a real daemon.

Where :mod:`repro.resilience.chaos` proves the *compute* path heals
(faults in, bit-identical results out), this module proves the
*service* path survives: :func:`run_serve_chaos` boots a real
``repro serve`` daemon subprocess and subjects it to the conditions
production will — sustained overload beyond its admission limit,
slow-loris clients, mid-request disconnects, malformed and oversized
payloads, deadline storms, and finally a SIGTERM in the middle of a
loaded run.  The gate's verdict is *behavioral*, not differential:

* the daemon process never crashes and never prints a traceback;
* under ~2× overload every refusal is a structured 503 shed (zero
  hard failures, zero connection resets) while accepted-request p99
  stays under a bound;
* the shed accounting is clean — ``serve.shed.total`` equals the sum
  of the per-reason counters, and client misbehavior shows up in
  ``serve.client_disconnects`` / ``serve.client_timeouts``;
* SIGTERM drains gracefully — ``/healthz`` flips to 503, in-flight
  work completes, the load generator sees zero resets, exit code 0.

Exposed on the CLI as ``repro serve-chaos`` and in CI as
``make serve-chaos-smoke``.
"""

from __future__ import annotations

import http.client
import os
import re
import signal
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.serve.loadgen import LoadReport, run_adversarial, run_load

#: Adversarial modes the gate runs (``disconnect`` feeds the
#: client-disconnect accounting check; ``deadline_storm`` the
#: deadline path).
GATE_MODES = ("slowloris", "disconnect", "malformed", "oversized",
              "unknown_verb", "deadline_storm")

#: Default bound on accepted-request p99 under overload, in seconds.
DEFAULT_P99_LIMIT_S = 2.0

#: Default admission limit of the gate's daemon; the load generator
#: runs twice as many closed-loop workers.
DEFAULT_MAX_INFLIGHT = 4


@dataclass
class ServeChaosResult:
    """Verdict and accounting of one serve-chaos run.

    Attributes:
        ok: every gate assertion held.
        violations: human-readable description of each failed
            assertion.
        overload: the overload-phase :class:`LoadReport` as JSON.
        adversarial: per-mode tallies from :func:`run_adversarial`.
        counters: the daemon's final counter scrape (shed/breaker/
            disconnect accounting).
        drain: drain-phase observations (exit code, resets, healthz
            statuses seen after SIGTERM, ...).
        daemon_output: the daemon's combined stdout/stderr (evidence
            for the no-traceback assertion).
    """

    ok: bool = True
    violations: list[str] = field(default_factory=list)
    overload: dict[str, Any] = field(default_factory=dict)
    adversarial: dict[str, dict[str, Any]] = field(default_factory=dict)
    counters: dict[str, float] = field(default_factory=dict)
    drain: dict[str, Any] = field(default_factory=dict)
    daemon_output: str = ""

    def fail(self, message: str) -> None:
        """Record one failed gate assertion."""
        self.ok = False
        self.violations.append(message)

    def render(self) -> str:
        """Multi-line human-readable report of the run."""
        lines = [
            "serve-chaos: "
            + ("OK (daemon survived overload, adversarial clients "
               "and drain)" if self.ok else "FAILED")
        ]
        if self.overload:
            lines.append(
                f"  overload          {self.overload.get('requests', 0)}"
                f" requests, {self.overload.get('sheds', 0)} shed, "
                f"{self.overload.get('failures', 0)} failed, "
                f"accepted p99 "
                f"{self.overload.get('accepted_latency', {}).get('p99', 0)}s"
            )
        for mode in sorted(self.adversarial):
            tally = dict(self.adversarial[mode])
            tally.pop("mode", None)
            detail = ", ".join(f"{key}={value}"
                               for key, value in sorted(tally.items()))
            lines.append(f"  {mode:<17} {detail}")
        shed_keys = [name for name in sorted(self.counters)
                     if name.startswith("serve_shed_")
                     or name.startswith("serve_client_")]
        for name in shed_keys:
            lines.append(f"  {name:<33} {self.counters[name]:g}")
        if self.drain:
            lines.append(
                f"  drain             exit={self.drain.get('exit_code')}"
                f", resets={self.drain.get('resets')}, healthz after "
                f"SIGTERM: {self.drain.get('healthz_statuses')}"
            )
        for violation in self.violations:
            lines.append(f"  VIOLATION: {violation}")
        return "\n".join(lines)


class _Daemon:
    """One ``repro serve`` subprocess with captured output."""

    def __init__(self, args: list[str]) -> None:
        src_root = str(Path(__file__).resolve().parents[2])
        env = dict(os.environ)
        env["PYTHONPATH"] = src_root + os.pathsep \
            + env.get("PYTHONPATH", "")
        env["PYTHONUNBUFFERED"] = "1"
        self.process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             *args],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env)
        self.lines: list[str] = []
        self.url = self._await_url()
        parsed = self.url.removeprefix("http://")
        host, _, port = parsed.partition(":")
        self.host, self.port = host, int(port)
        self._reader = threading.Thread(target=self._drain_output,
                                        daemon=True)
        self._reader.start()

    def _await_url(self, timeout_s: float = 60.0) -> str:
        deadline = time.monotonic() + timeout_s
        assert self.process.stdout is not None
        while time.monotonic() < deadline:
            line = self.process.stdout.readline()
            if not line:
                raise RuntimeError(
                    "serve daemon exited before announcing: "
                    + "".join(self.lines))
            self.lines.append(line)
            match = re.search(r"serving on (http://\S+)", line)
            if match:
                return match.group(1)
        raise RuntimeError("serve daemon never announced its URL")

    def _drain_output(self) -> None:
        assert self.process.stdout is not None
        for line in self.process.stdout:
            self.lines.append(line)

    @property
    def alive(self) -> bool:
        return self.process.poll() is None

    def get(self, path: str, timeout_s: float = 10.0
            ) -> tuple[int | None, bytes]:
        """One GET against the daemon (status ``None`` on failure)."""
        try:
            connection = http.client.HTTPConnection(
                self.host, self.port, timeout=timeout_s)
            try:
                connection.request("GET", path)
                reply = connection.getresponse()
                return reply.status, reply.read()
            finally:
                connection.close()
        except OSError:
            return None, b""

    def counters(self) -> dict[str, float]:
        """Scrape ``/metrics`` counters (underscored names).

        Prometheus flattens the dotted metric names, so ``serve.shed.
        total`` comes back as ``serve_shed_total`` — dots and
        underscores are indistinguishable after the round trip, and
        the gate's checks use the underscored form throughout.
        """
        status, body = self.get("/metrics")
        if status != 200:
            return {}
        counters: dict[str, float] = {}
        for line in body.decode("utf-8").splitlines():
            if line.startswith("#") or " " not in line:
                continue
            metric, _, value = line.rpartition(" ")
            if metric.startswith("repro_") \
                    and metric.endswith("_total"):
                name = metric[len("repro_"):-len("_total")]
                try:
                    counters[name] = float(value)
                except ValueError:
                    continue
        return counters

    def terminate_and_wait(self, timeout_s: float = 30.0
                           ) -> int | None:
        """SIGTERM, then wait for exit; SIGKILL as a last resort."""
        if self.alive:
            self.process.send_signal(signal.SIGTERM)
        try:
            return self.process.wait(timeout=timeout_s)
        except subprocess.TimeoutExpired:
            self.process.kill()
            self.process.wait(timeout=10)
            return None  # a hung drain is its own violation

    def output(self) -> str:
        return "".join(self.lines)


def _counter_like(counters: dict[str, float],
                  prefix: str) -> dict[str, float]:
    return {name: value for name, value in counters.items()
            if name.startswith(prefix)}


def run_serve_chaos(workload: str = "tiny", scale: float = 0.2,
                    requests: int = 48,
                    max_inflight: int = DEFAULT_MAX_INFLIGHT,
                    p99_limit_s: float = DEFAULT_P99_LIMIT_S,
                    adversarial_count: int = 3,
                    timeout_s: float = 60.0) -> ServeChaosResult:
    """Run the serve-layer chaos gate against a fresh daemon.

    Args:
        workload: workload every request names.
        scale: trip-count multiplier (kept small; the gate is about
            the serving tier, not the solver).
        requests: overload-phase request count.
        max_inflight: the daemon's admission limit; the overload
            phase runs ``2 * max_inflight`` closed-loop workers.
        p99_limit_s: bound on accepted-request p99 under overload.
        adversarial_count: connections per adversarial mode.
        timeout_s: client-side per-request timeout.

    Returns:
        A :class:`ServeChaosResult`; ``result.ok`` is the verdict.
    """
    result = ServeChaosResult()
    daemon = _Daemon([
        "--jobs", "1", "--max-batch", "4", "--max-delay", "0.05",
        "--max-inflight", str(max_inflight),
        "--breaker-threshold", "0",
        "--client-timeout", "1.0",
        "--max-body-bytes", str(64 * 1024),
        "--drain-timeout", "15",
        "--stall-timeout", "60",
    ])
    try:
        # Warm the daemon's artifact cache so overload timing measures
        # the serving tier, not first-touch profiling.
        warmup = run_load(daemon.url, requests=4, workers=1,
                          mix="evaluate=1", workload=workload,
                          scale=scale, timeout_s=timeout_s)
        if warmup.failures:
            result.fail(f"warmup saw {warmup.failures} failures: "
                        f"{warmup.statuses}")

        # Phase 1 — sustained overload at 2x the admission limit.
        overload = run_load(
            daemon.url, requests=requests,
            workers=2 * max_inflight, mix="evaluate=2,allocate=1",
            workload=workload, scale=scale, timeout_s=timeout_s)
        result.overload = overload.to_json()
        if not daemon.alive:
            result.fail("daemon died during overload")
        if overload.failures:
            result.fail(
                f"overload saw {overload.failures} hard failures "
                f"(want structured sheds only): {overload.statuses}")
        if overload.resets:
            result.fail(f"overload saw {overload.resets} connection "
                        f"resets")
        if overload.sheds == 0:
            result.fail("overload at 2x max_inflight shed nothing — "
                        "admission control is not engaging")
        p99 = overload.accepted_latency.get("p99", 0.0)
        if p99 > p99_limit_s:
            result.fail(f"accepted-request p99 {p99:.3f}s exceeds "
                        f"{p99_limit_s}s under overload")

        # Phase 2 — adversarial clients, one mode at a time.
        for mode in GATE_MODES:
            tally = run_adversarial(
                daemon.url, mode, count=adversarial_count,
                workload=workload, scale=scale,
                timeout_s=min(timeout_s, 10.0),
                body_bytes=1 << 20, deadline_ms=1)
            result.adversarial[mode] = tally
            if not daemon.alive:
                result.fail(f"daemon died during {mode}")
                break
            if mode in ("malformed", "oversized", "unknown_verb") \
                    and tally.get("structured_400", 0) \
                    != adversarial_count:
                result.fail(
                    f"{mode}: {tally.get('structured_400', 0)}/"
                    f"{adversarial_count} answered with a "
                    f"structured 400")
            if mode == "slowloris" \
                    and tally.get("closed_by_server", 0) == 0:
                result.fail("slowloris connections were never closed "
                            "(client_timeout_s not enforced)")
            if mode == "deadline_storm":
                if tally.get("deadline_exceeded", 0) == 0:
                    result.fail("deadline storm produced no "
                                "deadline_exceeded responses")
                if tally.get("resets", 0):
                    result.fail("deadline storm saw connection resets")

        # Give disconnect-cancellation bookkeeping a beat to land.
        time.sleep(0.3)
        status, _ = daemon.get("/healthz")
        if status != 200:
            result.fail(f"healthz reports {status} after the "
                        f"adversarial phase")
        status, body = daemon.get("/readyz")
        if status != 200:
            result.fail(f"readyz reports {status} before drain")

        # Phase 3 — shed accounting must be exact.
        counters = daemon.counters()
        result.counters = {
            name: value for name, value in counters.items()
            if name.startswith("serve_")
        }
        shed_total = counters.get("serve_shed_total", 0.0)
        by_reason = sum(_counter_like(counters,
                                      "serve_shed_").values()) \
            - shed_total \
            - sum(_counter_like(counters,
                                "serve_shed_verb_").values())
        if shed_total <= 0:
            result.fail("serve.shed.total is zero after overload")
        if by_reason != shed_total:
            result.fail(
                f"shed accounting drifted: serve.shed.total="
                f"{shed_total:g} but per-reason counters sum to "
                f"{by_reason:g}")
        disconnects = counters.get("serve_client_disconnects", 0.0)
        sent = result.adversarial.get("disconnect",
                                      {}).get("sent", 0)
        if sent and disconnects == 0:
            result.fail(
                f"{sent} mid-request disconnects left no trace in "
                f"serve.client_disconnects")

        # Phase 4 — SIGTERM under load must drain, not crash.
        drain_load: dict[str, LoadReport] = {}

        def _background_load() -> None:
            drain_load["report"] = run_load(
                daemon.url, requests=6 * max_inflight,
                workers=max_inflight, mix="evaluate=1",
                workload=workload, scale=scale, timeout_s=timeout_s)

        loader = threading.Thread(target=_background_load)
        loader.start()
        time.sleep(0.3)  # let requests get in flight
        daemon.process.send_signal(signal.SIGTERM)
        healthz_statuses: list[int] = []
        probe_deadline = time.monotonic() + 30.0
        while daemon.alive and time.monotonic() < probe_deadline:
            status, _ = daemon.get("/healthz", timeout_s=1.0)
            if status is not None:
                healthz_statuses.append(status)
            time.sleep(0.02)
        exit_code = daemon.terminate_and_wait()
        loader.join(timeout=timeout_s)
        report = drain_load.get("report")
        result.drain = {
            "exit_code": exit_code,
            "healthz_statuses": healthz_statuses,
            "resets": report.resets if report else None,
            "load": report.to_json() if report else None,
        }
        if exit_code != 0:
            result.fail(f"SIGTERM drain exited {exit_code}, want 0")
        if healthz_statuses and healthz_statuses[-1] == 200:
            result.fail("healthz still 200 after SIGTERM — drain "
                        "never flipped it to 503")
        if report is None:
            result.fail("drain-phase load generator never finished")
        elif report.resets:
            result.fail(
                f"drain-phase load saw {report.resets} connection "
                f"resets (in-flight work was dropped): "
                f"{report.statuses}")
    finally:
        daemon.terminate_and_wait()
        result.daemon_output = daemon.output()

    if "Traceback" in result.daemon_output:
        result.fail("daemon printed a traceback")
    return result
