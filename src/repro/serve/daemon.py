"""The asyncio HTTP/JSON front of the allocation service.

A deliberately small stdlib-only HTTP/1.1 server (no web framework in
the dependency budget): request line + headers + ``Content-Length``
body in, JSON out, keep-alive connections.  Routes:

* ``POST /v1/simulate`` | ``/v1/conflict_graph`` | ``/v1/allocate`` |
  ``/v1/evaluate`` | ``/v1/sweep`` — one
  :mod:`repro.serve.schema` request per call; the response envelope
  carries the healed outcome status even for failed solves (HTTP 200),
  while malformed payloads get HTTP 400 and unknown routes 404.
* ``GET /healthz`` — 200 while no worker is stalled, 503 otherwise
  (body: the JSON progress snapshot).
* ``GET /metrics`` — Prometheus text exposition of the service's
  progress, percentiles and counters.

:func:`run_daemon` is the blocking entry point behind ``repro serve``;
:func:`start_in_thread` runs the same daemon on a background thread
for tests, benches and the smoke gate.
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Any, Callable

from repro.errors import ConfigurationError, ReproError
from repro.serve.schema import request_from_json
from repro.serve.service import AllocationService

#: URL prefix of the verb endpoints.
API_PREFIX = "/v1/"

#: HTTP reason phrases for the status codes the daemon emits.
_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 500: "Internal Server Error",
            503: "Service Unavailable"}


def _http_response(status: int, body: bytes,
                   content_type: str = "application/json") -> bytes:
    """Serialise one HTTP/1.1 response with keep-alive headers."""
    reason = _REASONS.get(status, "Unknown")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: keep-alive\r\n"
        "\r\n"
    )
    return head.encode("latin-1") + body


def _json_body(payload: dict[str, Any]) -> bytes:
    return json.dumps(payload).encode("utf-8")


class ServeDaemon:
    """One HTTP listener bound to one :class:`AllocationService`.

    Args:
        service: the engine-facing service answering the requests.
        host: interface to bind (default loopback).
        port: TCP port; ``0`` picks an ephemeral port, readable from
            :attr:`port` after :meth:`start`.
    """

    def __init__(self, service: AllocationService,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None

    @property
    def url(self) -> str:
        """Base URL of the bound listener."""
        return f"http://{self.host}:{self.port}"

    async def start(self) -> None:
        """Bind the listener (resolving an ephemeral port request)."""
        self._server = await asyncio.start_server(
            self._client, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Close the listener and wait for it to wind down."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(self) -> None:
        """Serve until cancelled (the listener must be started)."""
        assert self._server is not None
        await self._server.serve_forever()

    # -- connection handling --------------------------------------------------

    async def _client(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        """Serve one keep-alive connection until EOF or ``close``."""
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, path, headers, body = request
                response = await self._route(method, path, body)
                writer.write(response)
                await writer.drain()
                if headers.get("connection", "").lower() == "close":
                    break
        except (ConnectionResetError, BrokenPipeError,
                asyncio.LimitOverrunError):
            pass  # client went away mid-exchange
        except asyncio.CancelledError:
            pass  # daemon shutting down with the connection open
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    @staticmethod
    async def _read_request(reader: asyncio.StreamReader):
        """Parse one HTTP request; ``None`` on a closed connection."""
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except (asyncio.IncompleteReadError, ConnectionResetError):
            return None
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) < 2:
            return None
        method, path = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        for line in lines[1:]:
            name, separator, value = line.partition(":")
            if separator:
                headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or 0)
        body = await reader.readexactly(length) if length else b""
        return method, path, headers, body

    async def _route(self, method: str, path: str,
                     body: bytes) -> bytes:
        """Dispatch one parsed request to the service."""
        if path == "/healthz":
            if method != "GET":
                return _http_response(
                    405, _json_body({"error": "GET only"}))
            healthy, snapshot = self.service.healthz()
            payload = snapshot.to_json()
            payload["healthy"] = healthy
            return _http_response(200 if healthy else 503,
                                  _json_body(payload))
        if path == "/metrics":
            if method != "GET":
                return _http_response(
                    405, _json_body({"error": "GET only"}))
            text = self.service.metrics_text()
            return _http_response(
                200, text.encode("utf-8"),
                content_type="text/plain; version=0.0.4")
        if path.startswith(API_PREFIX):
            if method != "POST":
                return _http_response(
                    405, _json_body({"error": "POST only"}))
            verb = path[len(API_PREFIX):]
            return await self._verb(verb, body)
        return _http_response(
            404, _json_body({"error": f"no route {path!r}"}))

    async def _verb(self, verb: str, body: bytes) -> bytes:
        """Decode, execute and encode one schema-typed verb call."""
        try:
            data = json.loads(body.decode("utf-8"))
            if not isinstance(data, dict):
                raise ConfigurationError(
                    "request body must be a JSON object")
            data.setdefault("kind", verb)
            request = request_from_json(data)
            if request.kind != verb:
                raise ConfigurationError(
                    f"kind {request.kind!r} posted to /v1/{verb}")
        except (ValueError, ReproError) as error:
            return _http_response(400, _json_body({
                "error": f"{type(error).__name__}: {error}"}))
        response = await self.service.handle(request)
        return _http_response(200, _json_body(response.to_json()))


def run_daemon(service: AllocationService, host: str = "127.0.0.1",
               port: int = 0,
               announce: Callable[[str], None] | None = None) -> None:
    """Run the daemon in the foreground until interrupted.

    Starts the service (instruments installed process-wide), binds the
    listener, calls *announce* with the bound base URL, and serves
    until ``KeyboardInterrupt`` — then unwinds both cleanly.
    """
    async def main() -> None:
        daemon = ServeDaemon(service, host, port)
        await daemon.start()
        if announce is not None:
            announce(daemon.url)
        try:
            await daemon.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await daemon.stop()

    service.start()
    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass
    finally:
        service.stop()


class DaemonHandle:
    """A daemon running on a background thread (tests and benches).

    Attributes:
        url: base URL of the bound listener.
        port: bound TCP port.
    """

    def __init__(self, daemon: ServeDaemon,
                 loop: asyncio.AbstractEventLoop,
                 thread: threading.Thread,
                 service: AllocationService) -> None:
        self._daemon = daemon
        self._loop = loop
        self._thread = thread
        self._service = service
        self.url = daemon.url
        self.port = daemon.port

    def stop(self) -> None:
        """Stop the listener, the event loop and the service."""
        asyncio.run_coroutine_threadsafe(
            self._daemon.stop(), self._loop).result(timeout=10)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10)
        self._service.stop()


def start_in_thread(service: AllocationService,
                    host: str = "127.0.0.1",
                    port: int = 0) -> DaemonHandle:
    """Start the service + daemon on a background thread.

    Returns a :class:`DaemonHandle` once the listener is bound; the
    caller owns the handle and must :meth:`~DaemonHandle.stop` it.
    """
    service.start()
    ready = threading.Event()
    box: dict[str, Any] = {}

    def runner() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        daemon = ServeDaemon(service, host, port)
        loop.run_until_complete(daemon.start())
        box["daemon"] = daemon
        box["loop"] = loop
        ready.set()
        try:
            loop.run_forever()
        finally:
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(asyncio.gather(
                    *pending, return_exceptions=True))
            loop.close()

    thread = threading.Thread(target=runner, name="serve-daemon",
                              daemon=True)
    thread.start()
    if not ready.wait(timeout=30):
        service.stop()
        raise RuntimeError("serve daemon failed to bind a listener")
    return DaemonHandle(box["daemon"], box["loop"], thread, service)
