"""The asyncio HTTP/JSON front of the allocation service.

A deliberately small stdlib-only HTTP/1.1 server (no web framework in
the dependency budget): request line + headers + ``Content-Length``
body in, JSON out, keep-alive connections.  Routes:

* ``POST /v1/simulate`` | ``/v1/conflict_graph`` | ``/v1/allocate`` |
  ``/v1/evaluate`` | ``/v1/sweep`` — one
  :mod:`repro.serve.schema` request per call; the response envelope
  carries the healed outcome status even for failed solves (HTTP 200),
  shed requests get 503 + ``Retry-After``, malformed payloads a
  *schema-shaped* 400 (an ``error.response`` body, never a bare HTTP
  error or a 500) and unknown routes 404.
* ``GET /healthz`` — liveness: 200 while no worker is stalled and the
  daemon is not draining (body: the JSON progress snapshot).
* ``GET /readyz`` — readiness: 200 while new requests would be
  admitted; flips to 503 the instant a drain begins.
* ``GET /metrics`` — Prometheus text exposition of the service's
  progress, percentiles, counters and gauges.

Hardening at this layer (the service handles admission/deadlines):

* bodies above ``max_body_bytes`` and oversized header blocks are
  refused with structured 400s before any allocation work;
* reads are bounded by ``client_timeout_s`` so a slow-loris client
  cannot hold a connection open indefinitely
  (``serve.client_timeouts``);
* a client that disconnects mid-request has its in-flight work
  cancelled (``serve.client_disconnects``) instead of leaking an
  orphaned solve or a stack trace;
* the ``serve.accept`` / ``serve.parse`` / ``serve.respond`` fault
  sites let the chaos harness fail each stage deliberately.

:func:`run_daemon` is the blocking entry point behind ``repro serve``;
on SIGTERM/SIGINT it drains gracefully — new work sheds immediately,
``/healthz`` and ``/readyz`` flip to 503, pending batches flush,
in-flight requests get ``drain_timeout_s`` to finish, and the process
exits 0.  :func:`start_in_thread` runs the same daemon on a background
thread for tests, benches and the smoke gate.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
from typing import Any, Callable

from repro.errors import ConfigurationError, ReproError
from repro.obs.logging import log_event
from repro.resilience.faults import maybe_inject
from repro.serve.schema import ErrorResponse, request_from_json
from repro.serve.service import AllocationService

#: URL prefix of the verb endpoints.
API_PREFIX = "/v1/"

#: Default bound on request body size.
DEFAULT_MAX_BODY_BYTES = 1 << 20

#: Default bound on how long one read from a client may take.
DEFAULT_CLIENT_TIMEOUT_S = 30.0

#: Default budget for in-flight requests to finish during drain.
DEFAULT_DRAIN_TIMEOUT_S = 10.0

#: How often the respond-wait loop re-checks client liveness.
_DISCONNECT_POLL_S = 0.02

#: HTTP reason phrases for the status codes the daemon emits.
_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 500: "Internal Server Error",
            503: "Service Unavailable"}


def _http_response(status: int, body: bytes,
                   content_type: str = "application/json",
                   extra_headers: dict[str, str] | None = None
                   ) -> bytes:
    """Serialise one HTTP/1.1 response with keep-alive headers."""
    reason = _REASONS.get(status, "Unknown")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: keep-alive\r\n"
    )
    for name, value in (extra_headers or {}).items():
        head += f"{name}: {value}\r\n"
    head += "\r\n"
    return head.encode("latin-1") + body


def _json_body(payload: dict[str, Any]) -> bytes:
    return json.dumps(payload).encode("utf-8")


def _error_body(error_type: str, message: str,
                site: str = "serve.parse") -> bytes:
    """A schema-shaped error payload (an ``error.response`` body)."""
    return _json_body(ErrorResponse(
        error={"type": error_type, "message": message, "site": site},
    ).to_json())


class _HttpError(Exception):
    """A request refused at the HTTP layer with a structured body.

    Attributes:
        status: HTTP status to answer with.
        error_type: the structured error's ``type`` field.
        message: the structured error's ``message`` field.
        close: whether the connection must close afterwards (set when
            the offending bytes were never consumed, e.g. an
            oversized body left unread on the socket).
    """

    def __init__(self, status: int, error_type: str, message: str,
                 close: bool = False) -> None:
        super().__init__(message)
        self.status = status
        self.error_type = error_type
        self.message = message
        self.close = close

    def response(self) -> bytes:
        return _http_response(
            self.status, _error_body(self.error_type, self.message))


class _SlowClient(Exception):
    """A read from the client exceeded ``client_timeout_s``."""


class ServeDaemon:
    """One HTTP listener bound to one :class:`AllocationService`.

    Args:
        service: the engine-facing service answering the requests.
        host: interface to bind (default loopback).
        port: TCP port; ``0`` picks an ephemeral port, readable from
            :attr:`port` after :meth:`start`.
        max_body_bytes: refuse request bodies above this size with a
            structured 400 (``<= 0`` = unbounded).
        client_timeout_s: bound on each read from a client; a
            slower-than-this client is disconnected
            (``None``/``<= 0`` = unbounded).
    """

    def __init__(self, service: AllocationService,
                 host: str = "127.0.0.1", port: int = 0,
                 max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
                 client_timeout_s: float | None =
                 DEFAULT_CLIENT_TIMEOUT_S) -> None:
        self.service = service
        self.host = host
        self.port = port
        self.max_body_bytes = max_body_bytes
        self.client_timeout_s = client_timeout_s \
            if client_timeout_s and client_timeout_s > 0 else None
        self._server: asyncio.AbstractServer | None = None

    @property
    def url(self) -> str:
        """Base URL of the bound listener."""
        return f"http://{self.host}:{self.port}"

    async def start(self) -> None:
        """Bind the listener (resolving an ephemeral port request)."""
        self._server = await asyncio.start_server(
            self._client, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Close the listener and wait for it to wind down."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(self) -> None:
        """Serve until cancelled (the listener must be started)."""
        assert self._server is not None
        await self._server.serve_forever()

    async def drain(self, timeout_s: float =
                    DEFAULT_DRAIN_TIMEOUT_S) -> bool:
        """Gracefully wind down: shed new work, finish in-flight.

        The listener stays open throughout so already-connected
        clients observe structured 503s instead of connection resets;
        :meth:`stop` closes it afterwards.  Returns whether all
        in-flight work finished inside *timeout_s*.
        """
        return await self.service.drain(timeout_s)

    # -- connection handling --------------------------------------------------

    def _count(self, name: str) -> None:
        self.service.registry.counter(name).inc()

    async def _client(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        """Serve one keep-alive connection until EOF or ``close``."""
        try:
            maybe_inject("serve.accept")
            await self._exchange_loop(reader, writer)
        except (ConnectionResetError, BrokenPipeError):
            self._count("serve.client_disconnects")
        except _SlowClient:
            self._count("serve.client_timeouts")
        except asyncio.CancelledError:
            pass  # daemon shutting down with the connection open
        except Exception as error:
            # An injected serve.accept fault or anything else the
            # stages missed: close this connection, never the daemon.
            self._count("serve.connection_errors")
            log_event("serve.connection_error",
                      error=type(error).__name__, message=str(error))
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError,
                    asyncio.CancelledError):
                # CancelledError: the daemon is shutting down and
                # cancelled this task mid-close; the transport is
                # already going away, so finish quietly instead of
                # surfacing a cancellation traceback from the loop.
                pass

    async def _exchange_loop(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        """The request/response loop of one keep-alive connection."""
        while True:
            try:
                request = await self._read_request(reader)
            except _HttpError as error:
                writer.write(error.response())
                await writer.drain()
                if error.close:
                    return
                continue
            if request is None:
                return
            method, path, headers, body = request
            response = await self._respond(reader, writer, method,
                                           path, body)
            if response is None:
                return  # client disconnected mid-request
            maybe_inject("serve.respond")
            writer.write(response)
            await writer.drain()
            if headers.get("connection", "").lower() == "close":
                return

    async def _respond(self, reader: asyncio.StreamReader,
                       writer: asyncio.StreamWriter, method: str,
                       path: str, body: bytes) -> bytes | None:
        """Run the route while watching for a client disconnect.

        The route runs as its own task; if the client goes away while
        it is in flight the task is cancelled — the cancellation
        propagates through the service (releasing the admission slot)
        so orphaned work never occupies the executor.  Returns
        ``None`` when the client disconnected.
        """
        route = asyncio.ensure_future(
            self._route(method, path, body))
        while True:
            done, _ = await asyncio.wait(
                {route}, timeout=_DISCONNECT_POLL_S)
            gone = reader.at_eof() or writer.is_closing() \
                or reader.exception() is not None
            if done:
                # Fast routes can finish inside the first poll window;
                # writing into a freshly closed loopback socket does
                # not raise, so the disconnect must be noticed here or
                # it leaves no trace at all.  (A well-behaved client
                # never half-closes before reading its response, so
                # EOF at this point always means the client is gone.)
                if gone:
                    self._count("serve.client_disconnects")
                    route.exception()  # retrieve, nobody to tell
                    return None
                return route.result()
            if gone:
                self._count("serve.client_disconnects")
                route.cancel()
                try:
                    await route
                except (asyncio.CancelledError, Exception):
                    pass
                return None

    async def _read(self, awaitable):
        """One bounded read; :class:`_SlowClient` on timeout."""
        if self.client_timeout_s is None:
            return await awaitable
        try:
            return await asyncio.wait_for(awaitable,
                                          self.client_timeout_s)
        except asyncio.TimeoutError:
            raise _SlowClient() from None

    async def _read_request(self, reader: asyncio.StreamReader):
        """Parse one HTTP request; ``None`` on a closed connection.

        Raises :class:`_HttpError` for refusals that deserve a
        structured 400 and :class:`_SlowClient` when the client is
        too slow to finish a read.
        """
        try:
            head = await self._read(reader.readuntil(b"\r\n\r\n"))
        except (asyncio.IncompleteReadError, ConnectionResetError):
            return None
        except asyncio.LimitOverrunError:
            raise _HttpError(
                400, "OversizedHeader",
                "request header block exceeds the stream limit",
                close=True) from None
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) < 2:
            return None
        method, path = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        for line in lines[1:]:
            name, separator, value = line.partition(":")
            if separator:
                headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0") or 0)
        except ValueError:
            raise _HttpError(
                400, "MalformedRequest",
                "content-length is not an integer",
                close=True) from None
        if 0 < self.max_body_bytes < length:
            raise _HttpError(
                400, "OversizedBody",
                f"request body of {length} bytes exceeds the "
                f"{self.max_body_bytes}-byte limit", close=True)
        try:
            body = await self._read(reader.readexactly(length)) \
                if length else b""
        except (asyncio.IncompleteReadError, ConnectionResetError):
            return None
        return method, path, headers, body

    async def _route(self, method: str, path: str,
                     body: bytes) -> bytes:
        """Dispatch one parsed request to the service."""
        if path == "/healthz":
            if method != "GET":
                return _http_response(
                    405, _error_body("MethodNotAllowed", "GET only"))
            healthy, snapshot = self.service.healthz()
            payload = snapshot.to_json()
            payload["healthy"] = healthy
            payload["draining"] = self.service.draining
            return _http_response(200 if healthy else 503,
                                  _json_body(payload))
        if path == "/readyz":
            if method != "GET":
                return _http_response(
                    405, _error_body("MethodNotAllowed", "GET only"))
            ready = self.service.readyz()
            return _http_response(
                200 if ready else 503,
                _json_body({"ready": ready,
                            "draining": self.service.draining}))
        if path == "/metrics":
            if method != "GET":
                return _http_response(
                    405, _error_body("MethodNotAllowed", "GET only"))
            text = self.service.metrics_text()
            return _http_response(
                200, text.encode("utf-8"),
                content_type="text/plain; version=0.0.4")
        if path.startswith(API_PREFIX):
            if method != "POST":
                return _http_response(
                    405, _error_body("MethodNotAllowed", "POST only"))
            verb = path[len(API_PREFIX):]
            return await self._verb(verb, body)
        return _http_response(
            404, _error_body("UnknownRoute", f"no route {path!r}",
                             site="serve.route"))

    async def _verb(self, verb: str, body: bytes) -> bytes:
        """Decode, execute and encode one schema-typed verb call."""
        try:
            maybe_inject("serve.parse")
            data = json.loads(body.decode("utf-8"))
            if not isinstance(data, dict):
                raise ConfigurationError(
                    "request body must be a JSON object")
            data.setdefault("kind", verb)
            if data.get("kind") != verb:
                raise ConfigurationError(
                    f"kind {data.get('kind')!r} posted to /v1/{verb}")
            request = request_from_json(data)
        except json.JSONDecodeError as error:
            return _http_response(
                400, _error_body("MalformedRequest",
                                 f"invalid JSON: {error}"))
        except UnicodeDecodeError:
            return _http_response(
                400, _error_body("MalformedRequest",
                                 "request body is not valid UTF-8"))
        except (ValueError, ReproError) as error:
            error_type = "UnknownVerb" \
                if "unknown request kind" in str(error) \
                else type(error).__name__
            return _http_response(
                400, _error_body(error_type, str(error)))
        response = await self.service.handle(request)
        payload = _json_body(response.to_json())
        if response.status == "shed":
            return _http_response(
                503, payload,
                extra_headers={"Retry-After":
                               f"{response.retry_after_s:g}"})
        return _http_response(200, payload)


def run_daemon(service: AllocationService, host: str = "127.0.0.1",
               port: int = 0,
               announce: Callable[[str], None] | None = None,
               max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
               client_timeout_s: float | None =
               DEFAULT_CLIENT_TIMEOUT_S,
               drain_timeout_s: float =
               DEFAULT_DRAIN_TIMEOUT_S) -> None:
    """Run the daemon in the foreground until interrupted.

    Starts the service (instruments installed process-wide), binds the
    listener, calls *announce* with the bound base URL, and serves
    until SIGTERM/SIGINT — then drains gracefully: admission refuses
    new work (``/healthz`` and ``/readyz`` flip to 503 immediately),
    pending batches flush, in-flight requests get *drain_timeout_s* to
    finish, and both daemon and service unwind cleanly (exit 0).
    """
    async def main() -> None:
        daemon = ServeDaemon(service, host, port,
                             max_body_bytes=max_body_bytes,
                             client_timeout_s=client_timeout_s)
        await daemon.start()
        if announce is not None:
            announce(daemon.url)
        loop = asyncio.get_running_loop()
        stopping = asyncio.Event()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stopping.set)
            except (NotImplementedError, RuntimeError):
                pass  # non-main thread or platform without support
        serving = asyncio.ensure_future(daemon.serve_forever())
        try:
            await stopping.wait()
            log_event("serve.signal")
            await daemon.drain(drain_timeout_s)
        finally:
            serving.cancel()
            try:
                await serving
            except asyncio.CancelledError:
                pass
            await daemon.stop()

    service.start()
    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass
    finally:
        service.stop()


class DaemonHandle:
    """A daemon running on a background thread (tests and benches).

    Attributes:
        url: base URL of the bound listener.
        port: bound TCP port.
    """

    def __init__(self, daemon: ServeDaemon,
                 loop: asyncio.AbstractEventLoop,
                 thread: threading.Thread,
                 service: AllocationService) -> None:
        self._daemon = daemon
        self._loop = loop
        self._thread = thread
        self._service = service
        self.url = daemon.url
        self.port = daemon.port

    def drain(self, timeout_s: float =
              DEFAULT_DRAIN_TIMEOUT_S) -> bool:
        """Run a graceful drain on the daemon's loop (blocking)."""
        return asyncio.run_coroutine_threadsafe(
            self._daemon.drain(timeout_s), self._loop
        ).result(timeout=timeout_s + 10)

    def stop(self) -> None:
        """Stop the listener, the event loop and the service."""
        asyncio.run_coroutine_threadsafe(
            self._daemon.stop(), self._loop).result(timeout=10)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10)
        self._service.stop()


def start_in_thread(service: AllocationService,
                    host: str = "127.0.0.1",
                    port: int = 0,
                    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
                    client_timeout_s: float | None =
                    DEFAULT_CLIENT_TIMEOUT_S) -> DaemonHandle:
    """Start the service + daemon on a background thread.

    Returns a :class:`DaemonHandle` once the listener is bound; the
    caller owns the handle and must :meth:`~DaemonHandle.stop` it.
    """
    service.start()
    ready = threading.Event()
    box: dict[str, Any] = {}

    def runner() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        daemon = ServeDaemon(service, host, port,
                             max_body_bytes=max_body_bytes,
                             client_timeout_s=client_timeout_s)
        loop.run_until_complete(daemon.start())
        box["daemon"] = daemon
        box["loop"] = loop
        ready.set()
        try:
            loop.run_forever()
        finally:
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(asyncio.gather(
                    *pending, return_exceptions=True))
            loop.close()

    thread = threading.Thread(target=runner, name="serve-daemon",
                              daemon=True)
    thread.start()
    if not ready.wait(timeout=30):
        service.stop()
        raise RuntimeError("serve daemon failed to bind a listener")
    return DaemonHandle(box["daemon"], box["loop"], thread, service)
