"""Admission control for the allocation service: shed before queueing.

Every request the daemon accepts passes through one
:class:`AdmissionController` *before* it may enter the micro-batcher.
The controller enforces three independent gates, in order:

1. **drain** — a draining service accepts no new work
   (:data:`SHED_DRAINING`);
2. **circuit breakers** — one :class:`~repro.serve.breaker.CircuitBreaker`
   per verb; an open breaker sheds instantly
   (:data:`SHED_BREAKER`);
3. **concurrency** — a global ``max_inflight`` bound on
   admitted-but-unanswered requests plus an optional per-tenant
   quota (:data:`SHED_OVERLOAD` / :data:`SHED_TENANT`).  The
   in-flight gate is what keeps the batch queue bounded: the batcher
   can never hold more requests than the gate has admitted.

A shed request is answered with a structured 503 carrying a
``Retry-After`` hint and never touches the executor.  Accounting:
``serve.shed.total`` plus ``serve.shed.<reason>`` counters (the
chaos gate asserts the reasons always sum to the total), the
``serve.inflight`` gauge, ``serve.breaker.opens`` and the
``serve.breaker.state.<verb>`` gauges.
"""

from __future__ import annotations

import threading
from typing import Callable

from repro.obs.logging import log_event
from repro.obs.metrics import MetricsRegistry
from repro.serve.breaker import HALF_OPEN, CircuitBreaker

#: Shed reasons, also the ``serve.shed.<reason>`` metric suffixes.
SHED_DRAINING = "draining"
SHED_BREAKER = "breaker"
SHED_OVERLOAD = "overload"
SHED_TENANT = "tenant_quota"

SHED_REASONS = (SHED_DRAINING, SHED_BREAKER, SHED_OVERLOAD,
                SHED_TENANT)

#: Default bound on admitted-but-unanswered requests.
DEFAULT_MAX_INFLIGHT = 64

#: Default ``Retry-After`` hint attached to shed responses (seconds).
DEFAULT_RETRY_AFTER_S = 1.0


class AdmissionTicket:
    """Receipt of one admitted request; must be closed exactly once."""

    __slots__ = ("verb", "tenant", "_controller", "_closed")

    def __init__(self, controller: "AdmissionController", verb: str,
                 tenant: str) -> None:
        self.verb = verb
        self.tenant = tenant
        self._controller = controller
        self._closed = False

    def release(self, ok: bool) -> None:
        """Give the slot back and feed the outcome to the breaker.

        *ok* is the breaker's health signal — ``False`` only for
        responses whose status is ``failed`` (shed and
        ``deadline_exceeded`` responses never reach a ticket).
        Idempotent: double release is a no-op.
        """
        if self._closed:
            return
        self._closed = True
        self._controller._release(self, ok)


class AdmissionController:
    """The service's front door: admit, shed, and account for both.

    Args:
        registry: metrics registry receiving the shed counters and
            gauges.
        max_inflight: bound on concurrently admitted requests
            (``<= 0`` = unbounded).
        tenant_quota: per-tenant concurrent-request bound (``None``
            or ``<= 0`` = unbounded).
        breaker_threshold: rolling-window failures that open a verb's
            breaker (``<= 0`` disables breakers).
        breaker_window_s: breaker rolling-window width in seconds.
        breaker_cooldown_s: seconds an open breaker waits before
            half-opening.
        retry_after_s: the ``Retry-After`` hint on shed responses.
        clock: monotonic time source shared by the breakers (tests).
    """

    def __init__(self, registry: MetricsRegistry,
                 max_inflight: int = DEFAULT_MAX_INFLIGHT,
                 tenant_quota: int | None = None,
                 breaker_threshold: int = 0,
                 breaker_window_s: float = 30.0,
                 breaker_cooldown_s: float = 5.0,
                 retry_after_s: float = DEFAULT_RETRY_AFTER_S,
                 clock: Callable[[], float] | None = None) -> None:
        self.registry = registry
        self.max_inflight = max_inflight
        self.tenant_quota = tenant_quota
        self.retry_after_s = retry_after_s
        self._breaker_args = dict(
            threshold=breaker_threshold,
            window_s=breaker_window_s,
            cooldown_s=breaker_cooldown_s,
        )
        if clock is not None:
            self._breaker_args["clock"] = clock
        self._breakers: dict[str, CircuitBreaker] = {}
        self._lock = threading.Lock()
        self._inflight = 0
        self._per_tenant: dict[str, int] = {}
        self.draining = False

    # -- breakers -------------------------------------------------------------

    def breaker(self, verb: str) -> CircuitBreaker:
        """The breaker guarding *verb* (created on first use)."""
        breaker = self._breakers.get(verb)
        if breaker is None:
            breaker = CircuitBreaker(**self._breaker_args)
            self._breakers[verb] = breaker
        return breaker

    def _note_breaker(self, verb: str,
                      breaker: CircuitBreaker,
                      previous_state: str,
                      previous_opens: int) -> None:
        """Publish a breaker transition to metrics and the run log."""
        if breaker.state == previous_state \
                and breaker.opens == previous_opens:
            return
        self.registry.gauge(f"serve.breaker.state.{verb}").set(
            breaker.state_value)
        if breaker.opens > previous_opens:
            self.registry.counter("serve.breaker.opens").inc(
                breaker.opens - previous_opens)
        log_event("serve.breaker", verb=verb, state=breaker.state,
                  opens=breaker.opens)

    # -- admission ------------------------------------------------------------

    def try_admit(self, verb: str,
                  tenant: str) -> "AdmissionTicket | str":
        """Admit one request or name the shed reason.

        Returns an :class:`AdmissionTicket` on admission, or one of
        :data:`SHED_REASONS` when the request must be shed (the shed
        is already counted).
        """
        with self._lock:
            if self.draining:
                return self._shed(verb, SHED_DRAINING)
            breaker = self.breaker(verb)
            state, opens = breaker.state, breaker.opens
            allowed = breaker.allow()
            self._note_breaker(verb, breaker, state, opens)
            if not allowed:
                return self._shed(verb, SHED_BREAKER)
            if 0 < self.max_inflight <= self._inflight:
                self._probe_rollback(verb)
                return self._shed(verb, SHED_OVERLOAD)
            quota = self.tenant_quota
            if quota and quota > 0 \
                    and self._per_tenant.get(tenant, 0) >= quota:
                self._probe_rollback(verb)
                return self._shed(verb, SHED_TENANT)
            self._inflight += 1
            self._per_tenant[tenant] = \
                self._per_tenant.get(tenant, 0) + 1
            self.registry.gauge("serve.inflight").set(self._inflight)
            return AdmissionTicket(self, verb, tenant)

    def _probe_rollback(self, verb: str) -> None:
        """Undo a half-open probe admission that a later gate shed."""
        breaker = self._breakers[verb]
        if breaker.state == HALF_OPEN:
            breaker._inflight_probes = max(
                0, breaker._inflight_probes - 1)

    def _shed(self, verb: str, reason: str) -> str:
        """Count one shed (caller holds the lock) and return *reason*."""
        self.registry.counter("serve.shed.total").inc()
        self.registry.counter(f"serve.shed.{reason}").inc()
        self.registry.counter(f"serve.shed.verb.{verb}").inc()
        return reason

    def _release(self, ticket: AdmissionTicket, ok: bool) -> None:
        """Return *ticket*'s slot and record the breaker outcome."""
        with self._lock:
            self._inflight = max(0, self._inflight - 1)
            count = self._per_tenant.get(ticket.tenant, 0) - 1
            if count <= 0:
                self._per_tenant.pop(ticket.tenant, None)
            else:
                self._per_tenant[ticket.tenant] = count
            self.registry.gauge("serve.inflight").set(self._inflight)
            breaker = self.breaker(ticket.verb)
            state, opens = breaker.state, breaker.opens
            breaker.record(ok)
            self._note_breaker(ticket.verb, breaker, state, opens)

    # -- introspection --------------------------------------------------------

    @property
    def inflight(self) -> int:
        """Currently admitted-but-unanswered requests."""
        with self._lock:
            return self._inflight

    def begin_drain(self) -> None:
        """Stop admitting new work (idempotent)."""
        with self._lock:
            self.draining = True
