"""Micro-batching queue: coalesce compatible requests before solving.

Requests that share a compatibility key — same tenant, workload,
session configuration and allocator — are answered most cheaply as
*one* grid chunk: the workbench profiles once, the capacity axis
solves in ascending order with warm starts, and the single-pass cache
replay serves every capacity from one stream expansion
(``sim.kernel.stream_reuse``).  The :class:`MicroBatcher` therefore
holds each incoming request briefly (bounded by ``max_delay_s``) in a
per-key group, flushing every pending group as one batch when any
group reaches ``max_batch`` requests or the oldest enqueued request
hits the deadline.

Batching metrics (on the registry the batcher is built with):
``serve.batch.flushes``, ``serve.batch.size`` (histogram of group
sizes), ``serve.batch.coalesced`` (requests that joined an existing
group instead of opening one).
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Callable, Hashable

from repro.obs.metrics import MetricsRegistry

#: Default flush threshold: a group this large flushes immediately.
DEFAULT_MAX_BATCH = 8

#: Default flush deadline in seconds: no request waits longer than
#: this for companions to coalesce with.
DEFAULT_MAX_DELAY_S = 0.02

#: One pending batch: ``(key, [request, ...])``.
Group = tuple[Hashable, list[Any]]


class MicroBatcher:
    """Group compatible requests and execute them in shared batches.

    Args:
        execute: async callable receiving the drained groups (a list
            of ``(key, requests)`` pairs) and returning one result
            list per group, aligned request-for-request.  Called from
            the event loop; long work belongs in an executor inside
            *execute*.
        max_batch: flush as soon as any single group holds this many
            requests.
        max_delay_s: flush at latest this long after the first
            request of the current batching window arrived.
        registry: metrics registry receiving the batching counters
            (``None`` disables them).
    """

    def __init__(
        self,
        execute: Callable[[list[Group]], Awaitable[list[list[Any]]]],
        max_batch: int = DEFAULT_MAX_BATCH,
        max_delay_s: float = DEFAULT_MAX_DELAY_S,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self._execute = execute
        self.max_batch = max_batch
        self.max_delay_s = max_delay_s
        self._registry = registry
        self._pending: dict[Hashable, list[tuple[Any,
                                                 asyncio.Future]]] = {}
        self._deadline: asyncio.TimerHandle | None = None

    def _count(self, name: str, amount: float = 1.0) -> None:
        if self._registry is not None:
            self._registry.counter(name).inc(amount)

    async def submit(self, key: Hashable, request: Any) -> Any:
        """Enqueue *request* under *key*; await its individual result.

        The returned awaitable resolves with this request's entry of
        the batch result (or raises whatever the batch execution
        raised).
        """
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        group = self._pending.setdefault(key, [])
        if group:
            self._count("serve.batch.coalesced")
        group.append((request, future))
        if len(group) >= self.max_batch:
            self._flush_now()
        elif self._deadline is None:
            self._deadline = loop.call_later(self.max_delay_s,
                                             self._flush_now)
        return await future

    def _flush_now(self) -> None:
        """Drain every pending group into one batch execution task."""
        if self._deadline is not None:
            self._deadline.cancel()
            self._deadline = None
        if not self._pending:
            return
        drained = self._pending
        self._pending = {}
        self._count("serve.batch.flushes")
        for group in drained.values():
            if self._registry is not None:
                self._registry.histogram("serve.batch.size").observe(
                    len(group))
        asyncio.get_running_loop().create_task(self._run(drained))

    async def flush(self) -> None:
        """Flush pending groups immediately (shutdown / tests)."""
        self._flush_now()

    async def _run(
        self,
        drained: dict[Hashable, list[tuple[Any, asyncio.Future]]],
    ) -> None:
        """Execute one drained batch and distribute the results."""
        groups: list[Group] = [
            (key, [request for request, _ in entries])
            for key, entries in drained.items()
        ]
        try:
            per_group = await self._execute(groups)
        except Exception as error:  # fan the failure out per request
            for entries in drained.values():
                for _, future in entries:
                    if not future.done():
                        future.set_exception(error)
            return
        for (_, entries), results in zip(drained.items(), per_group):
            for (_, future), result in zip(entries, results):
                if not future.done():
                    future.set_result(result)
