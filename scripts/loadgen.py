#!/usr/bin/env python
"""Drive a running ``repro serve`` daemon with closed-loop load.

Thin argparse front of :func:`repro.serve.loadgen.run_load`: workers
issue a configurable mix of the wire verbs against the daemon's URL
and the run's throughput, failure count and latency percentiles print
as JSON (machine-readable for the smoke gate and ad-hoc profiling).

Usage:
    python scripts/loadgen.py http://127.0.0.1:8787 \
        --requests 500 --workers 4 --mix "simulate=1,evaluate=2"
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("url", help="daemon base URL "
                                    "(http://host:port)")
    parser.add_argument("--requests", type=int, default=100,
                        help="total requests across all workers")
    parser.add_argument("--workers", type=int, default=4,
                        help="closed-loop worker threads")
    parser.add_argument("--mix", default=None,
                        help="verb mix, e.g. 'simulate=1,evaluate=2' "
                             "(verbs: simulate, allocate, evaluate, "
                             "sweep)")
    parser.add_argument("--workload", default="tiny",
                        help="workload every request names")
    parser.add_argument("--scale", type=float, default=0.2,
                        help="trip-count multiplier of every request")
    parser.add_argument("--seed", type=int, default=0,
                        help="executor seed of every request")
    parser.add_argument("--timeout", type=float, default=60.0,
                        help="per-request socket timeout in seconds")
    args = parser.parse_args(argv)

    from repro.serve.loadgen import DEFAULT_MIX, run_load

    report = run_load(
        args.url, requests=args.requests, workers=args.workers,
        mix=args.mix or DEFAULT_MIX, workload=args.workload,
        scale=args.scale, seed=args.seed, timeout_s=args.timeout,
    )
    print(json.dumps(report.to_json(), indent=2, sort_keys=True))
    return 1 if report.failures else 0


if __name__ == "__main__":
    sys.path.insert(0, str(REPO_ROOT / "src"))
    raise SystemExit(main())
