#!/usr/bin/env python
"""Generate ``docs/API.md`` from the public API's docstrings.

The documented surface is the curated module list below — the
tutorial-facing API: the workbench pipeline, the experiment engine,
the observability layer, workload construction and the evaluation
entry points.  Output is deterministic (members sorted by name, no
timestamps), so the generated file is committed and a tier-1 test
(``tests/test_api_docs.py``) plus ``make docs`` fail when it drifts
from the docstrings.

Usage:
    python scripts/gen_api_docs.py            # rewrite docs/API.md
    python scripts/gen_api_docs.py --check    # exit 1 when stale
"""

from __future__ import annotations

import argparse
import importlib
import inspect
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "docs" / "API.md"

#: The curated public API, in presentation order.
MODULES = (
    "repro.api",
    "repro.core.pipeline",
    "repro.memory.kernel.stream",
    "repro.memory.kernel.vector",
    "repro.memory.kernel.verify",
    "repro.engine.artifacts",
    "repro.engine.store",
    "repro.engine.runner",
    "repro.engine.parallel",
    "repro.io.serde",
    "repro.serve.schema",
    "repro.serve.batching",
    "repro.serve.admission",
    "repro.serve.breaker",
    "repro.serve.service",
    "repro.serve.daemon",
    "repro.serve.loadgen",
    "repro.serve.chaos",
    "repro.obs.trace",
    "repro.obs.metrics",
    "repro.obs.events",
    "repro.obs.report",
    "repro.obs.history",
    "repro.obs.live",
    "repro.obs.logging",
    "repro.obs.profiler",
    "repro.resilience.faults",
    "repro.resilience.healing",
    "repro.resilience.chaos",
    "repro.workloads.builder",
    "repro.workloads.registry",
    "repro.evaluation.sweep",
    "repro.evaluation.fig4",
    "repro.evaluation.fig5",
    "repro.evaluation.table1",
    "repro.evaluation.dse",
)

HEADER = """\
# Public API reference

Generated from docstrings by `scripts/gen_api_docs.py` — do not edit
by hand.  Regenerate with `make docs-regen`; `make docs` (part of
`make test`) fails when this file is stale.

Modules covered (the supported, tutorial-facing surface — packages
like `repro.engine` and `repro.obs` re-export these names):
"""


def _docstring(obj) -> str:
    return (inspect.getdoc(obj) or "*(undocumented)*").rstrip()


def _signature(obj) -> str:
    try:
        return str(inspect.signature(obj))
    except (TypeError, ValueError):
        return "(...)"


def _public_members(module):
    for name in sorted(vars(module)):
        if name.startswith("_"):
            continue
        obj = vars(module)[name]
        if getattr(obj, "__module__", None) != module.__name__:
            continue
        yield name, obj


def _class_section(name: str, obj: type) -> list[str]:
    lines = [f"### class `{name}`", "", _docstring(obj), ""]
    for member_name in sorted(vars(obj)):
        if member_name.startswith("_"):
            continue
        member = vars(obj)[member_name]
        if isinstance(member, property):
            lines += [
                f"#### `{name}.{member_name}` *(property)*", "",
                _docstring(member), "",
            ]
        elif callable(member) or isinstance(
                member, (staticmethod, classmethod)):
            bound = getattr(obj, member_name)
            lines += [
                f"#### `{name}.{member_name}{_signature(bound)}`", "",
                _docstring(bound), "",
            ]
    return lines


def _module_section(module_name: str) -> list[str]:
    module = importlib.import_module(module_name)
    lines = [f"## `{module_name}`", "", _docstring(module), ""]
    constants = []
    for name, obj in _public_members(module):
        if inspect.isclass(obj):
            lines += _class_section(name, obj)
        elif inspect.isfunction(obj):
            lines += [
                f"### `{name}{_signature(obj)}`", "",
                _docstring(obj), "",
            ]
    for name in sorted(vars(module)):
        obj = vars(module)[name]
        if name.startswith("_") or callable(obj) or \
                inspect.ismodule(obj):
            continue
        if name.isupper():
            if isinstance(obj, (str, int, float, tuple, frozenset)):
                constants.append(f"- `{name} = {obj!r}`")
            else:
                constants.append(
                    f"- `{name}` *({type(obj).__name__} singleton)*"
                )
    if constants:
        lines += ["### Constants", ""] + constants + [""]
    return lines


def generate() -> str:
    """Render the full API document as a string."""
    lines = [HEADER]
    lines += [f"- [`{name}`](#{name.replace('.', '')})"
              for name in MODULES]
    lines.append("")
    for module_name in MODULES:
        lines += _module_section(module_name)
    return "\n".join(lines).rstrip() + "\n"


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check", action="store_true",
        help="compare against docs/API.md instead of writing it",
    )
    args = parser.parse_args(argv)

    document = generate()
    if args.check:
        current = OUTPUT.read_text() if OUTPUT.exists() else ""
        if current != document:
            sys.stderr.write(
                "docs/API.md is stale: regenerate it with "
                "`make docs-regen` (or scripts/gen_api_docs.py) and "
                "commit the result\n"
            )
            return 1
        print(f"docs/API.md up to date ({len(MODULES)} modules)")
        return 0
    OUTPUT.write_text(document)
    print(f"wrote {OUTPUT} ({len(document.splitlines())} lines)")
    return 0


if __name__ == "__main__":
    sys.path.insert(0, str(REPO_ROOT / "src"))
    raise SystemExit(main())
