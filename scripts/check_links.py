#!/usr/bin/env python
"""Check relative markdown links in the repository's documentation.

Walks every ``*.md`` file at the repository root and under ``docs/``,
extracts inline links (``[text](target)``), and verifies that each
relative target resolves to an existing file or directory.  External
links (``http://``, ``https://``, ``mailto:``) and pure in-page
anchors (``#section``) are skipped; a ``path#fragment`` target is
checked for the path part only.

Exit status 1 lists every broken link; used by ``make docs`` (and so
``make test``).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Inline markdown link: [text](target) — target without spaces.
LINK_PATTERN = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: Target prefixes that are not file references.
EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "#")


def markdown_files() -> list[Path]:
    """The documentation set: root-level and docs/ markdown files."""
    files = sorted(REPO_ROOT.glob("*.md"))
    files += sorted((REPO_ROOT / "docs").glob("*.md"))
    return files


def check_file(path: Path) -> list[str]:
    """Broken-link descriptions for one markdown file."""
    problems = []
    for number, line in enumerate(path.read_text().splitlines(), 1):
        for match in LINK_PATTERN.finditer(line):
            target = match.group(1)
            if target.startswith(EXTERNAL_PREFIXES):
                continue
            file_part = target.split("#", 1)[0]
            if not file_part:
                continue
            resolved = (path.parent / file_part).resolve()
            if not resolved.exists():
                problems.append(
                    f"{path.relative_to(REPO_ROOT)}:{number}: "
                    f"broken link -> {target}"
                )
    return problems


def main() -> int:
    """CLI entry point; returns the process exit code."""
    problems: list[str] = []
    files = markdown_files()
    for path in files:
        problems += check_file(path)
    if problems:
        sys.stderr.write("\n".join(problems) + "\n")
        return 1
    print(f"checked {len(files)} markdown files: all relative links "
          f"resolve")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
