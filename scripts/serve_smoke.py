#!/usr/bin/env python
"""Smoke gate of the ``repro serve`` daemon (``make serve-smoke``).

Spawns the daemon as a real subprocess on an ephemeral port, drives it
with a closed-loop mixed-verb load-generation run, and asserts the
service-level objectives:

* **zero failed requests** across the whole run;
* **p99 latency** under a generous bound (order-of-magnitude guard,
  not a micro-benchmark);
* the micro-batcher actually **coalesced** concurrent requests
  (scraped from ``/metrics``);
* ``/healthz`` reports healthy after the burst.

The deterministic half of the gate — the recorded ``serve.*`` bench
row against ``benchmarks/baselines/smoke.jsonl`` — runs separately via
``repro bench compare`` (invoked by the ``serve-smoke`` make target).
"""

from __future__ import annotations

import http.client
import json
import os
import re
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Requests the gate fires at the daemon.
SMOKE_REQUESTS = 500

#: Closed-loop workers driving the daemon.
SMOKE_WORKERS = 4

#: p99 latency bound in seconds (order-of-magnitude guard: typical
#: tiny-workload p99 is a few tens of milliseconds).
P99_BOUND_S = 2.0


def _get(port: int, path: str) -> tuple[int, bytes]:
    connection = http.client.HTTPConnection("127.0.0.1", port,
                                            timeout=30)
    try:
        connection.request("GET", path)
        reply = connection.getresponse()
        return reply.status, reply.read()
    finally:
        connection.close()


def _scrape_counter(text: str, name: str) -> float:
    match = re.search(rf"^{re.escape(name)}\s+([0-9.e+-]+)$", text,
                      re.MULTILINE)
    return float(match.group(1)) if match else 0.0


def main() -> int:
    """Run the smoke gate; returns the process exit code."""
    from repro.serve.loadgen import run_load

    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        part for part in (str(REPO_ROOT / "src"),
                          env.get("PYTHONPATH")) if part)
    daemon = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        cwd=REPO_ROOT, env=env,
    )
    try:
        line = daemon.stdout.readline()
        match = re.search(r"serving on (http://[\d.]+:(\d+))",
                          line or "")
        if match is None:
            print(f"FAIL: daemon did not announce a URL "
                  f"(got {line!r})")
            return 1
        url, port = match.group(1), int(match.group(2))
        print(f"daemon up at {url}")

        started = time.perf_counter()
        report = run_load(url, requests=SMOKE_REQUESTS,
                          workers=SMOKE_WORKERS, workload="tiny",
                          scale=0.2)
        print(json.dumps(report.to_json(), indent=2, sort_keys=True))

        failures = []
        if report.failures:
            failures.append(
                f"{report.failures} failed request(s)")
        if report.requests != SMOKE_REQUESTS:
            failures.append(
                f"issued {report.requests} != {SMOKE_REQUESTS}")
        p99 = report.latency.get("p99", float("inf"))
        if p99 > P99_BOUND_S:
            failures.append(f"p99 {p99:.3f}s over {P99_BOUND_S}s")

        status, body = _get(port, "/metrics")
        text = body.decode("utf-8")
        if status != 200:
            failures.append(f"/metrics returned {status}")
        coalesced = _scrape_counter(
            text, "repro_serve_batch_coalesced_total")
        if coalesced <= 0:
            failures.append("micro-batcher never coalesced")
        handled = _scrape_counter(
            text, "repro_serve_requests_total_total")
        if handled < SMOKE_REQUESTS:
            failures.append(
                f"daemon counted {handled:g} < {SMOKE_REQUESTS}")

        status, body = _get(port, "/healthz")
        if status != 200 or not json.loads(body).get("healthy"):
            failures.append(f"/healthz unhealthy ({status})")

        wall = time.perf_counter() - started
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}")
            return 1
        print(f"serve-smoke OK: {SMOKE_REQUESTS} requests, "
              f"0 failures, p99 {p99 * 1e3:.1f}ms, "
              f"{coalesced:g} coalesced, {wall:.1f}s wall")
        return 0
    finally:
        daemon.terminate()
        try:
            daemon.wait(timeout=15)
        except subprocess.TimeoutExpired:
            daemon.kill()


if __name__ == "__main__":
    sys.path.insert(0, str(REPO_ROOT / "src"))
    raise SystemExit(main())
