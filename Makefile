# Convenience targets for the CASA reproduction.

PYTHON ?= python

# The package lives in src/; run everything against the tree so no
# install step is needed.
export PYTHONPATH := src

.PHONY: install test bench bench-smoke chaos-smoke serve-smoke \
	serve-chaos-smoke exhibits report examples docs docs-regen clean

install:
	$(PYTHON) setup.py develop

test: bench-smoke chaos-smoke serve-smoke serve-chaos-smoke docs
	$(PYTHON) -m pytest tests/

test-output:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Cold/warm engine smoke: one tiny design point per exhibit, asserting
# that a warm artifact cache does zero profiling or simulation work,
# that the vector kernel is >=5x the reference (and the grid pipeline
# >=3x the per-point path) on a fig4-shaped sweep, and that the kernel
# and grid differential verifications pass.
bench-smoke:
	$(PYTHON) -m pytest benchmarks/bench_smoke.py
	$(PYTHON) -m repro verify-kernel --workloads tiny adpcm \
		--trials 10 --scale 0.5 --no-cache
	$(PYTHON) -m repro verify-grid --workloads tiny adpcm \
		--scale 0.5 --no-cache

# Chaos differential gate: a small sweep under a canned fault plan
# (store corruption on read and write, one worker fault, one solver
# fault, one kernel fault) must heal to results bit-identical to the
# fault-free run, with at least one retry proving the plan bit.
chaos-smoke:
	$(PYTHON) -m repro chaos --workload tiny --scale 0.2 --jobs 2 \
		--min-retries 1 --faults "store.read:error@nth=1;\
	store.write:error@nth=1;worker.exec:error@nth=2;\
	ilp.solve:error@nth=1;kernel.replay:error@nth=1"

# Serving smoke gate: a real `repro serve` subprocess on an ephemeral
# port must absorb a 500-request closed-loop mixed-verb burst with
# zero failures, a bounded p99 and a non-zero micro-batching coalesce
# count, and the recorded serve.* bench row must match the committed
# seed baseline (throughput/latency within the timing tolerance band,
# request counters exactly).
serve-smoke:
	$(PYTHON) scripts/serve_smoke.py
	$(PYTHON) -m repro bench compare \
		--baseline benchmarks/baselines/smoke.jsonl

# Serve-layer chaos gate: a real daemon subprocess under 2x overload,
# adversarial clients (slow-loris, mid-request disconnects, malformed
# and oversized payloads, unknown verbs, deadline storms) and a
# SIGTERM mid-load must never crash or print a traceback; refusals
# are structured 503 sheds whose per-reason counters sum exactly to
# serve.shed.total, accepted-request p99 stays bounded, and the drain
# exits 0 with zero client-visible connection resets.
serve-chaos-smoke:
	$(PYTHON) -m repro serve-chaos --requests 24 \
		--adversarial-count 2

bench-output:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

# Regenerate every paper exhibit + extensions into benchmarks/out/
exhibits:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

report:
	$(PYTHON) -m repro report --output reproduction_report.txt

# Non-mutating documentation checks: docs/API.md must match the
# docstrings and every relative markdown link must resolve.
docs:
	$(PYTHON) scripts/gen_api_docs.py --check
	$(PYTHON) scripts/check_links.py

# Rewrite docs/API.md from the current docstrings.
docs-regen:
	$(PYTHON) scripts/gen_api_docs.py

examples:
	for script in examples/*.py; do $(PYTHON) $$script || exit 1; done

clean:
	rm -rf benchmarks/out .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
