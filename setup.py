"""Setuptools shim (the environment lacks the `wheel` package, so
PEP 660 editable installs fail; `python setup.py develop` and
`pip install -e . --no-build-isolation` both work through this shim)."""

from setuptools import setup

setup()
