#!/usr/bin/env python3
"""Architecture exploration: cache vs. scratchpad under an area budget.

The paper's architecture (figure 1) pairs a cache with a scratchpad;
this example asks the architect's question directly: given a fixed
on-chip SRAM area budget, what split minimises instruction-memory
energy once CASA manages the scratchpad?

Usage::

    python examples/design_space.py [workload] [area_budget] [scale]
"""

import sys

from repro.evaluation.dse import explore, render_design_points


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "adpcm"
    budget = float(sys.argv[2]) if len(sys.argv) > 2 else 30_000.0
    scale = float(sys.argv[3]) if len(sys.argv) > 3 else 0.3

    points = explore(workload, budget, scale=scale)
    print(f"{workload}: {len(points)} feasible configurations under "
          f"budget {budget:.0f}\n")
    print(render_design_points(points, top=10))

    best = points[0]
    pure_cache = [p for p in points if p.spm_size == 0]
    if pure_cache:
        reference = min(pure_cache, key=lambda p: p.energy)
        saving = (1 - best.energy / reference.energy) * 100
        print(f"\nbest split ({best.cache_size}B cache + "
              f"{best.spm_size}B SPM) saves {saving:.1f}% over the "
              f"best cache-only point ({reference.cache_size}B)")
    cheapest_close = min(
        (p for p in points if p.energy <= best.energy * 1.05),
        key=lambda p: p.area,
    )
    print(f"within 5% of the optimum at the smallest area: "
          f"{cheapest_close.cache_size}B cache + "
          f"{cheapest_close.spm_size}B SPM "
          f"({cheapest_close.area / best.area * 100:.0f}% of the "
          "optimum's area)")


if __name__ == "__main__":
    main()
