#!/usr/bin/env python3
"""Figure 4 scenario: CASA vs. the Steinke baseline on MPEG.

Reproduces the paper's central comparison: a 19.5 kB MPEG-like encoder
with a 2 kB direct-mapped I-cache, scratchpad sizes 128-1024 B.  Shows
why CASA wins despite *fewer* scratchpad accesses: it removes the
conflict misses that dominate energy, instead of chasing the cheapest
memory for the hottest code.

Usage::

    python examples/mpeg_casa_vs_steinke.py [scale]

*scale* (default 0.3) multiplies the workload's trip counts; 1.0
matches the benchmark harness.
"""

import sys

from repro.evaluation.fig4 import run_fig4
from repro.utils.tables import format_table


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.3
    result = run_fig4("mpeg", scale=scale)

    print(result.render())
    print()

    headers = ["SPM", "CASA misses", "Steinke misses",
               "CASA uJ", "Steinke uJ", "improvement %"]
    rows = []
    for row in result.rows:
        rows.append([
            f"{row.spm_size}B",
            row.casa.report.cache_misses,
            row.steinke.report.cache_misses,
            f"{row.casa.energy.total / 1e3:.2f}",
            f"{row.steinke.energy.total / 1e3:.2f}",
            f"{100 - row.energy_pct:.1f}",
        ])
    print(format_table(headers, rows, title="absolute numbers"))
    print(f"\naverage energy improvement: "
          f"{result.average_energy_improvement:.1f}% "
          "(paper reports 28% on average for mpeg)")


if __name__ == "__main__":
    main()
