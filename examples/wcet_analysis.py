#!/usr/bin/env python3
"""Predictability: WCET bounds with and without a scratchpad.

The paper's introduction argues scratchpads "allow tighter bounds on
WCET prediction" than caches.  This example quantifies that with the
package's IPET analyser (built on the same ILP layer as CASA):

* cache-only: every touched line must be assumed to miss;
* CASA-allocated scratchpad: resident code fetches are deterministic.

Usage::

    python examples/wcet_analysis.py [workload] [scale]
"""

import sys

from repro.analysis.wcet import FetchLatency, compute_wcet
from repro.evaluation.sweep import make_workbench
from repro.traces.layout import LinkedImage
from repro.utils.tables import format_table


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "adpcm"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.5
    latency = FetchLatency(spm=1, cache_hit=1, cache_miss=20)

    workload, bench = make_workbench(name, scale)
    baseline_image = LinkedImage(bench.program, bench.memory_objects)
    baseline = compute_wcet(bench.program, baseline_image, latency)

    print(f"{name}: cache-only WCET bound "
          f"{baseline.program_wcet:,.0f} fetch cycles")
    print("(assumes every touched I-cache line misses — the price of "
          "an unpredictable cache)\n")

    rows = []
    for size in workload.spm_sizes:
        result = bench.run_casa(size)
        image = LinkedImage(
            bench.program, bench.memory_objects,
            spm_resident=result.allocation.spm_resident,
            spm_size=size,
        )
        bound = compute_wcet(bench.program, image, latency)
        rows.append([
            f"{size}B",
            len(result.allocation.spm_resident),
            f"{bound.program_wcet:,.0f}",
            f"{(1 - bound.program_wcet / baseline.program_wcet) * 100:.1f}",
        ])
    print(format_table(
        ["SPM", "resident objects", "WCET bound (cycles)",
         "tightening %"],
        rows,
        title="CASA allocation tightens the provable bound",
    ))

    hottest = max(
        baseline.function_wcet.items(), key=lambda item: item[1]
    )
    print(f"\nworst function bound: {hottest[0]} "
          f"({hottest[1]:,.0f} cycles)")


if __name__ == "__main__":
    main()
