#!/usr/bin/env python3
"""Quickstart: allocate a scratchpad for a small workload with CASA.

Runs the full pipeline of the paper's figure 3 on the bundled `tiny`
workload through the :class:`repro.Session` facade: execute + profile,
generate traces, simulate the baseline cache, build the conflict
graph, solve the CASA ILP, and re-simulate with the chosen objects on
the scratchpad.

Usage::

    python examples/quickstart.py
"""

from repro import Session
from repro.utils.units import format_energy


def main() -> None:
    session = Session("tiny")
    bench = session.workbench   # the underlying pipeline, when needed

    program = bench.program
    print(f"workload: tiny ({program.size} bytes, "
          f"{program.num_blocks} basic blocks)")
    print(f"traces (memory objects): {len(bench.memory_objects)}")
    for mo in bench.memory_objects:
        print(f"  {mo.describe()}")

    graph = session.conflict_graph()
    print(f"conflict graph: {graph.num_nodes} nodes, "
          f"{graph.num_edges} edges")

    baseline = session.evaluate("baseline")
    print(f"\ncache-only energy: "
          f"{format_energy(baseline.total_energy)}")

    for spm_size in (64, 128):
        result = session.evaluate("casa", spm_size=spm_size)
        saving = (1 - result.total_energy / baseline.total_energy) * 100
        print(f"\nscratchpad {spm_size} B  (CASA)")
        print(f"  resident objects : "
              f"{sorted(result.allocation.spm_resident)}")
        print(f"  scratchpad used  : {result.allocation.used_bytes} B")
        print(f"  energy           : "
              f"{format_energy(result.total_energy)} "
              f"({saving:.1f}% below cache-only)")
        print(f"  fetch breakdown  : {result.report.summary()}")


if __name__ == "__main__":
    main()
