#!/usr/bin/env python3
"""Quickstart: allocate a scratchpad for a small workload with CASA.

Runs the full pipeline of the paper's figure 3 on the bundled `tiny`
workload: execute + profile, generate traces, simulate the baseline
cache, build the conflict graph, solve the CASA ILP, and re-simulate
with the chosen objects on the scratchpad.

Usage::

    python examples/quickstart.py
"""

from repro import Workbench, WorkbenchConfig, get_workload
from repro.traces import TraceGenConfig
from repro.utils.units import format_energy


def main() -> None:
    workload = get_workload("tiny")
    bench = Workbench(
        workload.program,
        WorkbenchConfig(
            cache=workload.cache,
            tracegen=TraceGenConfig(
                line_size=workload.cache.line_size, max_trace_size=64
            ),
        ),
    )

    print(f"workload: {workload.name} ({workload.program.size} bytes, "
          f"{workload.program.num_blocks} basic blocks)")
    print(f"traces (memory objects): {len(bench.memory_objects)}")
    for mo in bench.memory_objects:
        print(f"  {mo.describe()}")

    baseline = bench.baseline_result()
    print(f"\ncache-only energy: {format_energy(baseline.total_energy)}")

    for spm_size in (64, 128):
        result = bench.run_casa(spm_size)
        saving = (1 - result.total_energy / baseline.total_energy) * 100
        print(f"\nscratchpad {spm_size} B  (CASA)")
        print(f"  resident objects : "
              f"{sorted(result.allocation.spm_resident)}")
        print(f"  scratchpad used  : {result.allocation.used_bytes} B")
        print(f"  energy           : "
              f"{format_energy(result.total_energy)} "
              f"({saving:.1f}% below cache-only)")
        print(f"  fetch breakdown  : {result.report.summary()}")


if __name__ == "__main__":
    main()
