#!/usr/bin/env python3
"""Figure 5 scenario: scratchpad + CASA vs. preloaded loop cache.

A preloaded loop cache (Ross/Gordon-Ross & Vahid) is architecturally
fancier than a scratchpad — a controller matches every fetch against a
region table — but it can hold only a handful of regions (4 here).
This example shows the paper's point: with a good allocation algorithm,
the *simpler* scratchpad wins, and wins more as the size grows, because
the loop cache saturates at its region limit.

Usage::

    python examples/loop_cache_comparison.py [workload] [scale]
"""

import sys

from repro.evaluation.fig5 import run_fig5
from repro.utils.tables import format_table


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "mpeg"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.3
    result = run_fig5(workload, scale=scale)

    print(result.render())
    print()

    headers = ["size", "LC regions", "SPM objects",
               "LC uJ", "SPM (CASA) uJ", "improvement %"]
    rows = []
    for row in result.rows:
        rows.append([
            f"{row.size}B",
            len(row.ross.allocation.loop_regions),
            len(row.casa.allocation.spm_resident),
            f"{row.ross.energy.total / 1e3:.2f}",
            f"{row.casa.energy.total / 1e3:.2f}",
            f"{100 - row.energy_pct:.1f}",
        ])
    print(format_table(
        headers, rows,
        title="region-table saturation vs. unlimited objects",
    ))
    print(f"\naverage energy improvement: "
          f"{result.average_energy_improvement:.1f}% "
          "(paper reports 26% on average for mpeg)")


if __name__ == "__main__":
    main()
