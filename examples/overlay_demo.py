#!/usr/bin/env python3
"""The paper's future work realised: scratchpad overlay.

Runs the phased JPEG-encoder model (colour conversion -> DCT +
quantisation -> entropy coding) and compares the best *static* CASA
allocation against the overlay ILP that swaps the scratchpad contents
at phase boundaries, paying explicit copy energy.

Usage::

    python examples/overlay_demo.py [spm_size] [scale]
"""

import sys

from repro import Session, get_workload
from repro.core.phases import detect_phases
from repro.traces import TraceGenConfig
from repro.utils.tables import format_table


def main() -> None:
    spm_size = int(sys.argv[1]) if len(sys.argv) > 1 else 128
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.5

    workload = get_workload("jpeg", scale=scale)
    partition = detect_phases(workload.program)
    print(f"workload: {workload.name} ({workload.program.size} B), "
          f"{partition.num_phases} phases:")
    for phase in partition.phases:
        print(f"  phase {phase.index}: {phase.name} "
              f"({len(phase.blocks)} top-level blocks)")

    session = Session(
        workload.program, workload.cache, spm_size,
        tracegen=TraceGenConfig(line_size=16, max_trace_size=spm_size),
    )

    static = session.evaluate("casa")
    overlay = session.evaluate("overlay")

    headers = ["allocation", "energy uJ", "I-cache misses",
               "SPM accesses", "copy words"]
    rows = [
        ["static CASA", f"{static.energy.total / 1e3:.2f}",
         static.report.cache_misses, static.report.spm_accesses, 0],
        ["overlay", f"{overlay.energy.total / 1e3:.2f}",
         overlay.report.cache_misses, overlay.report.spm_accesses,
         overlay.report.overlay_copy_words],
    ]
    print()
    print(format_table(headers, rows,
                       title=f"scratchpad = {spm_size} B"))
    gain = (1 - overlay.energy.total / static.energy.total) * 100
    print(f"\noverlay gain over the best static allocation: "
          f"{gain:.1f}%")
    print("(the static ILP must split the scratchpad across all "
          "phases' working sets;\n the overlay re-loads it per phase "
          "and pays only "
          f"{overlay.energy.overlay_copies / 1e3:.2f} uJ of copies)")


if __name__ == "__main__":
    main()
