#!/usr/bin/env python3
"""Future work, part 2: scratchpad allocation for *data* objects.

The paper's formulation is hierarchy-agnostic ("the algorithm can be
easily applied to any memory hierarchy"): here the identical CASA ILP
runs on a conflict graph whose nodes are *data* objects — sample
buffers, quantiser tables, predictor state — profiled through a D-cache
with the same eviction attribution as the I-cache.

Usage::

    python examples/data_allocation.py [workload] [dspm_size]
"""

import sys

from repro.data import DataHierarchyConfig, DataWorkbench
from repro.memory.cache import CacheConfig
from repro.utils.tables import format_table
from repro.workloads import get_workload
from repro.workloads.dataspecs import get_data_spec


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "adpcm"
    dspm_size = int(sys.argv[2]) if len(sys.argv) > 2 else 128

    workload = get_workload(name, scale=0.5)
    spec = get_data_spec(name)
    bench = DataWorkbench(
        workload.program,
        spec,
        DataHierarchyConfig(
            cache=CacheConfig(size=256, line_size=16, associativity=1),
            spm_size=dspm_size,
        ),
    )

    graph = bench.conflict_graph
    print(f"{name}: {len(spec.objects)} data objects, "
          f"{spec.total_size} bytes total")
    rows = [
        [node.name, node.size, node.fetches,
         sum(w for _, w in graph.conflicts_of(node.name))]
        for node in graph.nodes()
    ]
    print(format_table(
        ["object", "bytes", "accesses", "conflict misses"],
        rows, title="profiled data objects",
    ))

    casa = bench.run_casa()
    steinke = bench.run_steinke()
    print(f"\ndata scratchpad = {dspm_size} B")
    print(f"  CASA    : {casa.energy_nj / 1e3:8.2f} uJ  "
          f"{sorted(casa.allocation.spm_resident)}")
    print(f"  Steinke : {steinke.energy_nj / 1e3:8.2f} uJ  "
          f"{sorted(steinke.allocation.spm_resident)}")


if __name__ == "__main__":
    main()
