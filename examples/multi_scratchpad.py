#!/usr/bin/env python3
"""The paper's section-4 extension: several scratchpads at one level.

"If we had more than one scratchpad at the same horizontal level in the
memory hierarchy, then we only need to repeat inequation (17) for every
scratchpad."  This example allocates the adpcm workload over a small,
cheap scratchpad plus a larger, costlier one, and shows the optimiser
placing the hottest conflict-heavy traces in the cheap memory.

Usage::

    python examples/multi_scratchpad.py
"""

from repro import (
    MultiScratchpadAllocator,
    ScratchpadSpec,
    Workbench,
    WorkbenchConfig,
    get_workload,
)
from repro.traces import TraceGenConfig
from repro.utils.tables import format_table


def main() -> None:
    workload = get_workload("adpcm", scale=0.5)
    bench = Workbench(
        workload.program,
        WorkbenchConfig(
            cache=workload.cache,
            tracegen=TraceGenConfig(line_size=16, max_trace_size=64),
        ),
    )

    specs = [
        ScratchpadSpec("spm-small", 128),
        ScratchpadSpec("spm-large", 512),
    ]
    print("scratchpads:")
    for spec in specs:
        print(f"  {spec.name}: {spec.size} B, "
              f"{spec.access_energy:.3f} nJ/access")

    allocator = MultiScratchpadAllocator(specs)
    model = bench.spm_energy_model(128)  # cache energies are what matter
    allocation = allocator.allocate(bench.conflict_graph, energy=model)

    graph = bench.conflict_graph
    headers = ["object", "scratchpad", "size B", "fetches"]
    rows = []
    ranked = sorted(
        allocation.assignment.items(),
        key=lambda item: -graph.node(item[0]).fetches,
    )
    for mo_name, spm_name in ranked:
        node = graph.node(mo_name)
        rows.append([mo_name, spm_name, node.size, node.fetches])
    print(format_table(headers, rows, title="\nassignment"))

    for spec in specs:
        residents = allocation.residents_of(spec.name)
        used = sum(graph.node(n).size for n in residents)
        print(f"{spec.name}: {len(residents)} objects, "
              f"{used}/{spec.size} B used")
    print(f"predicted energy: {allocation.predicted_energy / 1e3:.2f} uJ "
          f"({allocation.solver_nodes} B&B nodes)")


if __name__ == "__main__":
    main()
