#!/usr/bin/env python3
"""Bring your own workload: build a program with the DSL and allocate.

Shows the full public API surface: the structured-code builder, trace
generation parameters, the conflict graph (exported as Graphviz DOT),
and all three allocators on a custom "two thrashing filters" program —
the minimal scenario where cache-awareness matters: two hot kernels
alternate and evict each other in a direct-mapped cache.

Usage::

    python examples/custom_workload.py
"""

from repro import CacheConfig, CasaAllocator, Session
from repro.traces import TraceGenConfig
from repro.workloads import Call, Loop, ProgramBuilder, Seq, Straight


def build_program():
    builder = ProgramBuilder("two-filters")
    builder.add_function("main", Seq([
        Straight(6),
        Loop(trip=400, body=Seq([
            Call("filter_a"),
            Call("filter_b"),
        ])),
        Straight(4),
    ]))
    # Both filters are ~200 B; with a 256 B direct-mapped cache and the
    # padding between them they collide and thrash.
    builder.add_function("filter_a", Seq([
        Straight(20), Loop(trip=3, body=Straight(8)), Straight(12),
    ]))
    builder.add_function("pad", Straight(40))  # cold spacer
    builder.add_function("filter_b", Seq([
        Straight(18), Loop(trip=3, body=Straight(10)), Straight(10),
    ]))
    return builder.build(entry="main")


def main() -> None:
    program = build_program()
    spm_size = 128
    session = Session(
        program,
        CacheConfig(size=256, line_size=16, associativity=1),
        spm_size,
        tracegen=TraceGenConfig(line_size=16, max_trace_size=128),
    )

    print(f"program: {program.size} B, "
          f"{len(session.workbench.memory_objects)} memory objects")
    report = session.simulate()
    print(f"baseline: {report.cache_misses} misses "
          f"({report.conflict_miss_total} conflict)")

    graph = session.conflict_graph()
    print("\nconflict graph (DOT):")
    print(graph.to_dot())

    model = session.energy_model()
    print(f"\nallocations for a {spm_size} B scratchpad:")
    for allocator_result, label in (
        (session.evaluate("casa"), "CASA (exact ILP)"),
        (session.evaluate("greedy"), "greedy CASA"),
        (session.evaluate("steinke"), "Steinke (cache-blind)"),
    ):
        report = allocator_result.report
        print(f"  {label:22s}: "
              f"{sorted(allocator_result.allocation.spm_resident)!s:30s} "
              f"misses={report.cache_misses:6d} "
              f"energy={allocator_result.total_energy / 1e3:8.2f} uJ")

    # The exact ILP is provably optimal under the model:
    casa = CasaAllocator().allocate(graph, spm_size, model)
    print(f"\nCASA predicted energy: {casa.predicted_energy / 1e3:.2f} uJ "
          f"(solved in {casa.solver_nodes} B&B nodes)")


if __name__ == "__main__":
    main()
